//! The cluster differential suite: a trace replayed through a 2-node
//! `delta-routerd` cluster must produce, per shard, byte-identical
//! ledgers to `sim::simulate` over the offline `shard_trace` twin — for
//! both partitioners, and **across a live mid-trace reshard** (where the
//! in-process twin mirrors the migration with the same
//! snapshot/restore primitive the nodes use).
//!
//! Also here: the stale-epoch contract — a client holding an outdated
//! shard→node map gets a typed `WrongEpoch` redirect (or a typed
//! `WRONG_NODE` error after re-handshaking against a moved shard), and
//! never a silently wrong answer.

use delta_core::engine::Engine;
use delta_core::{sim, CachingPolicy, CostLedger, EngineMetrics, VCover};
use delta_server::{
    error_code, shard_trace, BatchItem, BatchReply, ClusterConfig, DeltaClient, FrontDoor,
    NodeRole, PartitionerKind, PolicyKind, Request, Response, Router, RouterConfig, Server,
    ServerConfig,
};
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::{Event, QueryEvent, QueryKind, SyntheticSurvey, Trace, WorkloadConfig};

const SHARDS: usize = 4;
const NODES: u16 = 2;
const SEED: u64 = 42;

fn survey(n: usize) -> SyntheticSurvey {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = n;
    cfg.n_updates = n;
    SyntheticSurvey::generate(&cfg)
}

struct Cluster {
    nodes: Vec<Server>,
    router: Router,
    router_addr: std::net::SocketAddr,
    node_addrs: Vec<std::net::SocketAddr>,
}

/// Both router data planes, for pinning them against the same twin: the
/// reactor front drives the shared multiplexed node links; the threaded
/// front drives the legacy lockstep per-connection links.
const FRONTS: [FrontDoor; 2] = [FrontDoor::Reactor { threads: 2 }, FrontDoor::Threaded];

fn start_cluster(
    policy: PolicyKind,
    partitioner: PartitionerKind,
    cache_bytes: u64,
    catalog: &ObjectCatalog,
    front: FrontDoor,
) -> Cluster {
    let mut nodes = Vec::new();
    let mut node_addrs = Vec::new();
    for node in 0..NODES {
        let config = ServerConfig {
            bind: "127.0.0.1:0".to_string(),
            n_shards: SHARDS,
            partitioner,
            cache_bytes,
            policy,
            seed: SEED,
            cluster: Some(ClusterConfig {
                node,
                nodes: NODES,
                hosted: ClusterConfig::default_hosted(node, NODES, SHARDS),
            }),
            ..ServerConfig::default()
        };
        let server = Server::start(config, catalog.clone()).expect("node starts");
        node_addrs.push(server.local_addr());
        nodes.push(server);
    }
    let router = Router::start(
        RouterConfig {
            bind: "127.0.0.1:0".to_string(),
            nodes: node_addrs.iter().map(|a| a.to_string()).collect(),
            frontend: None,
            front,
            stall_limit: delta_server::connection::STALL_LIMIT,
            node_timeout: RouterConfig::DEFAULT_NODE_TIMEOUT,
        },
        catalog.clone(),
    )
    .expect("router starts");
    let router_addr = router.local_addr();
    Cluster {
        nodes,
        router,
        router_addr,
        node_addrs,
    }
}

impl Cluster {
    /// Shuts the whole cluster down through the router (which forwards
    /// the shutdown to its nodes, like `delta-serverd` drains shards).
    fn stop(self) {
        let mut client = DeltaClient::connect(self.router_addr).expect("connect");
        client.shutdown().expect("cluster shutdown");
        self.router.join();
        for node in self.nodes {
            node.join();
        }
    }
}

/// Replays events through the router in `Batch` frames, asserting
/// per-item success.
fn replay_batched(addr: std::net::SocketAddr, events: &[Event], batch: usize) {
    let mut client = DeltaClient::connect(addr).expect("connect");
    for chunk in events.chunks(batch) {
        let items: Vec<BatchItem> = chunk
            .iter()
            .map(|e| match e {
                Event::Query(q) => BatchItem::Query(q.clone()),
                Event::Update(u) => BatchItem::Update(*u),
            })
            .collect();
        for reply in client.batch(&items).expect("batch served") {
            assert!(
                !matches!(reply, BatchReply::Error { .. }),
                "unexpected batch error: {reply:?}"
            );
        }
    }
}

/// Per-shard `sim::simulate` ledgers over the offline twin.
fn expected_shard_ledgers(
    s: &SyntheticSurvey,
    partitioner: PartitionerKind,
    cache_bytes: u64,
) -> Vec<CostLedger> {
    let map = partitioner.build(SHARDS, s.catalog.len());
    shard_trace(map.as_ref(), &s.catalog, &s.trace, cache_bytes)
        .into_iter()
        .enumerate()
        .map(|(shard, (catalog, trace, shard_cache))| {
            let mut p = VCover::new(shard_cache, SEED + shard as u64);
            let opts = sim::SimOptions {
                cache_bytes: shard_cache,
                sample_every: u64::MAX,
                link: None,
            };
            sim::simulate(&mut p, &catalog, &trace, opts).ledger
        })
        .collect()
}

/// The acceptance pin: a 50k-event trace through the 2-node router is
/// per-shard byte-identical to the in-process simulation, under both
/// partitioners and **both data planes** — the reactor's shared
/// multiplexed node links and the threaded front's lockstep
/// per-connection links must agree with the twin (and therefore with
/// each other) byte for byte.
#[test]
fn cluster_router_matches_sim_per_shard() {
    let s = survey(25_000);
    let cache_bytes = (s.catalog.total_bytes() as f64 * 0.3) as u64;
    for front in FRONTS {
        for partitioner in [PartitionerKind::RoundRobin, PartitionerKind::HashRing] {
            let cluster = start_cluster(
                PolicyKind::VCover,
                partitioner,
                cache_bytes,
                &s.catalog,
                front,
            );
            replay_batched(cluster.router_addr, &s.trace.events, 128);

            let mut client = DeltaClient::connect(cluster.router_addr).expect("connect");
            let info = client.hello(0).expect("hello");
            assert_eq!(info.role, NodeRole::Router);
            assert_eq!(info.cluster_shards as usize, SHARDS);
            assert_eq!(info.partitioner, partitioner.to_string());
            let stats = client.stats().expect("stats");
            assert_eq!(
                stats.shards.len(),
                SHARDS,
                "{front:?}/{partitioner}: shard count"
            );
            let want = expected_shard_ledgers(&s, partitioner, cache_bytes);
            for (shard, want) in stats.shards.iter().zip(&want) {
                assert_eq!(
                    &shard.metrics.ledger, want,
                    "{front:?}/{partitioner}: shard {} ledger diverged from its simulation twin",
                    shard.shard
                );
            }
            assert_eq!(
                stats.total_metrics().updates,
                s.trace.n_updates() as u64,
                "{front:?}/{partitioner}: every update accounted"
            );
            cluster.stop();
        }
    }
}

/// The reshard pin: the identity holds *across a live mid-trace
/// reshard*. The in-process twin replays each shard's sub-trace through
/// the engine directly, mirroring the migration on the moved shard with
/// the same snapshot/restore primitive the nodes use — so the comparison
/// covers the state transfer itself, not just the happy path.
#[test]
fn mid_trace_reshard_is_byte_identical_to_the_engine_twin() {
    let s = survey(25_000);
    let cache_bytes = (s.catalog.total_bytes() as f64 * 0.3) as u64;
    let partitioner = PartitionerKind::HashRing;
    let policy = PolicyKind::VCover;
    let mid = s.trace.len() / 2;
    // Default placement: node 0 hosts shards {0, 2}; move shard 0 over
    // to node 1 mid-trace.
    let (moved_shard, to_node) = (0u16, 1u16);

    // In-process twin: same split, same engines, same migration.
    let map = partitioner.build(SHARDS, s.catalog.len());
    let prefix = shard_trace(
        map.as_ref(),
        &s.catalog,
        &Trace::new(s.trace.events[..mid].to_vec()),
        cache_bytes,
    );
    let suffix = shard_trace(
        map.as_ref(),
        &s.catalog,
        &Trace::new(s.trace.events[mid..].to_vec()),
        cache_bytes,
    );
    let twin: Vec<EngineMetrics> = (0..SHARDS)
        .map(|shard| {
            let (sub_catalog, pre_trace, shard_cache) = &prefix[shard];
            let (_, post_trace, _) = &suffix[shard];
            let build = || policy.build(*shard_cache, SEED + shard as u64);
            let mut engine: Engine<'static, dyn CachingPolicy + Send> =
                Engine::new(build(), sub_catalog, *shard_cache);
            engine.init(None);
            for event in pre_trace.iter() {
                engine.apply(event).expect("twin prefix event");
            }
            if shard == moved_shard as usize {
                // The migration: snapshot at the old owner, restore at
                // the new one under a fresh policy — exactly what
                // DetachShard/AttachShard do on the wire.
                let snap = engine.snapshot();
                engine = Engine::restore(build(), sub_catalog, &snap).expect("twin restore");
            }
            for event in post_trace.iter() {
                engine.apply(event).expect("twin suffix event");
            }
            engine.metrics()
        })
        .collect();

    // Both data planes must track the twin across the migration — the
    // reactor plane additionally exercises its quiesce (the reshard
    // waits for in-flight multiplexed sub-requests to drain) and the
    // WrongEpoch bounce on its shared links.
    for front in FRONTS {
        let cluster = start_cluster(policy, partitioner, cache_bytes, &s.catalog, front);
        replay_batched(cluster.router_addr, &s.trace.events[..mid], 128);
        let mut admin = DeltaClient::connect(cluster.router_addr).expect("connect");
        let epoch = admin.reshard(moved_shard, to_node).expect("reshard");
        assert_eq!(epoch, 1, "{front:?}: first reshard bumps the epoch to 1");
        // The routing map now shows the shard at its new owner.
        let info = admin.hello(epoch).expect("hello");
        assert_eq!(info.epoch, 1);
        replay_batched(cluster.router_addr, &s.trace.events[mid..], 128);

        let stats = DeltaClient::connect(cluster.router_addr)
            .and_then(|mut c| c.stats())
            .expect("stats");

        // The node hosting the moved shard must be the new owner.
        let mut node1 =
            DeltaClient::connect(cluster.node_addrs[to_node as usize]).expect("connect");
        let node1_info = node1.hello(epoch).expect("hello");
        assert!(
            node1_info.hosted.contains(&moved_shard),
            "{front:?}: node {to_node} must host shard {moved_shard} after the reshard \
             (hosts {:?})",
            node1_info.hosted
        );

        assert_eq!(stats.shards.len(), SHARDS);
        for (live, want) in stats.shards.iter().zip(&twin) {
            assert_eq!(
                &live.metrics, want,
                "{front:?}: shard {} diverged from the engine twin across the reshard",
                live.shard
            );
        }
        cluster.stop();
    }
}

/// The node-death pin: killing a node mid-trace turns every request
/// touching its shards into a **typed `NODE_UNAVAILABLE` error** on
/// both data planes — the threaded plane aborts the request on the
/// first dead lockstep link, and the mux plane deliberately mirrors
/// that contract (a dead sub-request kills its whole fan-out typed;
/// ops may have executed at other nodes, and the message says which
/// node was lost). Requests scoped entirely to surviving nodes keep
/// executing. Zero wrong answers, on either data plane.
#[test]
fn killed_node_mid_trace_fails_typed_on_both_fronts() {
    let s = survey(2_000);
    let cache_bytes = (s.catalog.total_bytes() as f64 * 0.3) as u64;
    let partitioner = PartitionerKind::RoundRobin;
    let map = partitioner.build(SHARDS, s.catalog.len());
    // Default placement: node 0 hosts {0, 2}, node 1 hosts {1, 3}.
    let dead_node = 1u16;
    let node_of = |o: ObjectId| (map.shard_of(o) % NODES as usize) as u16;

    for front in FRONTS {
        let cluster = start_cluster(
            PolicyKind::VCover,
            partitioner,
            cache_bytes,
            &s.catalog,
            front,
        );
        let mut client = DeltaClient::connect(cluster.router_addr).expect("connect");

        // Warm the links with a mixed prefix, then kill node 1 abruptly
        // (direct shutdown — the router only notices when its link dies
        // under an in-flight fan-out).
        replay_batched(cluster.router_addr, &s.trace.events[..500], 64);
        DeltaClient::connect(cluster.node_addrs[dead_node as usize])
            .expect("connect dead node")
            .shutdown()
            .expect("node shutdown");

        // Fan-outs now straddle a live and a dead node. Drive batches:
        // every request touching the dead node must come back as a
        // typed NODE_UNAVAILABLE (whole-request, on both planes — a
        // dead sub-request kills its fan-out), never silence and never
        // a fabricated result, and the client connection survives.
        let item_is_live = |i: &BatchItem| match i {
            BatchItem::Query(q) => q.objects.iter().all(|&o| node_of(o) != dead_node),
            BatchItem::Update(u) => node_of(u.object) != dead_node,
        };
        let mut live_ok = 0u32;
        let mut dead_typed = 0u32;
        for chunk in s.trace.events[500..1500].chunks(64) {
            let items: Vec<BatchItem> = chunk
                .iter()
                .map(|e| match e {
                    Event::Query(q) => BatchItem::Query(q.clone()),
                    Event::Update(u) => BatchItem::Update(*u),
                })
                .collect();
            let wholly_live = items.iter().all(item_is_live);
            match client
                .request(&Request::Batch(items.clone()))
                .expect("batch")
            {
                Response::BatchOk(replies) => {
                    assert!(
                        wholly_live,
                        "{front:?}: a batch touching the dead node must fail typed"
                    );
                    assert_eq!(replies.len(), items.len(), "{front:?}: one reply per item");
                    for reply in &replies {
                        assert!(
                            !matches!(reply, BatchReply::Error { .. }),
                            "{front:?}: live-node item failed: {reply:?}"
                        );
                    }
                    live_ok += 1;
                }
                Response::Error { code, message } => {
                    assert_eq!(code, error_code::NODE_UNAVAILABLE, "{front:?}: {message}");
                    assert!(
                        !wholly_live,
                        "{front:?}: batch with no dead-node items failed: {message}"
                    );
                    dead_typed += 1;
                }
                other => panic!("{front:?}: unexpected response: {other:?}"),
            }
        }
        assert!(dead_typed > 0, "{front:?}: the dead node was never touched");

        // Batches scoped entirely to surviving nodes keep executing —
        // the shared link to the live node is unaffected by its dead
        // peer (one reconnect probe covers all clients; nobody else
        // blocks on it).
        for chunk in s.trace.events[1500..]
            .iter()
            .filter_map(|e| match e {
                Event::Query(q) if q.objects.iter().all(|&o| node_of(o) != dead_node) => {
                    Some(BatchItem::Query(q.clone()))
                }
                Event::Update(u) if node_of(u.object) != dead_node => Some(BatchItem::Update(*u)),
                _ => None,
            })
            .collect::<Vec<_>>()
            .chunks(64)
        {
            for reply in client.batch(chunk).expect("live batch") {
                assert!(
                    !matches!(reply, BatchReply::Error { .. }),
                    "{front:?}: live-node item failed after the death: {reply:?}"
                );
            }
            live_ok += 1;
        }
        assert!(live_ok > 0, "{front:?}: no live-node batch ever ran");

        // A request scoped entirely to the live node still round-trips.
        let live_obj = (0..s.catalog.len() as u32)
            .map(ObjectId)
            .find(|&o| node_of(o) != dead_node)
            .expect("live object");
        let q = Request::Query(QueryEvent {
            seq: u64::MAX,
            objects: vec![live_obj],
            result_bytes: 64,
            tolerance: 0,
            kind: QueryKind::Selection,
        });
        assert!(
            matches!(client.request(&q).expect("query"), Response::QueryOk { .. }),
            "{front:?}: live-node queries must keep working after the death"
        );
        cluster.stop();
    }
}

/// The stale-epoch contract: after a reshard, a client still declaring
/// the old epoch gets a typed `WrongEpoch` and nothing executes; after
/// re-handshaking, a request for a moved shard gets a typed `WRONG_NODE`
/// error. At no point does a stale map yield a wrong answer.
#[test]
fn stale_epoch_clients_get_typed_redirects_never_wrong_answers() {
    let s = survey(100);
    let cache_bytes = (s.catalog.total_bytes() as f64 * 0.3) as u64;
    let partitioner = PartitionerKind::RoundRobin;
    let cluster = start_cluster(
        PolicyKind::VCover,
        partitioner,
        cache_bytes,
        &s.catalog,
        FrontDoor::default(),
    );
    let map = partitioner.build(SHARDS, s.catalog.len());

    // Global ids owned by shard 0 (node 0) and shard 2 (node 0, stays).
    let on_shard = |shard: usize| {
        (0..s.catalog.len() as u32)
            .map(ObjectId)
            .find(|&o| map.shard_of(o) == shard)
            .expect("populated shard")
    };
    let query = |seq: u64, o: ObjectId| {
        Request::Query(QueryEvent {
            seq,
            objects: vec![o],
            result_bytes: 64,
            tolerance: 0,
            kind: QueryKind::Selection,
        })
    };

    // A direct-to-node client with a fresh (epoch-0) handshake works.
    let mut direct = DeltaClient::connect(cluster.node_addrs[0]).expect("connect");
    let info = direct.hello(0).expect("hello");
    assert_eq!(info.role, NodeRole::ClusterNode);
    assert_eq!(info.epoch, 0);
    assert!(matches!(
        direct.request(&query(1, on_shard(0))).expect("request"),
        Response::QueryOk { .. }
    ));

    // A client that never handshakes is implicitly at epoch 0 — also
    // fine before any reshard.
    let mut silent = DeltaClient::connect(cluster.node_addrs[0]).expect("connect");
    assert!(matches!(
        silent.request(&query(2, on_shard(2))).expect("request"),
        Response::QueryOk { .. }
    ));

    // Reshard: move shard 0 from node 0 to node 1.
    let epoch = DeltaClient::connect(cluster.router_addr)
        .and_then(|mut c| c.reshard(0, 1))
        .expect("reshard");
    assert_eq!(epoch, 1);

    // Both stale clients now get the typed redirect — even for a query
    // touching only an *unmoved* shard: the fence is the declared epoch,
    // not a per-request ownership guess.
    match direct.request(&query(3, on_shard(2))).expect("request") {
        Response::WrongEpoch { epoch } => assert_eq!(epoch, 1),
        other => panic!("stale client must be redirected, got {other:?}"),
    }
    match silent.request(&query(4, on_shard(0))).expect("request") {
        Response::WrongEpoch { epoch } => assert_eq!(epoch, 1),
        other => panic!("silent stale client must be redirected, got {other:?}"),
    }

    // Re-handshake: unmoved shards serve again; the moved shard comes
    // back as a typed WRONG_NODE error, not a wrong answer.
    let refreshed = direct.hello(epoch).expect("hello");
    assert_eq!(refreshed.epoch, 1);
    assert!(
        !refreshed.hosted.contains(&0),
        "node 0 no longer hosts shard 0 (hosts {:?})",
        refreshed.hosted
    );
    assert!(matches!(
        direct.request(&query(5, on_shard(2))).expect("request"),
        Response::QueryOk { .. }
    ));
    match direct.request(&query(6, on_shard(0))).expect("request") {
        Response::Error { code, message } => {
            assert_eq!(code, error_code::WRONG_NODE, "{message}");
        }
        other => panic!("moved shard must be a typed error, got {other:?}"),
    }

    // The router, meanwhile, serves the moved shard transparently.
    let mut routed = DeltaClient::connect(cluster.router_addr).expect("connect");
    assert!(matches!(
        routed.request(&query(7, on_shard(0))).expect("request"),
        Response::QueryOk { .. }
    ));
    cluster.stop();
}

/// Admin verbs are node/router-scoped: a standalone server refuses the
/// cluster vocabulary with typed errors, and a router refuses node-level
/// verbs.
#[test]
fn cluster_verbs_are_typed_errors_in_the_wrong_role() {
    let s = survey(10);
    let server = Server::start(
        ServerConfig {
            bind: "127.0.0.1:0".to_string(),
            n_shards: 2,
            cache_bytes: 10_000,
            policy: PolicyKind::NoCache,
            seed: 1,
            ..ServerConfig::default()
        },
        s.catalog.clone(),
    )
    .expect("server starts");
    let mut client = DeltaClient::connect(server.local_addr()).expect("connect");
    let info = client.hello(0).expect("hello");
    assert_eq!(info.role, NodeRole::Standalone);
    assert_eq!(info.nodes, 1);
    assert_eq!(info.hosted, vec![0, 1]);
    for request in [
        Request::DetachShard { shard: 0 },
        Request::SetEpoch { epoch: 3 },
        Request::Reshard {
            shard: 0,
            to_node: 1,
        },
        Request::NodeOps(vec![]),
    ] {
        match client.request(&request).expect("request") {
            Response::Error { code, .. } => assert_eq!(code, error_code::NOT_CLUSTERED),
            other => panic!("expected NOT_CLUSTERED for {request:?}, got {other:?}"),
        }
    }
    client.shutdown().expect("shutdown");
    server.join();
}
