//! The tri-modal differential suite: the SAME trace driven through the
//! three engine drivers — `sim::simulate` (in-process), `deploy` (three
//! threads over metered channels) and the TCP server (shard workers) —
//! must produce byte-identical ledgers, and the identity must survive a
//! snapshot/restore cycle (the server's warm-restart path).
//!
//! Also here: the rolling warm-restart scenario (stop the server
//! mid-trace, restart from snapshots, finish the trace) and the hostile
//! contract-violation test (a deliberately broken policy must surface as
//! a typed error frame, not a dead shard thread).

use delta_core::{deploy, sim, CostLedger, VCover};
use delta_server::{
    error_code, read_frame, shard_trace, write_frame, BatchItem, BatchReply, DeltaClient,
    PolicyKind, Request, Response, RoundRobin, Server, ServerConfig, StatsSnapshot,
};
use delta_storage::ObjectId;
use delta_workload::{Event, QueryEvent, QueryKind, SyntheticSurvey, UpdateEvent, WorkloadConfig};
use std::path::PathBuf;

/// Shard count for the parameterized tests; the CI matrix overrides it
/// (1, 4, 8) so partition edge cases run on every push.
fn shard_count() -> usize {
    std::env::var("DELTA_TEST_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn survey(n: usize) -> SyntheticSurvey {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = n;
    cfg.n_updates = n;
    SyntheticSurvey::generate(&cfg)
}

/// A unique, empty scratch directory for snapshot files.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "delta-tri-modal-{name}-{}-{}",
        std::process::id(),
        shard_count()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn config(policy: PolicyKind, cache_bytes: u64, snapshot_dir: Option<PathBuf>) -> ServerConfig {
    ServerConfig {
        bind: "127.0.0.1:0".to_string(),
        n_shards: shard_count(),
        cache_bytes,
        policy,
        seed: 42,
        snapshot_dir,
        ..ServerConfig::default()
    }
}

/// Replays events over one connection in `Batch` frames (order-preserving
/// per shard, so ledgers match lockstep byte-for-byte — pinned by the
/// integration tests).
fn replay_batched(addr: std::net::SocketAddr, events: &[Event], batch: usize) {
    let mut client = DeltaClient::connect(addr).expect("connect");
    for chunk in events.chunks(batch) {
        let items: Vec<BatchItem> = chunk
            .iter()
            .map(|e| match e {
                Event::Query(q) => BatchItem::Query(q.clone()),
                Event::Update(u) => BatchItem::Update(*u),
            })
            .collect();
        for reply in client.batch(&items).expect("batch served") {
            assert!(
                !matches!(reply, BatchReply::Error { .. }),
                "unexpected batch error: {reply:?}"
            );
        }
    }
}

/// The sharded-simulation twin: per-shard ledgers from `sim::simulate`
/// over `shard_trace`'s sub-traces.
fn expected_shard_ledgers(survey: &SyntheticSurvey, cache_bytes: u64) -> Vec<CostLedger> {
    let map = RoundRobin::new(shard_count(), survey.catalog.len());
    shard_trace(&map, &survey.catalog, &survey.trace, cache_bytes)
        .into_iter()
        .enumerate()
        .map(|(s, (catalog, trace, shard_cache))| {
            let mut p = VCover::new(shard_cache, 42 + s as u64);
            let opts = sim::SimOptions {
                cache_bytes: shard_cache,
                sample_every: u64::MAX,
                link: None,
            };
            sim::simulate(&mut p, &catalog, &trace, opts).ledger
        })
        .collect()
}

fn assert_stats_match(stats: &StatsSnapshot, want: &[CostLedger], context: &str) {
    assert_eq!(stats.shards.len(), want.len(), "{context}: shard count");
    for (shard, want) in stats.shards.iter().zip(want) {
        assert_eq!(
            &shard.metrics.ledger, want,
            "{context}: shard {} ledger diverged from its simulation twin",
            shard.shard
        );
    }
}

/// The acceptance pin: one 50k-event trace through all three drivers,
/// byte-identical ledgers, before and after a snapshot/restore cycle.
#[test]
fn tri_modal_ledgers_are_byte_identical() {
    let s = survey(25_000);
    let cache_bytes = (s.catalog.total_bytes() as f64 * 0.3) as u64;
    let opts = sim::SimOptions {
        cache_bytes,
        sample_every: 10_000,
        link: None,
    };

    // Driver 1: the in-process simulator.
    let mut p = VCover::new(cache_bytes, 42);
    let sim_report = sim::simulate(&mut p, &s.catalog, &s.trace, opts);

    // Driver 2: the threaded client/cache/server deployment.
    let mut p = VCover::new(cache_bytes, 42);
    let (dep_report, wan) = deploy::run_deployed(&mut p, &s.catalog, &s.trace, opts);
    assert_eq!(
        sim_report.ledger, dep_report.ledger,
        "simulator and threaded deployment diverged"
    );
    assert_eq!(
        dep_report.total().bytes(),
        wan.charged_total(),
        "deployment ledger and WAN meter must reconcile"
    );
    assert_eq!(sim_report.metrics, dep_report.metrics);

    // Driver 3: the TCP server, per-shard against the offline twin.
    let dir = scratch_dir("tri-modal");
    let server = Server::start(
        config(PolicyKind::VCover, cache_bytes, Some(dir.clone())),
        s.catalog.clone(),
    )
    .expect("server starts");
    let addr = server.local_addr();
    replay_batched(addr, &s.trace.events, 128);
    let mut client = DeltaClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    let want = expected_shard_ledgers(&s, cache_bytes);
    assert_stats_match(&stats, &want, "fresh server");
    if shard_count() == 1 {
        // With one shard there is no partitioning: all three drivers see
        // the identical event stream and must agree outright.
        assert_eq!(stats.shards[0].metrics.ledger, sim_report.ledger);
    }
    client.shutdown().expect("shutdown");
    server.join();

    // The snapshot/restore cycle: a server restarted from the snapshots
    // reports the same per-shard ledgers — the tri-modal identity holds
    // after warm restart too.
    let server = Server::start(
        config(PolicyKind::VCover, cache_bytes, Some(dir.clone())),
        s.catalog.clone(),
    )
    .expect("warm server starts");
    let mut client = DeltaClient::connect(server.local_addr()).expect("connect");
    let restored = client.stats().expect("stats");
    for (a, b) in stats.shards.iter().zip(&restored.shards) {
        assert_eq!(
            a.metrics, b.metrics,
            "shard {} metrics changed across snapshot/restore",
            a.shard
        );
    }
    assert_stats_match(&restored, &want, "restored server");
    client.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rolling warm restart: stop the server mid-trace, restart from
/// snapshots, finish the trace. For policies whose behaviour depends
/// only on world state (NoCache, Replica — the mirror IS the state),
/// the split run must be byte-identical to an uninterrupted one.
#[test]
fn warm_restart_mid_trace_is_invisible_for_stateless_policies() {
    let s = survey(2_000);
    let cache_bytes = (s.catalog.total_bytes() as f64 * 0.3) as u64;
    let mid = s.trace.len() / 2;
    for policy in [PolicyKind::NoCache, PolicyKind::Replica] {
        // Uninterrupted run.
        let server = Server::start(config(policy, cache_bytes, None), s.catalog.clone())
            .expect("server starts");
        replay_batched(server.local_addr(), &s.trace.events, 64);
        let full = server.stop();

        // Prefix → snapshot → restart → tail.
        let dir = scratch_dir(&format!("rolling-{policy:?}"));
        let server = Server::start(
            config(policy, cache_bytes, Some(dir.clone())),
            s.catalog.clone(),
        )
        .expect("server starts");
        replay_batched(server.local_addr(), &s.trace.events[..mid], 64);
        server.stop();
        let server = Server::start(
            config(policy, cache_bytes, Some(dir.clone())),
            s.catalog.clone(),
        )
        .expect("warm server starts");
        replay_batched(server.local_addr(), &s.trace.events[mid..], 64);
        let split = server.stop();

        for (a, b) in full.shards.iter().zip(&split.shards) {
            assert_eq!(
                a.metrics, b.metrics,
                "{policy:?}: shard {} diverged across a mid-trace restart",
                a.shard
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// VCover's decision state is volatile (deliberately not snapshotted),
/// so a restarted run may diverge from an uninterrupted one — but it
/// must serve every query and be deterministic.
#[test]
fn warm_restart_mid_trace_stays_correct_and_deterministic_for_vcover() {
    let s = survey(1_500);
    let cache_bytes = (s.catalog.total_bytes() as f64 * 0.3) as u64;
    let mid = s.trace.len() / 2;
    let run = |name: &str| -> StatsSnapshot {
        let dir = scratch_dir(name);
        let server = Server::start(
            config(PolicyKind::VCover, cache_bytes, Some(dir.clone())),
            s.catalog.clone(),
        )
        .expect("server starts");
        replay_batched(server.local_addr(), &s.trace.events[..mid], 64);
        server.stop();
        let server = Server::start(
            config(PolicyKind::VCover, cache_bytes, Some(dir.clone())),
            s.catalog.clone(),
        )
        .expect("warm server starts");
        replay_batched(server.local_addr(), &s.trace.events[mid..], 64);
        let stats = server.stop();
        let _ = std::fs::remove_dir_all(&dir);
        stats
    };
    let (a, b) = (run("vcover-a"), run("vcover-b"));
    for (x, y) in a.shards.iter().zip(&b.shards) {
        assert_eq!(
            x.metrics, y.metrics,
            "restarted replay must be deterministic"
        );
    }
    // replay_batched asserted per-item success, so every query was
    // served; the counters must agree with the trace.
    let m = a.total_metrics();
    assert_eq!(m.updates, s.trace.n_updates() as u64);
    assert_eq!(
        m.ledger.shipped_queries + m.ledger.local_answers,
        m.queries,
        "every sub-query satisfied exactly once"
    );
}

/// Hostile test: a policy that violates the satisfaction contract must
/// come back as a typed `CONTRACT_VIOLATED` error frame — and the shard
/// keeps serving afterwards.
#[test]
fn broken_policy_surfaces_as_typed_error_frame_and_server_survives() {
    let s = survey(10);
    let server = Server::start(config(PolicyKind::Broken, 10_000, None), s.catalog.clone())
        .expect("server starts");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");

    let update = |seq, object, bytes| {
        Request::Update(UpdateEvent {
            seq,
            object: ObjectId(object),
            bytes,
        })
    };
    let query = |seq, objects: Vec<u32>| {
        Request::Query(QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: 77,
            tolerance: 0,
            kind: QueryKind::Selection,
        })
    };
    let round_trip = |stream: &mut std::net::TcpStream, req: &Request| -> Response {
        write_frame(stream, &req.encode()).expect("write");
        Response::decode(&read_frame(stream).expect("read")).expect("decode")
    };

    // Updates are unaffected by the broken query path.
    assert!(matches!(
        round_trip(&mut stream, &update(1, 0, 10)),
        Response::UpdateOk { version: 1, .. }
    ));
    // The violated query becomes a typed error frame.
    match round_trip(&mut stream, &query(2, vec![0, 1])) {
        Response::Error { code, message } => {
            assert_eq!(code, error_code::CONTRACT_VIOLATED);
            assert!(message.contains("Broken"), "{message}");
        }
        other => panic!("expected a typed error frame, got {other:?}"),
    }
    // The shard thread survived: further traffic is served normally.
    assert!(matches!(
        round_trip(&mut stream, &update(3, 0, 5)),
        Response::UpdateOk { version: 2, .. }
    ));
    // In a batch, the violation poisons its item only.
    let batch = Request::Batch(vec![
        BatchItem::Query(QueryEvent {
            seq: 4,
            objects: vec![ObjectId(0)],
            result_bytes: 9,
            tolerance: 0,
            kind: QueryKind::Selection,
        }),
        BatchItem::Update(UpdateEvent {
            seq: 5,
            object: ObjectId(0),
            bytes: 2,
        }),
    ]);
    match round_trip(&mut stream, &batch) {
        Response::BatchOk(replies) => {
            assert!(matches!(
                replies[0],
                BatchReply::Error {
                    code: error_code::CONTRACT_VIOLATED,
                    ..
                }
            ));
            assert!(matches!(replies[1], BatchReply::Update { version: 3, .. }));
        }
        other => panic!("expected BatchOk, got {other:?}"),
    }
    // Violated queries are not counted as served.
    match round_trip(&mut stream, &Request::Stats) {
        Response::StatsOk(stats) => {
            let m = stats.total_metrics();
            assert_eq!(m.queries, 0);
            assert_eq!(m.updates, 3);
        }
        other => panic!("expected StatsOk, got {other:?}"),
    }
    assert!(matches!(
        round_trip(&mut stream, &Request::Shutdown),
        Response::ShutdownOk
    ));
    server.join();
}

/// A stray scratch file that is not a valid snapshot must refuse startup
/// cleanly instead of panicking a worker thread.
#[test]
fn corrupt_snapshot_refuses_startup() {
    let s = survey(10);
    let dir = scratch_dir("corrupt");
    std::fs::write(dir.join("shard-0.jsonl"), b"not json\n").unwrap();
    let err = match Server::start(
        config(PolicyKind::VCover, 10_000, Some(dir.clone())),
        s.catalog.clone(),
    ) {
        Err(e) => e,
        Ok(server) => {
            server.stop();
            panic!("corrupt snapshot must refuse startup");
        }
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot taken under one policy must not restore under another.
#[test]
fn policy_mismatch_refuses_startup() {
    let s = survey(50);
    let cache_bytes = 100_000;
    let dir = scratch_dir("mismatch");
    let server = Server::start(
        config(PolicyKind::NoCache, cache_bytes, Some(dir.clone())),
        s.catalog.clone(),
    )
    .expect("server starts");
    replay_batched(
        server.local_addr(),
        &s.trace.events[..20.min(s.trace.len())],
        8,
    );
    server.stop();
    let err = match Server::start(
        config(PolicyKind::Replica, cache_bytes, Some(dir.clone())),
        s.catalog.clone(),
    ) {
        Err(e) => e,
        Ok(server) => {
            server.stop();
            panic!("policy mismatch must refuse startup");
        }
    };
    assert!(err.to_string().contains("policy"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
