//! End-to-end tests: a real `delta-serverd` instance on an ephemeral
//! port, driven by the typed client over TCP.
//!
//! The central property: replaying a synthetic trace through a 4-shard
//! server produces, per shard, exactly the ledger `sim::simulate`
//! produces on that shard's sub-catalog and sub-trace (the offline twin
//! from `partition::shard_trace`) — and the per-shard ledgers sum to the
//! aggregate snapshot.

use delta_core::{sim, CostLedger};
use delta_server::{
    shard_trace, BatchItem, BatchReply, DeltaClient, PolicyKind, Request, Response, RoundRobin,
    Server, ServerConfig,
};
use delta_workload::{Event, SyntheticSurvey, WorkloadConfig};

/// Shard count for the parameterized tests; the CI matrix overrides it
/// (1, 4, 8) so partition edge cases run on every push.
fn shard_count() -> usize {
    std::env::var("DELTA_TEST_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn small_survey(n: usize) -> SyntheticSurvey {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = n;
    cfg.n_updates = n;
    SyntheticSurvey::generate(&cfg)
}

fn start_server(
    survey: &SyntheticSurvey,
    n_shards: usize,
    policy: PolicyKind,
    cache_fraction: f64,
) -> (Server, u64) {
    let cache_bytes = (survey.catalog.total_bytes() as f64 * cache_fraction) as u64;
    let config = ServerConfig {
        bind: "127.0.0.1:0".to_string(),
        n_shards,
        cache_bytes,
        policy,
        seed: 42,
        ..ServerConfig::default()
    };
    let server = Server::start(config, survey.catalog.clone()).expect("server starts");
    (server, cache_bytes)
}

fn replay(client: &mut DeltaClient, survey: &SyntheticSurvey) {
    for event in survey.trace.iter() {
        match event {
            Event::Query(q) => {
                client.query(q).expect("query served");
            }
            Event::Update(u) => {
                client.update(u).expect("update applied");
            }
        }
    }
}

/// The sharded-simulation twin of a server run: per-shard ledgers from
/// `sim::simulate` over `shard_trace`'s sub-traces.
fn expected_shard_ledgers(
    survey: &SyntheticSurvey,
    n_shards: usize,
    policy: PolicyKind,
    cache_bytes: u64,
    seed: u64,
) -> Vec<CostLedger> {
    let map = RoundRobin::new(n_shards, survey.catalog.len());
    shard_trace(&map, &survey.catalog, &survey.trace, cache_bytes)
        .into_iter()
        .enumerate()
        .map(|(s, (catalog, trace, shard_cache))| {
            let mut p = policy.build(shard_cache, seed + s as u64);
            let opts = sim::SimOptions {
                cache_bytes: shard_cache,
                sample_every: u64::MAX,
                link: None,
            };
            sim::simulate(p.as_mut(), &catalog, &trace, opts).ledger
        })
        .collect()
}

#[test]
fn sharded_server_matches_sharded_simulation_exactly() {
    let n_shards = shard_count();
    let survey = small_survey(400);
    let (server, cache_bytes) = start_server(&survey, n_shards, PolicyKind::VCover, 0.3);
    let addr = server.local_addr();

    let mut client = DeltaClient::connect(addr).expect("connect");
    replay(&mut client, &survey);
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    let final_stats = server.join();

    assert_eq!(stats.shards.len(), n_shards);
    let expected = expected_shard_ledgers(&survey, n_shards, PolicyKind::VCover, cache_bytes, 42);
    for (shard, want) in stats.shards.iter().zip(&expected) {
        assert_eq!(
            &shard.metrics.ledger, want,
            "shard {} ledger diverged from its in-process simulation twin",
            shard.shard
        );
    }

    // Per-shard ledgers sum exactly to the aggregate.
    let global = stats.total_ledger();
    let shard_sum: u64 = stats
        .shards
        .iter()
        .map(|s| s.metrics.ledger.total().bytes())
        .sum();
    assert!(global.total().bytes() > 0, "the replay must move bytes");
    assert_eq!(shard_sum, global.total().bytes());

    // Every query was satisfied somewhere.
    assert!(
        global.shipped_queries + global.local_answers >= survey.trace.n_queries() as u64,
        "each query produces at least one shard sub-query"
    );

    // The final (post-drain) snapshot agrees with the live one.
    assert_eq!(final_stats.total_ledger(), global);
    assert_eq!(final_stats.total_events(), stats.total_events());
}

#[test]
fn single_shard_server_equals_unsharded_simulation() {
    let survey = small_survey(300);
    let (server, cache_bytes) = start_server(&survey, 1, PolicyKind::VCover, 0.3);
    let mut client = DeltaClient::connect(server.local_addr()).expect("connect");
    replay(&mut client, &survey);
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    server.join();

    // One shard means no splitting at all: the server must match a plain
    // sim::simulate run byte-for-byte.
    let mut vcover = delta_core::VCover::new(cache_bytes, 42);
    let opts = sim::SimOptions {
        cache_bytes,
        sample_every: u64::MAX,
        link: None,
    };
    let report = sim::simulate(&mut vcover, &survey.catalog, &survey.trace, opts);
    assert_eq!(stats.shards.len(), 1);
    assert_eq!(stats.shards[0].metrics.ledger, report.ledger);
    assert_eq!(stats.total_events(), survey.trace.len() as u64);
}

#[test]
fn nocache_server_ships_exactly_the_trace_query_bytes() {
    let survey = small_survey(200);
    let (server, _) = start_server(&survey, 3, PolicyKind::NoCache, 0.3);
    let mut client = DeltaClient::connect(server.local_addr()).expect("connect");
    replay(&mut client, &survey);
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    server.join();

    // NoCache ships every sub-query; apportioning preserves byte totals,
    // so the global query-ship cost equals the trace's query bytes.
    let global = stats.total_ledger();
    assert_eq!(
        global.breakdown.query_ship.bytes(),
        survey.trace.total_query_bytes()
    );
    assert_eq!(global.breakdown.update_ship.bytes(), 0);
    assert_eq!(global.breakdown.load.bytes(), 0);
}

#[test]
fn concurrent_clients_preserve_aggregate_accounting() {
    let survey = small_survey(240);
    let (server, _) = start_server(&survey, 4, PolicyKind::NoCache, 0.3);
    let addr = server.local_addr();

    // Four clients each replay a quarter of the events (round-robin deal).
    std::thread::scope(|scope| {
        for lane in 0..4usize {
            let survey = &survey;
            scope.spawn(move || {
                let mut client = DeltaClient::connect(addr).expect("connect");
                for (i, event) in survey.trace.iter().enumerate() {
                    if i % 4 != lane {
                        continue;
                    }
                    match event {
                        Event::Query(q) => {
                            client.query(q).expect("query");
                        }
                        Event::Update(u) => {
                            client.update(u).expect("update");
                        }
                    }
                }
            });
        }
    });

    let mut client = DeltaClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    server.join();

    // Interleaving across connections can reorder events, but NoCache
    // accounting is order-independent: totals must still be exact.
    let global = stats.total_ledger();
    assert_eq!(
        global.breakdown.query_ship.bytes(),
        survey.trace.total_query_bytes()
    );
    let shard_sum: u64 = stats
        .shards
        .iter()
        .map(|s| s.metrics.ledger.total().bytes())
        .sum();
    assert_eq!(shard_sum, global.total().bytes());
}

#[test]
fn server_rejects_unknown_objects_and_keeps_serving() {
    use delta_storage::ObjectId;
    use delta_workload::{QueryEvent, QueryKind, UpdateEvent};

    let survey = small_survey(50);
    let n_objects = survey.catalog.len() as u32;
    let (server, _) = start_server(&survey, 2, PolicyKind::VCover, 0.3);
    let mut client = DeltaClient::connect(server.local_addr()).expect("connect");

    let bad_query = QueryEvent {
        seq: 1,
        objects: vec![ObjectId(n_objects + 5)],
        result_bytes: 10,
        tolerance: 0,
        kind: QueryKind::Cone,
    };
    assert!(client.query(&bad_query).is_err());
    let bad_update = UpdateEvent {
        seq: 2,
        object: ObjectId(n_objects),
        bytes: 1,
    };
    assert!(client.update(&bad_update).is_err());

    // The connection survives the errors and serves valid requests.
    let ok = UpdateEvent {
        seq: 3,
        object: ObjectId(0),
        bytes: 5,
    };
    let reply = client.update(&ok).expect("valid update still works");
    assert_eq!(reply.version, 1);
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.total_events(),
        1,
        "rejected events must not be accounted"
    );

    client.shutdown().expect("shutdown");
    server.join();
}

/// Chunks `events` with cycling batch sizes and replays them through a
/// pipelined connection with `window` frames in flight. Returns every
/// `(object, version)` pair from update replies, for log-length checks.
fn replay_mixed(
    addr: std::net::SocketAddr,
    events: &[Event],
    batch_sizes: &[usize],
    window: usize,
) -> Vec<(delta_storage::ObjectId, u64)> {
    let mut chunks: Vec<Vec<BatchItem>> = Vec::new();
    let mut i = 0usize;
    let mut size_i = 0usize;
    while i < events.len() {
        let take = batch_sizes[size_i % batch_sizes.len()]
            .max(1)
            .min(events.len() - i);
        size_i += 1;
        chunks.push(
            events[i..i + take]
                .iter()
                .map(|e| match e {
                    Event::Query(q) => BatchItem::Query(q.clone()),
                    Event::Update(u) => BatchItem::Update(*u),
                })
                .collect(),
        );
        i += take;
    }

    let mut pipe = DeltaClient::connect(addr)
        .expect("connect")
        .pipelined(window);
    let mut corr_to_chunk = std::collections::HashMap::new();
    let mut versions = Vec::new();
    let handle = |corr: u64,
                  response: Response,
                  corr_to_chunk: &std::collections::HashMap<u64, usize>,
                  versions: &mut Vec<(delta_storage::ObjectId, u64)>,
                  chunks: &[Vec<BatchItem>]| {
        let chunk = &chunks[corr_to_chunk[&corr]];
        match response {
            Response::BatchOk(replies) => {
                assert_eq!(replies.len(), chunk.len());
                for (reply, item) in replies.iter().zip(chunk) {
                    match (reply, item) {
                        (BatchReply::Query { .. }, BatchItem::Query(_)) => {}
                        (BatchReply::Update { version, .. }, BatchItem::Update(u)) => {
                            versions.push((u.object, *version));
                        }
                        other => panic!("reply/item mismatch: {other:?}"),
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    };
    for (chunk_i, chunk) in chunks.iter().enumerate() {
        let corr = pipe.submit(&Request::Batch(chunk.clone())).expect("submit");
        corr_to_chunk.insert(corr, chunk_i);
        for (corr, response) in pipe.completed() {
            handle(corr, response, &corr_to_chunk, &mut versions, &chunks);
        }
    }
    for (corr, response) in pipe.drain().expect("drain") {
        handle(corr, response, &corr_to_chunk, &mut versions, &chunks);
    }
    versions
}

/// One connection, mixed batch sizes, deep pipeline: because per-shard
/// sub-event order still equals trace order, the per-shard ledgers must
/// stay byte-identical to the offline `shard_trace` simulation twin —
/// batching and pipelining buy throughput without changing a single
/// decision.
#[test]
fn batched_pipelined_replay_matches_sharded_simulation_exactly() {
    let n_shards = shard_count();
    let survey = small_survey(300);
    let (server, cache_bytes) = start_server(&survey, n_shards, PolicyKind::VCover, 0.3);
    let addr = server.local_addr();

    replay_mixed(addr, &survey.trace.events, &[1, 3, 64, 7, 128, 2], 8);

    let mut client = DeltaClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    server.join();

    let expected = expected_shard_ledgers(&survey, n_shards, PolicyKind::VCover, cache_bytes, 42);
    for (shard, want) in stats.shards.iter().zip(&expected) {
        assert_eq!(
            &shard.metrics.ledger, want,
            "shard {} ledger diverged under batching+pipelining",
            shard.shard
        );
    }
}

/// Four concurrent connections with different batch sizes and pipeline
/// windows: cross-connection interleaving may reorder events, but the
/// order-independent invariants must hold exactly — total query bytes
/// (NoCache ships everything), shard-sum == aggregate, and per-object
/// update-log lengths (each object's final version equals its update
/// count in the trace).
#[test]
fn concurrent_mixed_batch_and_pipeline_preserve_invariants() {
    let n_shards = shard_count();
    let survey = small_survey(240);
    let (server, _) = start_server(&survey, n_shards, PolicyKind::NoCache, 0.3);
    let addr = server.local_addr();

    // Lane l gets events i with i % 4 == l, each lane with its own
    // batching/pipelining shape (including the degenerate 1/1).
    let shapes: [(&[usize], usize); 4] = [(&[1], 1), (&[4, 9], 2), (&[64], 8), (&[2, 31, 5], 4)];
    let all_versions = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (lane, (batch_sizes, window)) in shapes.iter().enumerate() {
            let survey = &survey;
            let all_versions = &all_versions;
            scope.spawn(move || {
                let lane_events: Vec<Event> = survey
                    .trace
                    .events
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 4 == lane)
                    .map(|(_, e)| e.clone())
                    .collect();
                let versions = replay_mixed(addr, &lane_events, batch_sizes, *window);
                all_versions.lock().unwrap().extend(versions);
            });
        }
    });

    let mut client = DeltaClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    server.join();

    // Invariant 1: NoCache ships every sub-query; apportioning preserves
    // byte totals exactly, independent of arrival order.
    let global = stats.total_ledger();
    assert_eq!(
        global.breakdown.query_ship.bytes(),
        survey.trace.total_query_bytes()
    );
    let shard_sum: u64 = stats
        .shards
        .iter()
        .map(|s| s.metrics.ledger.total().bytes())
        .sum();
    assert_eq!(shard_sum, global.total().bytes());
    assert!(stats.total_events() as usize >= survey.trace.len());

    // Invariant 2: per-object update-log lengths. Every update bumps its
    // object's version by exactly one, so the max version each object
    // reached equals its update count in the trace, whatever the
    // interleaving.
    let mut expected_counts = std::collections::HashMap::new();
    for event in survey.trace.iter() {
        if let Event::Update(u) = event {
            *expected_counts.entry(u.object).or_insert(0u64) += 1;
        }
    }
    let mut max_versions = std::collections::HashMap::new();
    for (object, version) in all_versions.into_inner().unwrap() {
        let entry = max_versions.entry(object).or_insert(0u64);
        *entry = (*entry).max(version);
    }
    assert_eq!(max_versions.len(), expected_counts.len());
    for (object, want) in expected_counts {
        assert_eq!(
            max_versions.get(&object),
            Some(&want),
            "object {object} log length diverged"
        );
    }
}

#[test]
fn wire_meter_records_traffic_classes() {
    use delta_net::TrafficClass;

    let survey = small_survey(60);
    let (server, _) = start_server(&survey, 2, PolicyKind::VCover, 0.3);
    let mut client = DeltaClient::connect(server.local_addr()).expect("connect");
    replay(&mut client, &survey);
    client.stats().expect("stats");

    let meter = server.meter();
    assert!(
        meter.bytes_for(TrafficClass::QueryShip) > 0,
        "query frames metered"
    );
    assert!(
        meter.bytes_for(TrafficClass::UpdateShip) > 0,
        "update frames metered"
    );
    assert!(
        meter.bytes_for(TrafficClass::Control) > 0,
        "responses metered as control"
    );

    client.shutdown().expect("shutdown");
    server.join();
}
