//! Property tests for the wire codec: `decode ∘ encode = id` for every
//! request and response kind, and hostile inputs (truncated frames,
//! oversized lengths, bad enum tags, trailing bytes) always come back as
//! clean `io::Error`s — never panics, never bogus values.

use delta_core::EngineMetrics;
use delta_core::{Cost, CostLedger};
use delta_server::{
    BatchItem, BatchReply, HistogramSnapshot, Request, Response, ShardStats, SqlStage,
    StatsSnapshot, TelemetrySnapshot,
};
use delta_storage::ObjectId;
use delta_workload::{QueryEvent, QueryKind, UpdateEvent};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = QueryKind> {
    prop::sample::select(vec![
        QueryKind::Cone,
        QueryKind::Range,
        QueryKind::SelfJoin,
        QueryKind::Aggregate,
        QueryKind::Scan,
        QueryKind::Selection,
    ])
}

fn arb_query() -> impl Strategy<Value = QueryEvent> {
    (
        0u64..u64::MAX,
        prop::collection::vec(0u32..1_000_000, 0..40),
        0u64..u64::MAX,
        0u64..100_000,
        arb_kind(),
    )
        .prop_map(|(seq, objects, result_bytes, tolerance, kind)| QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes,
            tolerance,
            kind,
        })
}

fn arb_update() -> impl Strategy<Value = UpdateEvent> {
    (0u64..u64::MAX, 0u32..1_000_000, 0u64..u64::MAX).prop_map(|(seq, object, bytes)| UpdateEvent {
        seq,
        object: ObjectId(object),
        bytes,
    })
}

fn arb_sql_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("SELECT ra FROM PhotoObj WHERE CIRCLE(185.0, 15.3, 0.5)".to_string()),
        proptest::string::pattern("[a-zA-Z0-9 _*(),.<>=']{0,200}"),
        // Non-ASCII UTF-8 must survive the byte-length prefix.
        Just("SELECT ★ FROM PhotoObj — ßky ÷ query".to_string()),
    ]
}

fn arb_item() -> impl Strategy<Value = BatchItem> {
    prop_oneof![
        arb_query().prop_map(BatchItem::Query),
        arb_update().prop_map(BatchItem::Update),
    ]
}

fn arb_plain_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_query().prop_map(Request::Query),
        arb_update().prop_map(Request::Update),
        (0u64..u64::MAX, arb_sql_text()).prop_map(|(seq, sql)| Request::Sql { seq, sql }),
        prop::collection::vec(arb_item(), 0..12).prop_map(Request::Batch),
        Just(Request::Stats),
        Just(Request::Telemetry),
        Just(Request::Shutdown),
        // The replication vocabulary rides the same framing.
        (
            0u16..512,
            0u64..u64::MAX / 2,
            prop::collection::vec(arb_item(), 0..8)
        )
            .prop_map(|(shard, from_offset, items)| Request::Replicate {
                shard,
                from_offset,
                items,
            }),
        (0u16..512, prop::collection::vec(0u8..=255, 0..256))
            .prop_map(|(shard, state)| Request::ReplicaBootstrap { shard, state }),
        Just(Request::ReplicaStatus),
        (0u16..512).prop_map(|shard| Request::Promote { shard }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_plain_request(),
        (0u64..u64::MAX, arb_plain_request()).prop_map(|(corr, inner)| Request::Tagged {
            corr,
            inner: Box::new(inner),
        }),
    ]
}

fn arb_ledger() -> impl Strategy<Value = CostLedger> {
    (
        (0u64..u64::MAX / 4, 0u64..u64::MAX / 4, 0u64..u64::MAX / 4),
        (
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..1_000_000,
        ),
    )
        .prop_map(|((q, u, l), (sq, la, us, lo, ev))| {
            let mut ledger = CostLedger::default();
            ledger.breakdown.query_ship = Cost(q);
            ledger.breakdown.update_ship = Cost(u);
            ledger.breakdown.load = Cost(l);
            ledger.shipped_queries = sq;
            ledger.local_answers = la;
            ledger.update_ships = us;
            ledger.loads = lo;
            ledger.evictions = ev;
            ledger
        })
}

fn arb_shard_stats() -> impl Strategy<Value = ShardStats> {
    (
        (0u16..256, proptest::string::pattern("[A-Za-z]{1,12}")),
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..100_000,
        ),
        (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        arb_ledger(),
    )
        .prop_map(
            |(
                (shard, policy),
                (queries, cache_capacity, cache_used, residents),
                (updates, tolerance_served, _),
                ledger,
            )| {
                ShardStats {
                    shard,
                    policy,
                    metrics: EngineMetrics {
                        ledger,
                        queries,
                        updates,
                        tolerance_served,
                        cache_capacity,
                        cache_used,
                        residents,
                    },
                }
            },
        )
}

/// Metric names as the registry produces them (dotted lowercase).
fn arb_metric_name() -> impl Strategy<Value = String> {
    proptest::string::pattern("[a-z0-9_.]{1,24}")
}

/// A valid sparse histogram snapshot: bucket indices in range and
/// strictly increasing — the canonical form `dec_telemetry` enforces.
fn arb_histogram_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (
        prop::collection::btree_set(0u32..delta_telemetry::N_BUCKETS as u32, 0..8),
        prop::collection::vec(1u64..u64::MAX, 8),
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
    )
        .prop_map(|(indices, counts, count, sum, max)| HistogramSnapshot {
            count,
            sum,
            max,
            buckets: indices.into_iter().zip(counts).collect(),
        })
}

/// Distinct metric names zipped with values (the vendored proptest has
/// no `btree_map`, so a sorted name set stands in — the codec accepts
/// any ordering, this just avoids duplicate keys).
fn arb_telemetry_snapshot() -> impl Strategy<Value = TelemetrySnapshot> {
    (
        (
            prop::collection::btree_set(arb_metric_name(), 0..5),
            prop::collection::vec(0u64..u64::MAX, 5),
        ),
        (
            prop::collection::btree_set(arb_metric_name(), 0..4),
            prop::collection::vec(0u64..u64::MAX, 4),
        ),
        (
            prop::collection::btree_set(arb_metric_name(), 0..4),
            prop::collection::vec(arb_histogram_snapshot(), 4),
        ),
    )
        .prop_map(|((cn, cv), (gn, gv), (hn, hv))| TelemetrySnapshot {
            counters: cn.into_iter().zip(cv).collect(),
            gauges: gn.into_iter().zip(gv).collect(),
            histograms: hn.into_iter().zip(hv).collect(),
        })
}

fn arb_batch_reply() -> impl Strategy<Value = BatchReply> {
    prop_oneof![
        (0u16..64, 0u16..64, 0u16..64).prop_map(|(shards_touched, local_answers, shipped)| {
            BatchReply::Query {
                shards_touched,
                local_answers,
                shipped,
            }
        }),
        (0u16..64, 0u64..u64::MAX)
            .prop_map(|(shard, version)| BatchReply::Update { shard, version }),
        (0u16..10, proptest::string::pattern("[ -~]{0,60}"))
            .prop_map(|(code, message)| { BatchReply::Error { code, message } }),
    ]
}

fn arb_plain_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0u16..64, 0u16..64, 0u16..64).prop_map(|(shards_touched, local_answers, shipped)| {
            Response::QueryOk {
                shards_touched,
                local_answers,
                shipped,
            }
        }),
        (0u16..64, 0u64..u64::MAX)
            .prop_map(|(shard, version)| Response::UpdateOk { shard, version }),
        (
            (0u16..64, 0u16..64, 0u16..64),
            (0u32..100_000, 0u64..u64::MAX, 0u64..100_000, arb_kind()),
        )
            .prop_map(
                |(
                    (shards_touched, local_answers, shipped),
                    (objects, result_bytes, tolerance, kind),
                )| {
                    Response::SqlOk {
                        shards_touched,
                        local_answers,
                        shipped,
                        objects,
                        result_bytes,
                        tolerance,
                        kind,
                    }
                }
            ),
        (
            prop::sample::select(vec![SqlStage::Parse, SqlStage::Analyze]),
            0u32..10_000,
            0u32..10_000,
            proptest::string::pattern("[ -~]{0,80}"),
        )
            .prop_map(
                |(stage, span_start, span_end, message)| Response::SqlRejected {
                    stage,
                    span_start,
                    span_end,
                    message,
                }
            ),
        prop::collection::vec(arb_batch_reply(), 0..12).prop_map(Response::BatchOk),
        prop::collection::vec(arb_shard_stats(), 0..6)
            .prop_map(|shards| Response::StatsOk(StatsSnapshot { shards })),
        arb_telemetry_snapshot().prop_map(Response::TelemetryOk),
        Just(Response::ShutdownOk),
        (0u16..10, proptest::string::pattern("[ -~]{0,60}"))
            .prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        arb_plain_response(),
        (0u64..u64::MAX, arb_plain_response()).prop_map(|(corr, inner)| Response::Tagged {
            corr,
            inner: Box::new(inner),
        }),
    ]
}

proptest! {
    /// `decode ∘ encode = id` over every request kind, tagged included.
    #[test]
    fn request_round_trips(req in arb_request()) {
        let encoded = req.encode();
        let decoded = Request::decode(&encoded);
        prop_assert_eq!(decoded.unwrap(), req);
    }

    /// `decode ∘ encode = id` over every response kind, tagged included.
    #[test]
    fn response_round_trips(resp in arb_response()) {
        let encoded = resp.encode();
        let decoded = Response::decode(&encoded);
        prop_assert_eq!(decoded.unwrap(), resp);
    }

    /// Every truncation of a valid frame is a clean error (the codec
    /// never panics and never conjures a value from a prefix).
    #[test]
    fn truncated_requests_error_cleanly(req in arb_request()) {
        let encoded = req.encode();
        for cut in 0..encoded.len() {
            prop_assert!(Request::decode(&encoded[..cut]).is_err(),
                "prefix of {cut} bytes decoded", );
        }
    }

    /// Same for responses.
    #[test]
    fn truncated_responses_error_cleanly(resp in arb_response()) {
        let encoded = resp.encode();
        for cut in 0..encoded.len() {
            prop_assert!(Response::decode(&encoded[..cut]).is_err());
        }
    }

    /// Trailing garbage after a valid frame is rejected on both sides.
    #[test]
    fn trailing_bytes_rejected(req in arb_request(), junk in 1u8..=255) {
        let mut encoded = req.encode();
        encoded.push(junk);
        prop_assert!(Request::decode(&encoded).is_err());
    }

    /// Arbitrary byte soup either decodes to something that re-encodes
    /// (a genuine frame) or errors — it must never panic.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..300)) {
        if let Ok(req) = Request::decode(&bytes) {
            // What decoded must re-encode to the same bytes (the codec
            // has no redundant encodings).
            prop_assert_eq!(req.encode(), bytes.clone());
        }
        if let Ok(resp) = Response::decode(&bytes) {
            prop_assert_eq!(resp.encode(), bytes);
        }
    }

    /// Flipping the opcode to a bad value errors.
    #[test]
    fn bad_opcodes_rejected(req in arb_plain_request(), op in 0x20u8..0x80) {
        let mut encoded = req.encode();
        encoded[0] = op;
        prop_assert!(Request::decode(&encoded).is_err());
    }
}

/// A deterministic corpus of specifically hostile frames, separate from
/// the random sweep so each case is pinned forever.
#[test]
fn hostile_corpus_errors_cleanly() {
    let cases: Vec<Vec<u8>> = vec![
        vec![],                          // empty payload
        vec![0x00],                      // zero opcode
        vec![0x01],                      // query with no fields
        vec![0x05, 0, 0, 0, 0, 0, 0, 0], // SQL with truncated seq
        {
            // SQL whose text length points far past the payload.
            let mut v = vec![0x05];
            v.extend_from_slice(&7u64.to_be_bytes());
            v.extend_from_slice(&u32::MAX.to_be_bytes());
            v.extend_from_slice(b"SELECT");
            v
        },
        {
            // Batch claiming u32::MAX items with one byte of body.
            let mut v = vec![0x06];
            v.extend_from_slice(&u32::MAX.to_be_bytes());
            v.push(0);
            v
        },
        {
            // Batch with a bad item tag.
            let mut v = vec![0x06];
            v.extend_from_slice(&1u32.to_be_bytes());
            v.push(9);
            v
        },
        {
            // Query whose object count outruns the payload.
            let mut v = vec![0x01];
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&0u64.to_be_bytes());
            v.push(0);
            v.extend_from_slice(&1_000_000u32.to_be_bytes());
            v.extend_from_slice(&[0, 0, 0, 1]);
            v
        },
        {
            // Query with an unknown kind tag.
            let mut v = vec![0x01];
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&0u64.to_be_bytes());
            v.push(250);
            v.extend_from_slice(&0u32.to_be_bytes());
            v
        },
        {
            // Tagged wrapping tagged.
            let inner = Request::Tagged {
                corr: 1,
                inner: Box::new(Request::Stats),
            }
            .encode();
            let mut v = vec![0x10];
            v.extend_from_slice(&2u64.to_be_bytes());
            v.extend_from_slice(&inner);
            v
        },
        {
            // Tagged with a corr id but no inner frame.
            let mut v = vec![0x10];
            v.extend_from_slice(&3u64.to_be_bytes());
            v
        },
        {
            // Stats request with trailing bytes.
            let mut v = Request::Stats.encode();
            v.extend_from_slice(b"tail");
            v
        },
        {
            // SQL with invalid UTF-8 text.
            let mut v = vec![0x05];
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&2u32.to_be_bytes());
            v.extend_from_slice(&[0xFF, 0xFE]);
            v
        },
        {
            // Telemetry request with trailing bytes (it carries no body).
            let mut v = Request::Telemetry.encode();
            v.push(0);
            v
        },
    ];
    for (i, case) in cases.iter().enumerate() {
        assert!(
            Request::decode(case).is_err(),
            "hostile request case {i} decoded: {case:?}"
        );
    }

    // Response-side hostiles.
    let resp_cases: Vec<Vec<u8>> = vec![
        vec![0x85],             // SqlOk with no fields
        vec![0x86, 7],          // SqlRejected with a bad stage tag... (7)
        vec![0x87, 0, 0, 0, 1], // BatchOk claiming an item, no body
        {
            // BatchOk with a bad reply tag.
            let mut v = vec![0x87];
            v.extend_from_slice(&1u32.to_be_bytes());
            v.push(7);
            v
        },
        {
            // Nested tagged response.
            let inner = Response::Tagged {
                corr: 1,
                inner: Box::new(Response::ShutdownOk),
            }
            .encode();
            let mut v = vec![0x90];
            v.extend_from_slice(&2u64.to_be_bytes());
            v.extend_from_slice(&inner);
            v
        },
        vec![0x83, 0xFF],       // StatsOk with a truncated shard count
        vec![0x83, 0xFF, 0xFF], // StatsOk claiming 65535 shards, no body
        {
            // StatsOk whose single shard's metrics block is cut short.
            let mut v = vec![0x83];
            v.extend_from_slice(&1u16.to_be_bytes());
            v.extend_from_slice(&0u16.to_be_bytes()); // shard id
            v.extend_from_slice(&5u16.to_be_bytes()); // policy len
            v.extend_from_slice(b"lru--");
            v.extend_from_slice(&1u64.to_be_bytes()); // 1 of 14 metric words
            v
        },
        vec![0x8D], // TelemetryOk with no counts at all
        {
            // TelemetryOk claiming u32::MAX counters with a tiny body.
            let mut v = vec![0x8D];
            v.extend_from_slice(&u32::MAX.to_be_bytes());
            v.push(0);
            v
        },
        {
            // TelemetryOk histogram with a bucket index out of range.
            let mut v = vec![0x8D];
            v.extend_from_slice(&0u32.to_be_bytes()); // no counters
            v.extend_from_slice(&0u32.to_be_bytes()); // no gauges
            v.extend_from_slice(&1u32.to_be_bytes()); // one histogram
            v.extend_from_slice(&1u16.to_be_bytes());
            v.push(b'h'); // name "h"
            v.extend_from_slice(&1u64.to_be_bytes()); // count
            v.extend_from_slice(&1u64.to_be_bytes()); // sum
            v.extend_from_slice(&1u64.to_be_bytes()); // max
            v.extend_from_slice(&1u32.to_be_bytes()); // one bucket
            v.extend_from_slice(&(delta_telemetry::N_BUCKETS as u32).to_be_bytes());
            v.extend_from_slice(&1u64.to_be_bytes());
            v
        },
        {
            // TelemetryOk histogram whose bucket indices do not strictly
            // increase (a forged frame that would poison a merge).
            let mut v = vec![0x8D];
            v.extend_from_slice(&0u32.to_be_bytes());
            v.extend_from_slice(&0u32.to_be_bytes());
            v.extend_from_slice(&1u32.to_be_bytes());
            v.extend_from_slice(&1u16.to_be_bytes());
            v.push(b'h');
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&2u32.to_be_bytes()); // two buckets
            v.extend_from_slice(&7u32.to_be_bytes());
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&7u32.to_be_bytes()); // repeat index
            v.extend_from_slice(&1u64.to_be_bytes());
            v
        },
        {
            // TelemetryOk histogram claiming more buckets than the body
            // holds.
            let mut v = vec![0x8D];
            v.extend_from_slice(&0u32.to_be_bytes());
            v.extend_from_slice(&0u32.to_be_bytes());
            v.extend_from_slice(&1u32.to_be_bytes());
            v.extend_from_slice(&1u16.to_be_bytes());
            v.push(b'h');
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&1u64.to_be_bytes());
            v.extend_from_slice(&u32::MAX.to_be_bytes());
            v.push(0);
            v
        },
    ];
    for (i, case) in resp_cases.iter().enumerate() {
        assert!(
            Response::decode(case).is_err(),
            "hostile response case {i} decoded: {case:?}"
        );
    }
}
