//! The failover acceptance pin: SIGKILL a primary mid-trace in a
//! 2-node cluster running `--replicas 1` and assert the whole
//! robustness contract at once —
//!
//! * **zero wrong answers**: every event either succeeds, fails with a
//!   typed error, or is fenced as `ALREADY_APPLIED` on a retry — never
//!   a silent drop and never a fabricated result;
//! * **bounded unavailability**: the first success on an orphaned shard
//!   lands within 2× the router's `node_timeout` of the kill;
//! * **determinism across the failover**: the final per-shard ledgers
//!   (served by the promoted backups) are byte-identical to
//!   `sim::simulate` over the offline `shard_trace` twin;
//! * **live counters**: `router.promotions`/`router.failovers` and the
//!   `replica.*` scrape plane all moved.
//!
//! The nodes are real `delta-serverd` processes (a SIGKILL must take a
//! whole process, not a thread), sharing the catalog through a trace
//! file; the router runs in-process so the test can keep a tight
//! `node_timeout`.
//!
//! The trace uses **single-object queries only**: a multi-shard item
//! split across *different nodes* is at-least-once under failover (the
//! surviving node has no fence for a retried sub-item it already
//! applied), which is exactly the caveat DESIGN.md documents.

use delta_core::{sim, CostLedger, VCover};
use delta_server::{
    error_code, shard_trace, DeltaClient, FrontDoor, NodeRole, PartitionerKind, Request, Response,
    Router, RouterConfig,
};
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::{Event, QueryEvent, QueryKind, Trace, UpdateEvent};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const NODES: usize = 2;
const SEED: u64 = 42;
const N_EVENTS: usize = 6_000;
const NODE_TIMEOUT: Duration = Duration::from_millis(1_000);

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A deterministic catalog + single-shard-item trace (single-object
/// queries, single-object updates, seqs 1..=N).
fn workload() -> (ObjectCatalog, Trace) {
    let mut rng = 0xfeed_d0d0_cafe_f00du64;
    let sizes: Vec<u64> = (0..256).map(|_| 500 + xorshift(&mut rng) % 7_500).collect();
    let catalog = ObjectCatalog::from_sizes(&sizes);
    let n = catalog.len() as u64;
    let events: Vec<Event> = (0..N_EVENTS)
        .map(|i| {
            let seq = i as u64 + 1;
            let object = ObjectId((xorshift(&mut rng) % n) as u32);
            if xorshift(&mut rng).is_multiple_of(4) {
                Event::Update(UpdateEvent {
                    seq,
                    object,
                    bytes: 1 + xorshift(&mut rng) % 4_000,
                })
            } else {
                Event::Query(QueryEvent {
                    seq,
                    objects: vec![object],
                    result_bytes: 64 + xorshift(&mut rng) % 2_000,
                    tolerance: xorshift(&mut rng) % 3,
                    kind: if xorshift(&mut rng).is_multiple_of(2) {
                        QueryKind::Selection
                    } else {
                        QueryKind::Cone
                    },
                })
            }
        })
        .collect();
    (catalog, Trace::new(events))
}

/// Per-shard `sim::simulate` ledgers over the offline twin — the
/// oracle the post-failover cluster must match byte for byte.
fn expected_shard_ledgers(
    catalog: &ObjectCatalog,
    trace: &Trace,
    cache_bytes: u64,
) -> Vec<CostLedger> {
    let map = PartitionerKind::RoundRobin.build(SHARDS, catalog.len());
    shard_trace(map.as_ref(), catalog, trace, cache_bytes)
        .into_iter()
        .enumerate()
        .map(|(shard, (catalog, trace, shard_cache))| {
            let mut p = VCover::new(shard_cache, SEED + shard as u64);
            let opts = sim::SimOptions {
                cache_bytes: shard_cache,
                sample_every: u64::MAX,
                link: None,
            };
            sim::simulate(&mut p, &catalog, &trace, opts).ledger
        })
        .collect()
}

/// Reserves a distinct loopback port by binding ephemeral and dropping
/// the listener (the usual small race; the daemons bind right after).
fn free_addr() -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = l.local_addr().expect("local addr");
    drop(l);
    addr
}

/// Spawns one `delta-serverd` cluster node as a real OS process.
fn spawn_node(
    bin: &str,
    addr: SocketAddr,
    node: usize,
    peers: &str,
    trace_path: &std::path::Path,
    cache_bytes: u64,
) -> Child {
    Command::new(bin)
        .args([
            "--bind",
            &addr.to_string(),
            "--shards",
            &SHARDS.to_string(),
            "--partitioner",
            "rr",
            "--cache-bytes",
            &cache_bytes.to_string(),
            "--policy",
            "vcover",
            "--seed",
            &SEED.to_string(),
            "--trace",
            &trace_path.display().to_string(),
            "--node-id",
            &node.to_string(),
            "--nodes",
            &NODES.to_string(),
            "--replicas",
            "1",
            "--peers",
            peers,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn delta-serverd")
}

/// Polls until the node at `addr` answers a cluster-role hello.
fn await_node(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(mut c) = DeltaClient::connect(addr) {
            if let Ok(info) = c.hello(0) {
                assert_eq!(info.role, NodeRole::ClusterNode);
                return;
            }
        }
        assert!(Instant::now() < deadline, "node {addr} never came up");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn connect_router(addr: SocketAddr) -> DeltaClient {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match DeltaClient::connect(addr) {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "router unreachable: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn sigkilled_primary_fails_over_with_zero_wrong_answers() {
    let (catalog, trace) = workload();
    let cache_bytes = (catalog.total_bytes() as f64 * 0.3) as u64;
    let trace_path =
        std::env::temp_dir().join(format!("delta-failover-{}.jsonl", std::process::id()));
    delta_workload::write_jsonl(&trace_path, &catalog, &trace, "failover chaos trace")
        .expect("write trace file");

    // Two real node processes: node 0 hosts shards {0, 2}, node 1 hosts
    // {1, 3}; with --replicas 1 each node backs up its successor, so
    // node 0 carries backups of {1, 3} — the shards we orphan.
    let addrs: Vec<SocketAddr> = (0..NODES).map(|_| free_addr()).collect();
    let peers = format!("{},{}", addrs[0], addrs[1]);
    let bin = env!("CARGO_BIN_EXE_delta-serverd");
    let mut children: Vec<Child> = (0..NODES)
        .map(|node| spawn_node(bin, addrs[node], node, &peers, &trace_path, cache_bytes))
        .collect();
    for &addr in &addrs {
        await_node(addr);
    }

    let router = Router::start(
        RouterConfig {
            bind: "127.0.0.1:0".to_string(),
            nodes: addrs.iter().map(|a| a.to_string()).collect(),
            frontend: None,
            front: FrontDoor::Reactor { threads: 2 },
            stall_limit: delta_server::connection::STALL_LIMIT,
            node_timeout: NODE_TIMEOUT,
        },
        catalog.clone(),
    )
    .expect("router starts");
    let router_addr = router.local_addr();

    let map = PartitionerKind::RoundRobin.build(SHARDS, catalog.len());
    let dead_node = 1usize;
    let orphaned = |e: &Event| {
        let o = match e {
            Event::Query(q) => q.objects[0],
            Event::Update(u) => u.object,
        };
        map.shard_of(o) % NODES == dead_node
    };

    let kill_at = N_EVENTS / 2;
    let mut client = connect_router(router_addr);
    let mut t_kill: Option<Instant> = None;
    let mut recovered: Option<Duration> = None;
    let mut fenced = 0u64;
    let mut retries = 0u64;

    for (i, e) in trace.events.iter().enumerate() {
        if i == kill_at {
            children[dead_node].kill().expect("SIGKILL node 1");
            t_kill = Some(Instant::now());
        }
        let req = match e {
            Event::Query(q) => Request::Query(q.clone()),
            Event::Update(u) => Request::Update(*u),
        };
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut attempt = 0u32;
        loop {
            assert!(
                Instant::now() < deadline,
                "event {i} ({e:?}) never settled: failover is stuck"
            );
            match client.request(&req) {
                Ok(Response::QueryOk { .. }) | Ok(Response::UpdateOk { .. }) => {
                    if let (Some(t0), true, None) = (t_kill, orphaned(e), recovered) {
                        recovered = Some(t0.elapsed());
                    }
                    break;
                }
                // A retried event the promoted backup already holds: the
                // fence answers typed and the client counts it done.
                // Only legal on a retry, only after the kill.
                Ok(Response::Error { code, message }) if code == error_code::ALREADY_APPLIED => {
                    assert!(
                        attempt > 0 && t_kill.is_some(),
                        "event {i}: spurious ALREADY_APPLIED: {message}"
                    );
                    if let (Some(t0), true, None) = (t_kill, orphaned(e), recovered) {
                        recovered = Some(t0.elapsed());
                    }
                    fenced += 1;
                    break;
                }
                // The unavailability window: typed, bounded, retried.
                Ok(Response::Error { code, message }) if code == error_code::NODE_UNAVAILABLE => {
                    assert!(
                        t_kill.is_some(),
                        "event {i}: NODE_UNAVAILABLE before the kill: {message}"
                    );
                    retries += 1;
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(20));
                }
                // An epoch bump landed between our frames: re-handshake.
                Ok(Response::WrongEpoch { epoch }) => {
                    client.hello(epoch).expect("re-handshake");
                    attempt += 1;
                }
                Ok(other) => panic!("event {i}: wrong answer: {other:?}"),
                Err(_) => {
                    attempt += 1;
                    client = connect_router(router_addr);
                }
            }
        }
    }

    // Bounded unavailability: the orphaned shards answered again within
    // 2× node_timeout of the SIGKILL.
    let recovered = recovered.expect("no post-kill event touched an orphaned shard");
    assert!(
        recovered < 2 * NODE_TIMEOUT,
        "promotion took {recovered:?}, bound is {:?}",
        2 * NODE_TIMEOUT
    );
    assert!(
        retries > 0,
        "the kill was never observed as NODE_UNAVAILABLE"
    );

    // The router now routes all four shards (node 0 serves its two
    // primaries plus the two promoted backups) behind a bumped epoch.
    let mut admin = connect_router(router_addr);
    let info = admin.hello(0).expect("hello");
    assert_eq!(info.role, NodeRole::Router);
    assert_eq!(info.epoch, 1, "exactly one failover bumps the epoch once");
    let mut node0 = DeltaClient::connect(addrs[0]).expect("connect node 0");
    let hosted = node0.hello(info.epoch).expect("hello").hosted;
    for shard in 0..SHARDS as u16 {
        assert!(
            hosted.contains(&shard),
            "node 0 must host shard {shard} after the failover (hosts {hosted:?})"
        );
    }

    // Determinism across the failover: per-shard ledgers equal the
    // offline simulation twin byte for byte — including the two shards
    // that lived through bootstrap, replication, and promotion.
    let stats = admin.stats().expect("stats");
    assert_eq!(stats.shards.len(), SHARDS);
    let want = expected_shard_ledgers(&catalog, &trace, cache_bytes);
    for shard in &stats.shards {
        assert_eq!(
            &shard.metrics.ledger, &want[shard.shard as usize],
            "shard {} diverged from its simulation twin across the failover \
             (fenced={fenced} retries={retries})",
            shard.shard
        );
    }

    // The scrape plane saw it all: promotions on both sides of the
    // wire, a failover, and a replication stream that actually moved.
    let t = admin.telemetry().expect("telemetry");
    assert_eq!(
        t.counter("router.promotions"),
        2,
        "one promotion per orphaned shard"
    );
    assert!(
        t.counter("router.failovers") >= 1,
        "failover counter never moved"
    );
    assert_eq!(
        t.counter("node.promotions"),
        2,
        "node-side promotion counter"
    );
    assert!(
        t.counter("replica.shipped_events") > 0,
        "the primaries never shipped a replication batch"
    );
    assert!(
        t.counter("replica.applied_events") > 0,
        "the backups never applied a replicated event"
    );
    assert!(
        t.counter("replica.bootstraps") > 0,
        "no backup was ever bootstrapped"
    );
    assert!(
        t.gauges
            .iter()
            .any(|(name, _)| name == "replica.lag_events"),
        "the replica lag gauge is missing from the cluster scrape"
    );

    // Graceful teardown: the router shuts the surviving node down
    // (skipping the dead one) and both children get reaped.
    admin.shutdown().expect("cluster shutdown");
    router.join();
    for mut child in children {
        let _ = child.wait();
    }
    let _ = std::fs::remove_file(&trace_path);
}
