//! Differential test for SQL-on-the-wire: for a generated corpus of SQL
//! strings, serving `Request::Sql` must leave the server in exactly the
//! state that compiling locally with `QueryCompiler` and replaying the
//! resulting `QueryEvent` via `Request::Query` does — byte-identical
//! per-shard ledgers, identical reply counters, and identical compile
//! rejections for invalid texts.

use delta_query::{QueryCompiler, QueryError, Schema};
use delta_server::{DeltaClient, PolicyKind, Server, ServerConfig, SqlStage};
use delta_workload::{SyntheticSurvey, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shard count under test; the CI matrix overrides it (1, 4, 8).
fn shard_count() -> usize {
    std::env::var("DELTA_TEST_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn start_server(cfg: &WorkloadConfig, survey: &SyntheticSurvey) -> Server {
    let config = ServerConfig {
        bind: "127.0.0.1:0".to_string(),
        n_shards: shard_count(),
        cache_bytes: (survey.catalog.total_bytes() as f64 * 0.3) as u64,
        policy: PolicyKind::VCover,
        seed: 42,
        frontend: Some(cfg.clone()),
        ..ServerConfig::default()
    };
    Server::start(config, survey.catalog.clone()).expect("server starts")
}

/// A deterministic corpus mixing every query shape the frontend knows,
/// with occasional updates to age the caches between queries.
fn sql_corpus(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let ra = rng.random_range(0.0..360.0f64);
        let dec = rng.random_range(-85.0..85.0f64);
        let radius = rng.random_range(0.05..8.0f64);
        let tol = rng.random_range(0u64..500);
        let sql = match rng.random_range(0u32..7) {
            0 => format!("SELECT ra, dec FROM PhotoObj WHERE CIRCLE({ra:.3}, {dec:.3}, {radius:.3})"),
            1 => format!(
                "SELECT * FROM PhotoObj WHERE CIRCLE({ra:.3}, {dec:.3}, {radius:.3}) WITH TOLERANCE {tol}"
            ),
            2 => {
                let dra = rng.random_range(0.5..30.0f64);
                let ddec = rng.random_range(0.5..20.0f64);
                format!(
                    "SELECT g, r FROM PhotoObj WHERE RECT({:.3}, {:.3}, {:.3}, {:.3}) AND g < 21",
                    ra.min(329.0),
                    dec.min(60.0),
                    ra.min(329.0) + dra,
                    dec.min(60.0) + ddec
                )
            }
            3 => format!(
                "SELECT COUNT(*) FROM PhotoObj WHERE CIRCLE({ra:.3}, {dec:.3}, {:.3})",
                radius + 4.0
            ),
            4 => format!(
                "SELECT * FROM PhotoObj WHERE NEIGHBORS({ra:.3}, {dec:.3}, {:.3})",
                radius.min(0.4)
            ),
            5 => format!(
                "SELECT TOP 500 ra, dec, u, g FROM PhotoObj WHERE CIRCLE({ra:.3}, {dec:.3}, {radius:.3}) AND u BETWEEN 15 AND 22"
            ),
            _ => "SELECT ra FROM PhotoObj".to_string(),
        };
        out.push(sql);
    }
    out
}

#[test]
fn sql_over_wire_matches_local_compile_plus_query() {
    let cfg = WorkloadConfig::small();
    let survey = SyntheticSurvey::generate(&cfg);
    let compiler = QueryCompiler::new(Schema::sdss(), cfg.sky_model(), cfg.spatial_mapper());

    let sql_server = start_server(&cfg, &survey);
    let event_server = start_server(&cfg, &survey);
    let mut sql_client = DeltaClient::connect(sql_server.local_addr()).expect("connect");
    let mut event_client = DeltaClient::connect(event_server.local_addr()).expect("connect");

    let corpus = sql_corpus(120, 0xD1FF);
    let mut update_rng = StdRng::seed_from_u64(0xA9E);
    for (i, sql) in corpus.iter().enumerate() {
        let seq = i as u64 * 2;

        // Path A: the server compiles.
        let wire = sql_client
            .sql(seq, sql)
            .expect("transport ok")
            .unwrap_or_else(|rej| panic!("corpus query {i} rejected: {rej}\n  {sql}"));

        // Path B: compile locally, ship the event.
        let compiled = compiler.compile(sql).expect("local compile succeeds");
        let n_objects = compiled.objects.len() as u32;
        let event = compiled.into_event(seq);
        let local = event_client.query(&event).expect("query served");

        // The wire reply must describe exactly the locally-compiled event…
        assert_eq!(wire.objects, n_objects, "B(q) diverged on query {i}");
        assert_eq!(
            wire.result_bytes, event.result_bytes,
            "ν(q) diverged on query {i}"
        );
        assert_eq!(wire.tolerance, event.tolerance);
        assert_eq!(wire.kind, event.kind);
        // …and the fan-out must have made the same decisions.
        assert_eq!(wire.shards_touched, local.shards_touched, "query {i}");
        assert_eq!(wire.local_answers, local.local_answers, "query {i}");
        assert_eq!(wire.shipped, local.shipped, "query {i}");

        // Age both servers identically with an occasional update.
        if update_rng.random_range(0u32..3) == 0 {
            let object =
                delta_storage::ObjectId(update_rng.random_range(0u32..survey.catalog.len() as u32));
            let bytes = update_rng.random_range(1_000u64..1_000_000);
            let u = delta_workload::UpdateEvent {
                seq: seq + 1,
                object,
                bytes,
            };
            sql_client.update(&u).expect("update");
            event_client.update(&u).expect("update");
        }
    }

    // The decisive check: the two servers' final per-shard ledgers are
    // byte-identical.
    let sql_stats = sql_client.stats().expect("stats");
    let event_stats = event_client.stats().expect("stats");
    assert_eq!(sql_stats.shards.len(), shard_count());
    assert!(
        sql_stats.total_ledger().total().bytes() > 0,
        "corpus must move bytes"
    );
    for (a, b) in sql_stats.shards.iter().zip(&event_stats.shards) {
        assert_eq!(
            a.metrics, b.metrics,
            "shard {} metrics diverged between SQL and event replay",
            a.shard
        );
    }

    sql_client.shutdown().expect("shutdown");
    event_client.shutdown().expect("shutdown");
    sql_server.join();
    event_server.join();
}

#[test]
fn invalid_sql_rejections_match_local_compiler() {
    let cfg = WorkloadConfig::small();
    let survey = SyntheticSurvey::generate(&cfg);
    let compiler = QueryCompiler::new(Schema::sdss(), cfg.sky_model(), cfg.spatial_mapper());

    let server = start_server(&cfg, &survey);
    let mut client = DeltaClient::connect(server.local_addr()).expect("connect");

    let bad = [
        "SELEC ra FROM PhotoObj",
        "SELECT ra FROM NoSuchTable",
        "SELECT zap FROM PhotoObj",
        "SELECT ra FROM PhotoObj WHERE CIRCLE(1.0, 2.0, -5.0)",
        "",
        "WITH TOLERANCE 5",
        "SELECT ra FROM PhotoObj WHERE g BETWEEN 25 AND 10",
    ];
    for sql in bad {
        let rejection = client
            .sql(0, sql)
            .expect("transport ok")
            .expect_err(&format!("{sql:?} should be rejected"));
        let local = compiler
            .compile(sql)
            .expect_err(&format!("{sql:?} should fail locally"));
        match (&rejection.stage, &local) {
            (SqlStage::Parse, QueryError::Parse(e)) => {
                assert_eq!(rejection.message, e.to_string());
                assert_eq!(rejection.span, (e.span().start as u32, e.span().end as u32));
            }
            (SqlStage::Analyze, QueryError::Analyze(e)) => {
                assert_eq!(rejection.message, e.to_string());
            }
            (stage, local) => {
                panic!("stage mismatch for {sql:?}: wire {stage:?} vs local {local:?}")
            }
        }
    }

    // Rejected SQL must leave no trace in the accounting.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.total_events(), 0, "rejections must not be accounted");

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn sql_unavailable_without_frontend() {
    let cfg = WorkloadConfig::small();
    let survey = SyntheticSurvey::generate(&cfg);
    let config = ServerConfig {
        bind: "127.0.0.1:0".to_string(),
        n_shards: 2,
        cache_bytes: 10_000,
        policy: PolicyKind::NoCache,
        seed: 1,
        ..ServerConfig::default()
    };
    let server = Server::start(config, survey.catalog.clone()).expect("server starts");
    let mut client = DeltaClient::connect(server.local_addr()).expect("connect");
    let err = client
        .sql(0, "SELECT ra FROM PhotoObj")
        .expect_err("SQL must fail without a frontend");
    assert!(err.to_string().contains("error 4"), "{err}");
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn mismatched_frontend_refused_at_start() {
    // A frontend whose partition cannot match the served catalog is a
    // misconfiguration the server must refuse, not serve wrongly.
    let cfg = WorkloadConfig::small();
    let catalog = delta_storage::ObjectCatalog::from_sizes(&[100, 200, 300]);
    let config = ServerConfig {
        bind: "127.0.0.1:0".to_string(),
        n_shards: 1,
        cache_bytes: 100,
        policy: PolicyKind::NoCache,
        seed: 1,
        frontend: Some(cfg),
        ..ServerConfig::default()
    };
    let err = match Server::start(config, catalog) {
        Err(e) => e,
        Ok(_) => panic!("mismatched frontend must be refused"),
    };
    assert!(err.to_string().contains("frontend partition"), "{err}");
}
