//! End-to-end tests for the connection deadline discipline and the
//! epoll reactor front door, on a real server over TCP.
//!
//! The deadline tests run against **both** front doors: the stall
//! clock used to arm only once shutdown was pending, so a half-open
//! client (partial frame, then silence) could pin a connection thread
//! and its read buffer forever during normal serving. Under either
//! front, such a client must now be reaped within the configured
//! `stall_limit` — while a concurrent well-behaved client stays
//! untouched — and an oversized length word must come back as a typed
//! `FRAME_TOO_LARGE` error frame before the close, not a silent drop.

use delta_server::protocol::MAX_FRAME_BYTES;
use delta_server::{
    error_code, read_frame, DeltaClient, FrontDoor, PolicyKind, Request, Response, Server,
    ServerConfig,
};
use delta_storage::ObjectId;
use delta_workload::{Event, SyntheticSurvey, UpdateEvent, WorkloadConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn small_survey(n: usize) -> SyntheticSurvey {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = n;
    cfg.n_updates = n;
    SyntheticSurvey::generate(&cfg)
}

fn start(front: FrontDoor, stall_limit: Duration, n: usize) -> (Server, SyntheticSurvey) {
    let survey = small_survey(n);
    let config = ServerConfig {
        bind: "127.0.0.1:0".to_string(),
        n_shards: 2,
        cache_bytes: survey.catalog.total_bytes() / 3,
        policy: PolicyKind::VCover,
        seed: 7,
        front,
        stall_limit,
        ..ServerConfig::default()
    };
    let server = Server::start(config, survey.catalog.clone()).expect("server starts");
    (server, survey)
}

/// Reads the half-open socket until the server closes it, returning
/// how long the reap took. Panics if the server answers instead.
fn await_reap(half: &mut TcpStream) -> Duration {
    half.set_read_timeout(Some(Duration::from_secs(20)))
        .expect("set read timeout");
    let t0 = Instant::now();
    let mut buf = [0u8; 64];
    match half.read(&mut buf) {
        Ok(0) => t0.elapsed(),
        Ok(n) => panic!("half-open connection received {n} unexpected bytes"),
        Err(e) if matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe) => {
            t0.elapsed()
        }
        Err(e) => panic!("expected the half-open connection to be reaped, got {e}"),
    }
}

/// The core half-open regression: a client that sent part of a frame
/// and went quiet is reaped within the stall limit **without any
/// shutdown pending**, a concurrent well-behaved client is unaffected,
/// and the reap is visible on `conn.stall_drops`.
fn half_open_is_reaped(front: FrontDoor) {
    let stall = Duration::from_millis(300);
    let (server, _survey) = start(front, stall, 10);
    let addr = server.local_addr();

    let mut good = DeltaClient::connect(addr).expect("connect");
    good.update(&UpdateEvent {
        seq: 1,
        object: ObjectId(0),
        bytes: 10,
    })
    .expect("well-behaved update before the stall");

    // Half a frame: a length word promising 64 payload bytes, 8 sent,
    // then silence — the slowloris shape.
    let mut half = TcpStream::connect(addr).expect("connect raw");
    half.write_all(&64u32.to_be_bytes()).expect("length word");
    half.write_all(&[0u8; 8]).expect("partial payload");
    half.flush().expect("flush");

    let reaped_after = await_reap(&mut half);
    assert!(
        reaped_after >= Duration::from_millis(150),
        "reaped after {reaped_after:?} — faster than the {stall:?} stall limit allows"
    );
    assert!(
        reaped_after < Duration::from_secs(10),
        "reap took {reaped_after:?}, far beyond the {stall:?} stall limit"
    );

    // The well-behaved connection lived through the reap untouched.
    good.update(&UpdateEvent {
        seq: 2,
        object: ObjectId(1),
        bytes: 10,
    })
    .expect("well-behaved update after the stall");
    let snap = good.telemetry().expect("telemetry");
    assert!(
        snap.counter("conn.stall_drops") >= 1,
        "the reap must be counted under conn.stall_drops"
    );

    good.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn half_open_reaped_under_reactor() {
    half_open_is_reaped(FrontDoor::Reactor { threads: 1 });
}

#[test]
fn half_open_reaped_under_threaded() {
    half_open_is_reaped(FrontDoor::Threaded);
}

/// An oversized length word draws a typed `FRAME_TOO_LARGE` error
/// frame before the close — the client learns *why* it was dropped —
/// and the drop is counted under `conn.oversize_rejects`.
fn oversize_gets_typed_reply(front: FrontDoor) {
    let (server, _survey) = start(front, Duration::from_secs(5), 10);
    let addr = server.local_addr();

    let mut s = TcpStream::connect(addr).expect("connect raw");
    s.write_all(&(MAX_FRAME_BYTES + 1).to_be_bytes())
        .expect("oversized length word");
    s.flush().expect("flush");

    s.set_read_timeout(Some(Duration::from_secs(20)))
        .expect("set read timeout");
    let payload = read_frame(&mut s).expect("typed error frame before close");
    match Response::decode(&payload).expect("decodable response") {
        Response::Error { code, message } => {
            assert_eq!(code, error_code::FRAME_TOO_LARGE, "message: {message}");
            assert!(
                message.contains("MAX_FRAME_BYTES"),
                "message should name the limit: {message}"
            );
        }
        other => panic!("expected a typed error frame, got {other:?}"),
    }
    // ... and then the close.
    let mut buf = [0u8; 8];
    match s.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("{n} unexpected bytes after the oversize reply"),
        Err(e) if matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe) => {}
        Err(e) => panic!("expected close after the oversize reply, got {e}"),
    }

    let mut client = DeltaClient::connect(addr).expect("connect");
    let snap = client.telemetry().expect("telemetry");
    assert!(
        snap.counter("conn.oversize_rejects") >= 1,
        "the drop must be counted under conn.oversize_rejects"
    );
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn oversize_typed_reply_under_reactor() {
    oversize_gets_typed_reply(FrontDoor::Reactor { threads: 1 });
}

#[test]
fn oversize_typed_reply_under_threaded() {
    oversize_gets_typed_reply(FrontDoor::Threaded);
}

/// Both front doors produce byte-identical ledgers for the same
/// lockstep replay: the reactor changes how sockets are driven, never
/// what the shards compute.
#[test]
fn front_doors_agree_byte_for_byte() {
    let mut ledgers = Vec::new();
    for front in [FrontDoor::Reactor { threads: 2 }, FrontDoor::Threaded] {
        let (server, survey) = start(front, Duration::from_secs(5), 150);
        let mut client = DeltaClient::connect(server.local_addr()).expect("connect");
        for event in survey.trace.iter() {
            match event {
                Event::Query(q) => {
                    client.query(q).expect("query");
                }
                Event::Update(u) => {
                    client.update(u).expect("update");
                }
            }
        }
        let stats = client.stats().expect("stats");
        client.shutdown().expect("shutdown");
        server.join();
        ledgers.push(
            stats
                .shards
                .iter()
                .map(|s| s.metrics.ledger.clone())
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(
        ledgers[0], ledgers[1],
        "reactor and threaded fronts must serve identical ledgers"
    );
}

/// A swarm of concurrently pipelined connections over the reactor:
/// every frame answered, nothing reaped, and the reactor's own
/// telemetry saw the population.
#[test]
fn pipelined_swarm_over_reactor() {
    let (server, survey) = start(
        FrontDoor::Reactor { threads: 2 },
        Duration::from_secs(5),
        400,
    );
    let addr = server.local_addr();
    const CONNS: usize = 48;

    std::thread::scope(|scope| {
        for lane in 0..CONNS {
            let events: Vec<Event> = survey
                .trace
                .iter()
                .skip(lane)
                .step_by(CONNS)
                .cloned()
                .collect();
            scope.spawn(move || {
                let check = |response: Response| match response {
                    Response::QueryOk { .. } | Response::UpdateOk { .. } => {}
                    other => panic!("lane {lane}: unexpected response {other:?}"),
                };
                let mut pipe = DeltaClient::connect(addr).expect("connect").pipelined(4);
                for event in &events {
                    let request = match event {
                        Event::Query(q) => Request::Query(q.clone()),
                        Event::Update(u) => Request::Update(*u),
                    };
                    pipe.submit(&request).expect("submit");
                    for (_corr, response) in pipe.completed() {
                        check(response);
                    }
                }
                for (_corr, response) in pipe.drain().expect("drain") {
                    check(response);
                }
            });
        }
    });

    let mut client = DeltaClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(
        stats.total_events() >= survey.trace.len() as u64,
        "every event must be accounted"
    );
    let snap = client.telemetry().expect("telemetry");
    assert_eq!(
        snap.counter("conn.stall_drops"),
        0,
        "no well-behaved pipelined connection may be reaped"
    );
    assert!(
        snap.counter("reactor.accepted") >= CONNS as u64,
        "the reactor must have accepted the swarm"
    );
    client.shutdown().expect("shutdown");
    server.join();
}
