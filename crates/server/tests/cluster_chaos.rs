//! Slow-node chaos: one node of a 2-node cluster is started with a
//! `delta_net::LinkModel` fault injected into its `NodeOps` path
//! (`--chaos-node-latency-ms` on `delta-serverd`), and the router's
//! reactor data plane must isolate the slowdown to the shards that
//! node owns — clients scoped to the healthy node keep their
//! throughput while the slow node's replies crawl, and the router's
//! per-node `router.fanout_ns.nodeN` histograms show the skew.
//!
//! This is the property the shared multiplexed links buy: a slow node
//! backs up its *own* link's correlation table, not the event loop —
//! the loop keeps pumping every other connection and link meanwhile.

use delta_net::LinkModel;
use delta_server::{
    ClusterConfig, DeltaClient, FrontDoor, PartitionerKind, PolicyKind, Request, Response, Router,
    RouterConfig, Server, ServerConfig,
};
use delta_storage::ObjectId;
use delta_workload::{QueryEvent, QueryKind, SyntheticSurvey, WorkloadConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const NODES: u16 = 2;
const SLOW_NODE: u16 = 1;
/// Injected per-`NodeOps` latency on the slow node.
const CHAOS: Duration = Duration::from_millis(30);

fn query(seq: u64, o: ObjectId) -> Request {
    Request::Query(QueryEvent {
        seq,
        objects: vec![o],
        result_bytes: 64,
        tolerance: 0,
        kind: QueryKind::Selection,
    })
}

#[test]
fn slow_node_degrades_only_its_own_shards() {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 200;
    cfg.n_updates = 200;
    let s = SyntheticSurvey::generate(&cfg);
    let cache_bytes = (s.catalog.total_bytes() as f64 * 0.3) as u64;
    let partitioner = PartitionerKind::RoundRobin;
    let map = partitioner.build(SHARDS, s.catalog.len());
    let node_of = |o: ObjectId| (map.shard_of(o) % NODES as usize) as u16;

    let mut nodes = Vec::new();
    let mut node_addrs = Vec::new();
    for node in 0..NODES {
        let config = ServerConfig {
            bind: "127.0.0.1:0".to_string(),
            n_shards: SHARDS,
            partitioner,
            cache_bytes,
            policy: PolicyKind::VCover,
            seed: 7,
            cluster: Some(ClusterConfig {
                node,
                nodes: NODES,
                hosted: ClusterConfig::default_hosted(node, NODES, SHARDS),
            }),
            // The fault: node 1 sits behind a simulated slow link and
            // parks on every NodeOps frame before executing it.
            chaos_link: (node == SLOW_NODE).then_some(LinkModel {
                bandwidth_bytes_per_sec: f64::INFINITY,
                rtt_secs: CHAOS.as_secs_f64(),
            }),
            ..ServerConfig::default()
        };
        let server = Server::start(config, s.catalog.clone()).expect("node starts");
        node_addrs.push(server.local_addr());
        nodes.push(server);
    }
    let router = Router::start(
        RouterConfig {
            bind: "127.0.0.1:0".to_string(),
            nodes: node_addrs.iter().map(|a| a.to_string()).collect(),
            frontend: None,
            front: FrontDoor::Reactor { threads: 2 },
            stall_limit: delta_server::connection::STALL_LIMIT,
            node_timeout: RouterConfig::DEFAULT_NODE_TIMEOUT,
        },
        s.catalog.clone(),
    )
    .expect("router starts");
    let router_addr = router.local_addr();
    let telemetry = router.telemetry_handle();

    let object_on = |want: u16| -> Vec<ObjectId> {
        (0..s.catalog.len() as u32)
            .map(ObjectId)
            .filter(|&o| node_of(o) == want)
            .take(64)
            .collect()
    };
    let slow_objects = object_on(SLOW_NODE);
    let fast_objects = object_on(1 - SLOW_NODE);
    assert!(!slow_objects.is_empty() && !fast_objects.is_empty());

    // A client hammering the slow node's shards: 30 sequential queries,
    // each paying the injected latency — ≥ 900 ms of wall clock.
    let slow_running = Arc::new(AtomicBool::new(true));
    let slow_thread = {
        let running = Arc::clone(&slow_running);
        let objects = slow_objects.clone();
        std::thread::spawn(move || {
            let mut client = DeltaClient::connect(router_addr).expect("connect");
            let t0 = Instant::now();
            for i in 0..30u64 {
                let o = objects[i as usize % objects.len()];
                match client.request(&query(i, o)).expect("slow query") {
                    Response::QueryOk { .. } => {}
                    other => panic!("slow-node query failed: {other:?}"),
                }
            }
            running.store(false, Ordering::SeqCst);
            t0.elapsed()
        })
    };

    // Meanwhile a client scoped to the healthy node must keep its
    // throughput: 50 sequential queries finish while the slow client
    // is still grinding, in a fraction of its wall clock.
    std::thread::sleep(CHAOS); // let the slow stream get in flight
    let mut fast = DeltaClient::connect(router_addr).expect("connect");
    let t0 = Instant::now();
    for i in 0..50u64 {
        let o = fast_objects[i as usize % fast_objects.len()];
        match fast.request(&query(1000 + i, o)).expect("fast query") {
            Response::QueryOk { .. } => {}
            other => panic!("healthy-node query failed: {other:?}"),
        }
    }
    let fast_elapsed = t0.elapsed();
    assert!(
        slow_running.load(Ordering::SeqCst),
        "the slow stream finished first — the fault was not isolating anything"
    );
    let slow_elapsed = slow_thread.join().expect("slow client");
    assert!(
        slow_elapsed >= CHAOS * 30,
        "the injected latency was not paid: {slow_elapsed:?}"
    );
    assert!(
        fast_elapsed < slow_elapsed / 3,
        "healthy-node throughput collapsed under a slow peer: \
         fast {fast_elapsed:?} vs slow {slow_elapsed:?}"
    );

    // The router's own per-node fan-out histograms must show the skew:
    // the slow node's median round trip carries the injected latency,
    // the healthy node's does not.
    let snapshot = telemetry.snapshot();
    let p50 = |node: u16| {
        snapshot
            .histogram(&format!("router.fanout_ns.node{node}"))
            .unwrap_or_else(|| panic!("router.fanout_ns.node{node} missing"))
            .p50()
    };
    let (slow_p50, fast_p50) = (p50(SLOW_NODE), p50(1 - SLOW_NODE));
    assert!(
        slow_p50 >= CHAOS.as_nanos() as u64,
        "slow node's fan-out p50 must carry the injected latency: {slow_p50}ns"
    );
    assert!(
        slow_p50 > fast_p50 * 4,
        "per-node fan-out histograms must show the skew: \
         node{SLOW_NODE} p50 {slow_p50}ns vs node{} p50 {fast_p50}ns",
        1 - SLOW_NODE
    );

    DeltaClient::connect(router_addr)
        .expect("connect")
        .shutdown()
        .expect("cluster shutdown");
    router.join();
    for node in nodes {
        node.join();
    }
}
