//! Replication catch-up properties: the backup bootstrap contract.
//!
//! A backup catches up in one of two ways: a **fresh** bootstrap at
//! offset 0 followed by a full-log replay, or a **snapshot** bootstrap
//! at offset `k` followed by a suffix-of-log replay. These properties
//! pin what the tentpole relies on:
//!
//! * For policies whose whole decision state lives in the snapshot
//!   (`NoCache` caches nothing, `Replica` pins everything), snapshot +
//!   suffix replay is **byte-identical** to full-log replay at any cut
//!   point — so a snapshot-bootstrapped backup is indistinguishable
//!   from one that watched every event.
//! * `VCover` keeps private decision state outside the snapshot, so a
//!   restored engine is not promised byte-identity with the uncut
//!   original — but restore + replay IS deterministic: two replicas
//!   bootstrapped from the same snapshot and fed the same log suffix
//!   agree byte for byte. That determinism (plus the fresh-at-offset-0
//!   bootstrap the pump prefers) is what keeps post-failover ledgers
//!   equal to `sim::simulate`.

use delta_core::engine::{snapshot_to_string, Engine};
use delta_core::CachingPolicy;
use delta_server::PolicyKind;
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::{Event, QueryEvent, QueryKind, UpdateEvent};
use proptest::prelude::*;

const SEED: u64 = 42;
const N_OBJECTS: u8 = 8;

fn catalog() -> ObjectCatalog {
    ObjectCatalog::from_sizes(&[500, 600, 700, 800, 900, 1_000, 1_100, 1_200])
}

/// One log entry, pre-sequencing: the generator assigns `seq` by
/// position so every trace is monotone like a real shard log.
#[derive(Clone, Debug)]
enum Op {
    Query {
        objects: Vec<u8>,
        result_bytes: u64,
        tolerance: u64,
        cone: bool,
    },
    Update {
        object: u8,
        bytes: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            prop::collection::btree_set(0..N_OBJECTS, 1..4),
            1u64..2_000,
            0u64..3,
            proptest::bool::ANY,
        )
            .prop_map(|(objects, result_bytes, tolerance, cone)| Op::Query {
                objects: objects.into_iter().collect(),
                result_bytes,
                tolerance,
                cone,
            }),
        (0..N_OBJECTS, 1u64..5_000).prop_map(|(object, bytes)| Op::Update { object, bytes }),
    ]
}

fn events(ops: &[Op]) -> Vec<Event> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            let seq = i as u64 + 1;
            match op {
                Op::Query {
                    objects,
                    result_bytes,
                    tolerance,
                    cone,
                } => Event::Query(QueryEvent {
                    seq,
                    objects: objects.iter().map(|&o| ObjectId(o as u32)).collect(),
                    result_bytes: *result_bytes,
                    tolerance: *tolerance,
                    kind: if *cone {
                        QueryKind::Cone
                    } else {
                        QueryKind::Selection
                    },
                }),
                Op::Update { object, bytes } => Event::Update(UpdateEvent {
                    seq,
                    object: ObjectId(*object as u32),
                    bytes: *bytes,
                }),
            }
        })
        .collect()
}

type DynEngine = Engine<'static, dyn CachingPolicy + Send>;

/// Full-log replay vs snapshot-at-`cut` + suffix replay, both rendered
/// as the canonical snapshot JSONL for byte comparison.
fn full_vs_resumed(policy: PolicyKind, cache: u64, evs: &[Event], cut: usize) -> (String, String) {
    let catalog = catalog();
    let build = || policy.build(cache, SEED);

    let mut full: DynEngine = Engine::new(build(), &catalog, cache);
    full.init(None);
    for e in evs {
        let _ = full.apply(e);
    }

    let mut prefix: DynEngine = Engine::new(build(), &catalog, cache);
    prefix.init(None);
    for e in &evs[..cut] {
        let _ = prefix.apply(e);
    }
    let snap = prefix.snapshot();
    let mut resumed: DynEngine = Engine::restore(build(), &catalog, &snap).expect("restore");
    for e in &evs[cut..] {
        let _ = resumed.apply(e);
    }

    (
        snapshot_to_string(&full.snapshot()),
        snapshot_to_string(&resumed.snapshot()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn snapshot_plus_suffix_equals_full_replay(
        ops in prop::collection::vec(arb_op(), 1..200),
        cut_frac in 0.0f64..1.0,
        cache_frac in 0.1f64..1.0,
    ) {
        let evs = events(&ops);
        let cut = ((evs.len() as f64) * cut_frac) as usize;
        let cache = (catalog().total_bytes() as f64 * cache_frac) as u64;
        for policy in [PolicyKind::NoCache, PolicyKind::Replica] {
            let (full, resumed) = full_vs_resumed(policy, cache, &evs, cut);
            prop_assert_eq!(
                full,
                resumed,
                "{}",
                format!("policy {policy} diverged at cut {cut}/{}", evs.len())
            );
        }
    }

    #[test]
    fn restored_twins_replay_deterministically(
        ops in prop::collection::vec(arb_op(), 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let evs = events(&ops);
        let cut = ((evs.len() as f64) * cut_frac) as usize;
        let catalog = catalog();
        let cache = catalog.total_bytes() / 2;
        let build = || PolicyKind::VCover.build(cache, SEED);

        let mut primary: DynEngine = Engine::new(build(), &catalog, cache);
        primary.init(None);
        for e in &evs[..cut] {
            let _ = primary.apply(e);
        }
        let snap = primary.snapshot();

        let twin = || {
            let mut t: DynEngine = Engine::restore(build(), &catalog, &snap).expect("restore");
            for e in &evs[cut..] {
                let _ = t.apply(e);
            }
            snapshot_to_string(&t.snapshot())
        };
        prop_assert_eq!(twin(), twin(), "two twins from one snapshot must agree");
    }
}
