//! Property tests for the frame-boundary arithmetic every front door
//! shares: `buffered_frame_len` against a brute-force oracle (including
//! the typed oversize rejection), and `prepare_read_buffer`'s
//! compact/grow/shrink discipline — pending bytes are never lost, the
//! buffer always ends up large enough for the validated pending frame,
//! and capacity grown for a past oversized frame is given back.

use delta_server::connection::READ_BUF;
use delta_server::protocol::MAX_FRAME_BYTES;
use delta_server::{buffered_frame_len, drop_cause, prepare_read_buffer, DropCause};
use proptest::prelude::*;

/// Builds a buffer holding a `frame_len` frame's first `avail` bytes
/// (header included, so `avail <= 4 + frame_len`).
fn partial_frame(frame_len: u32, avail: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(avail);
    buf.extend_from_slice(&frame_len.to_be_bytes());
    buf.resize(4 + frame_len as usize, 0xAB);
    buf.truncate(avail);
    buf
}

proptest! {
    /// `buffered_frame_len` returns `Some(4 + len)` exactly when the
    /// whole frame is buffered, `None` otherwise — never off by one at
    /// either boundary.
    #[test]
    fn frame_len_matches_oracle(frame_len in 0u32..4096, slack in 0usize..8) {
        let total = 4 + frame_len as usize;
        for avail in [0, 1, 3, 4, total.saturating_sub(1), total, total + slack] {
            let avail = avail.min(total); // a frame never buffers past itself
            let buf = partial_frame(frame_len, avail);
            let got = buffered_frame_len(&buf).expect("in-range length word");
            if avail >= total {
                prop_assert_eq!(got, Some(total));
            } else {
                prop_assert_eq!(got, None);
            }
        }
        // Trailing bytes of the *next* frame never change the answer.
        let mut buf = partial_frame(frame_len, total);
        buf.extend_from_slice(&[9, 9, 9]);
        prop_assert_eq!(buffered_frame_len(&buf).unwrap(), Some(total));
    }

    /// Every length word beyond `MAX_FRAME_BYTES` is rejected with the
    /// typed oversize cause — before any payload arrives, and no matter
    /// what garbage follows the header.
    #[test]
    fn oversize_length_word_is_typed(
        excess in 1u32..=(u32::MAX - MAX_FRAME_BYTES),
        tail in prop::collection::vec(0u8..=255, 0..16),
    ) {
        let mut buf = (MAX_FRAME_BYTES + excess).to_be_bytes().to_vec();
        buf.extend_from_slice(&tail);
        let err = buffered_frame_len(&buf).expect_err("oversize must be rejected");
        prop_assert_eq!(drop_cause(&err), Some(DropCause::Oversize));
        prop_assert!(err.to_string().contains("MAX_FRAME_BYTES"));
    }

    /// `prepare_read_buffer` compacts without losing a byte and leaves
    /// room for the whole validated pending frame.
    #[test]
    fn prepare_preserves_pending_and_fits_frame(
        frame_len in 0u32..100_000,
        avail_frac in 0.0f64..=1.0,
        garbage in 0usize..64,
    ) {
        let total = 4 + frame_len as usize;
        let avail = ((total as f64) * avail_frac) as usize;
        let pending = partial_frame(frame_len, avail);

        // The consumed region [0, start) holds garbage from already
        // served frames; [start, end) is the pending tail.
        let mut rbuf = vec![0xEEu8; garbage];
        rbuf.extend_from_slice(&pending);
        rbuf.resize(rbuf.len().max(READ_BUF), 0);
        let mut start = garbage;
        let mut end = garbage + pending.len();

        prepare_read_buffer(&mut rbuf, &mut start, &mut end);

        prop_assert_eq!(start, 0);
        prop_assert_eq!(end, pending.len());
        prop_assert_eq!(&rbuf[..end], &pending[..]);
        // Once the length word is visible the buffer must be able to
        // hold the whole frame — the next reads never stall on space.
        if pending.len() >= 4 {
            prop_assert!(rbuf.len() >= total);
        }
        prop_assert!(rbuf.len() >= READ_BUF);
    }

    /// A buffer grown for a past oversized frame shrinks back to
    /// `READ_BUF` once nothing pending needs the room — idle
    /// connections do not hoard capacity.
    #[test]
    fn prepare_shrinks_after_grown_frame(
        grown_extra in 1usize..4_000_000,
        frame_len in 0u32..1024,
        avail_frac in 0.0f64..=1.0,
    ) {
        let total = 4 + frame_len as usize;
        let avail = ((total as f64) * avail_frac) as usize;
        let pending = partial_frame(frame_len, avail);

        let mut rbuf = vec![0u8; READ_BUF + grown_extra];
        rbuf[..pending.len()].copy_from_slice(&pending);
        let mut start = 0;
        let mut end = pending.len();

        prepare_read_buffer(&mut rbuf, &mut start, &mut end);

        prop_assert_eq!(rbuf.len(), READ_BUF, "small pending frame must release grown capacity");
        prop_assert_eq!(&rbuf[..end], &pending[..]);
    }
}
