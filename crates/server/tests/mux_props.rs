//! Property tests for the router's multiplexed data plane
//! ([`delta_server::mux`]): arbitrary interleavings of tagged node
//! replies across links must complete exactly the right fan-out with
//! replies at the right item positions; duplicate or unknown
//! correlation ids must be rejected (the backend turns that rejection
//! into a typed protocol error that kills the link, never a
//! misdelivered answer); and a link dying mid-flight must fail only
//! the fan-outs that had sub-requests pending on that node.

use delta_server::mux::{Completion, Correlator, FanoutTable, MergeState, ReplyKind, SubEntry};
use delta_server::{error_code, BatchItem, BatchReply, NodeOp, Response};
use delta_storage::ObjectId;
use delta_workload::UpdateEvent;
use proptest::prelude::*;

/// One fan-out to open: the owning client connection, an optional
/// client correlation id to echo, and `(node, n_ops)` sub-requests
/// (nodes distinct).
#[derive(Debug, Clone)]
struct FanoutSpec {
    conn: usize,
    corr: Option<u64>,
    subs: Vec<(usize, usize)>,
}

fn fanout_spec(n_nodes: usize) -> impl Strategy<Value = FanoutSpec> {
    (
        0..4usize,
        prop::option::of(0u64..u64::MAX),
        prop::collection::vec((0..n_nodes, 1..4usize), 1..=n_nodes),
    )
        .prop_map(|(conn, corr, mut subs)| {
            // One sub per node at most — a fan-out sends each node one
            // coalesced NodeOps frame.
            subs.sort_by_key(|&(node, _)| node);
            subs.dedup_by_key(|&mut (node, _)| node);
            FanoutSpec { conn, corr, subs }
        })
}

fn cluster() -> impl Strategy<Value = (usize, Vec<FanoutSpec>, u64)> {
    (2..5usize).prop_flat_map(|n_nodes| {
        (
            Just(n_nodes),
            prop::collection::vec(fanout_spec(n_nodes), 1..8),
            (0u64..u64::MAX),
        )
    })
}

/// Deterministic Fisher–Yates driven by a seeded LCG, so proptest can
/// shrink the interleaving through the seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        items.swap(i, (seed >> 33) as usize % (i + 1));
    }
}

/// Opens every spec'd fan-out in `table` and returns the sub-requests
/// to deliver: `(node, entry, replies)` per sub, with globally unique
/// `(shard, version)` payloads so a misrouted reply is detectable.
fn open_fanouts(
    table: &mut FanoutTable,
    specs: &[FanoutSpec],
) -> Vec<(usize, SubEntry, Vec<BatchReply>)> {
    let mut wire = Vec::new();
    let mut unique = 0u64;
    for spec in specs {
        let n_items: usize = spec.subs.iter().map(|&(_, n)| n).sum();
        let fanout = table.begin(
            spec.conn,
            spec.corr,
            ReplyKind::Batch,
            MergeState::new(n_items),
        );
        let mut item = 0;
        for &(node, n_ops) in &spec.subs {
            table.register_sub(fanout, node);
            let mut ops = Vec::new();
            let mut items = Vec::new();
            let mut replies = Vec::new();
            for _ in 0..n_ops {
                ops.push(NodeOp {
                    shard: node as u16,
                    item: BatchItem::Update(UpdateEvent {
                        seq: unique,
                        object: ObjectId(item as u32),
                        bytes: 0,
                    }),
                });
                items.push(item);
                replies.push(BatchReply::Update {
                    shard: (unique >> 32) as u16,
                    version: unique,
                });
                item += 1;
                unique += 1;
            }
            wire.push((
                node,
                SubEntry {
                    fanout,
                    ops,
                    items,
                    retries: 0,
                    sent_at: std::time::Instant::now(),
                },
                replies,
            ));
        }
    }
    wire
}

/// Unwraps an optional `Tagged` envelope, asserting the echoed id.
fn untag(response: Response, want_corr: Option<u64>) -> Response {
    match (response, want_corr) {
        (Response::Tagged { corr, inner }, Some(want)) => {
            assert_eq!(corr, want, "echoed correlation id");
            *inner
        }
        (Response::Tagged { corr, .. }, None) => {
            panic!("untagged request answered with corr {corr}")
        }
        (inner, None) => inner,
        (inner, Some(want)) => panic!("tagged request {want} answered bare: {inner:?}"),
    }
}

proptest! {
    /// Any interleaving of sub-replies across nodes completes each
    /// fan-out exactly once — after its last sub, for its own
    /// connection, echoing its own correlation id — with every item
    /// reply at the position its op came from.
    #[test]
    fn interleaved_replies_complete_the_right_fanout((n_nodes, specs, seed) in cluster()) {
        let mut table = FanoutTable::new(n_nodes);
        let mut wire = open_fanouts(&mut table, &specs);
        shuffle(&mut wire, seed);

        let mut remaining: Vec<usize> = specs.iter().map(|s| s.subs.len()).collect();
        let mut done: Vec<Option<Completion>> = specs.iter().map(|_| None).collect();
        for (node, entry, replies) in wire {
            let fanout = entry.fanout;
            let completion = table.absorb(&entry, node, replies);
            remaining[fanout] -= 1;
            match completion {
                Some(c) => {
                    prop_assert_eq!(remaining[fanout], 0, "completed before its last sub");
                    prop_assert_eq!(c.fanout, fanout);
                    prop_assert!(done[fanout].is_none(), "completed twice");
                    done[fanout] = Some(c);
                }
                None => prop_assert!(remaining[fanout] > 0, "last sub did not complete"),
            }
        }
        prop_assert!(table.is_empty(), "all fan-outs settled");

        let mut unique = 0u64;
        for (spec, done) in specs.iter().zip(done) {
            let c = done.expect("every fan-out completes");
            prop_assert_eq!(c.conn, spec.conn, "delivered to the owning connection");
            let response = untag(c.result.expect("clean completion"), spec.corr);
            let Response::BatchOk(replies) = response else {
                return Err(TestCaseError::fail(format!("not a batch reply: {response:?}")));
            };
            // Reply k must be the payload op k carried — demuxed to the
            // right fan-out AND merged at the right item position.
            for reply in replies {
                prop_assert_eq!(
                    reply,
                    BatchReply::Update { shard: (unique >> 32) as u16, version: unique },
                    "reply misplaced within the fan-out"
                );
                unique += 1;
            }
        }
    }

    /// A correlation id completes exactly once: the first completion
    /// returns the issued purpose, a duplicate returns `None`, and an
    /// id never issued returns `None` — the backend maps both `None`s
    /// to a typed protocol error that kills the link, so a broken node
    /// can never smuggle a reply into someone else's fan-out.
    #[test]
    fn duplicate_and_unknown_correlation_ids_are_rejected(
        n in 1..40usize,
        seed in (0u64..u64::MAX),
        probe in (0u64..u64::MAX),
    ) {
        let mut pending: Correlator<usize> = Correlator::new();
        let mut ids: Vec<(u64, usize)> =
            (0..n).map(|value| (pending.issue(value), value)).collect();
        prop_assert_eq!(pending.in_flight(), n);

        shuffle(&mut ids, seed);
        for &(corr, value) in &ids {
            prop_assert_eq!(pending.complete(corr), Some(value), "first completion");
            prop_assert_eq!(pending.complete(corr), None, "duplicate rejected");
        }
        prop_assert!(pending.is_empty());
        prop_assert_eq!(pending.complete(probe), None, "unknown id rejected");
    }

    /// A link dying mid-flight fails exactly the fan-outs that still
    /// had sub-requests pending on that node — typed
    /// `NODE_UNAVAILABLE`, delivered once — while fan-outs with no
    /// pending sub there (including ones whose sub on the dying node
    /// already answered) complete cleanly, straggler replies swallowed.
    #[test]
    fn link_death_fails_only_fanouts_with_subs_on_that_node(
        (n_nodes, specs, seed) in cluster(),
        die_at_frac in 0.0..1.0f64,
        dead_node_pick in (0u64..u64::MAX),
    ) {
        let dead_node = (dead_node_pick % n_nodes as u64) as usize;
        let mut table = FanoutTable::new(n_nodes);
        let mut wire = open_fanouts(&mut table, &specs);
        shuffle(&mut wire, seed);
        let die_at = (wire.len() as f64 * die_at_frac) as usize;

        let mut done: Vec<Option<Result<Response, std::io::Error>>> =
            specs.iter().map(|_| None).collect();
        let record = |c: Completion, done: &mut Vec<Option<_>>| {
            assert!(done[c.fanout].is_none(), "fan-out completed twice");
            done[c.fanout] = Some(c.result);
        };
        // Whether each fan-out still owes the dead node a reply when
        // the link dies: subs absorbed before `die_at` no longer count.
        let mut owes_dead: Vec<bool> = specs.iter().map(|_| false).collect();
        for (node, entry, _) in &wire[die_at..] {
            owes_dead[entry.fanout] |= *node == dead_node;
        }

        for (node, entry, replies) in wire.drain(..die_at) {
            if let Some(c) = table.absorb(&entry, node, replies) {
                record(c, &mut done);
            }
        }
        // The link dies: the backend drains its correlator and fails
        // every pending sub on it; replies already demuxed stand.
        for (node, entry, _) in wire.iter().filter(|(node, ..)| *node == dead_node) {
            if let Some(c) = table.fail_sub(entry, *node, "connection reset") {
                record(c, &mut done);
            }
        }
        // Every other link keeps answering; the dead fan-outs' other
        // subs arrive as stragglers and must be swallowed.
        for (node, entry, replies) in wire {
            if node == dead_node {
                continue;
            }
            if let Some(c) = table.absorb(&entry, node, replies) {
                record(c, &mut done);
            }
        }

        prop_assert!(table.is_empty(), "all fan-outs settled");
        for ((spec, owed), result) in specs.iter().zip(owes_dead).zip(done) {
            let result = result.expect("every fan-out completes exactly once");
            let response = untag(result.expect("node loss never kills the client"), spec.corr);
            if owed {
                let Response::Error { code, message } = response else {
                    return Err(TestCaseError::fail(format!(
                        "fan-out owed the dead node a reply but got {response:?}"
                    )));
                };
                prop_assert_eq!(code, error_code::NODE_UNAVAILABLE, "{}", message);
                prop_assert!(
                    message.contains(&format!("node {dead_node} unavailable")),
                    "error names the lost node: {}",
                    message
                );
            } else {
                prop_assert!(
                    matches!(response, Response::BatchOk(_)),
                    "untouched fan-out must complete cleanly: {:?}",
                    response
                );
            }
        }
    }
}
