//! Property tests for the sharding arithmetic: `apportion`'s exactness,
//! query splitting under arbitrary shard counts, agreement between the
//! offline `shard_trace` twin and online routing on random traces — all
//! quantified over *both* partitioners — plus the [`HashRing`]-specific
//! bounded-remap property that makes live resharding affordable.

use delta_server::{apportion, shard_trace, HashRing, Partitioner, PartitionerKind, RoundRobin};
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::{Event, QueryEvent, QueryKind, Trace, UpdateEvent};
use proptest::prelude::*;

fn arb_weights() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..1_000_000_000, 0..24)
}

fn arb_catalog_sizes() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..10_000, 1..48)
}

fn arb_kind() -> impl Strategy<Value = QueryKind> {
    prop::sample::select(vec![
        QueryKind::Cone,
        QueryKind::Range,
        QueryKind::SelfJoin,
        QueryKind::Aggregate,
        QueryKind::Scan,
        QueryKind::Selection,
    ])
}

fn arb_partitioner_kind() -> impl Strategy<Value = PartitionerKind> {
    prop::sample::select(vec![PartitionerKind::RoundRobin, PartitionerKind::HashRing])
}

fn build(kind: PartitionerKind, n_shards: usize, n_objects: usize) -> Box<dyn Partitioner> {
    kind.build(n_shards, n_objects)
}

proptest! {
    /// Largest-remainder shares always sum exactly to the total, no
    /// matter the weights (zeros and empty included).
    #[test]
    fn apportion_sums_exactly(total in 0u64..u64::MAX / 2, weights in arb_weights()) {
        let shares = apportion(total, &weights);
        prop_assert_eq!(shares.len(), weights.len());
        if weights.is_empty() {
            prop_assert!(shares.is_empty());
        } else {
            prop_assert_eq!(shares.iter().sum::<u64>(), total);
        }
    }

    /// Shares track the ideal proportional split to within one unit
    /// (the defining property of largest-remainder rounding), which
    /// also makes them order-consistent: a strictly heavier weight
    /// never receives two fewer units than a lighter one.
    #[test]
    fn apportion_is_near_proportional(total in 0u64..1_000_000_000, weights in arb_weights()) {
        let wsum: u128 = weights.iter().map(|&w| w as u128).sum();
        if wsum == 0 {
            return Ok(());
        }
        let shares = apportion(total, &weights);
        for (&share, &w) in shares.iter().zip(&weights) {
            let ideal = total as f64 * w as f64 / wsum as f64;
            prop_assert!(
                (share as f64 - ideal).abs() < 1.0 + 1e-6,
                "share {share} vs ideal {ideal}"
            );
        }
    }

    /// Every partitioner is a dense bijection: `global ↔ (shard, local)`
    /// invert each other, local ids run `0..shard_len` with no gaps, and
    /// the shard lengths sum to the catalog.
    #[test]
    fn local_and_global_ids_invert(
        kind in arb_partitioner_kind(),
        n_objects in 1usize..200,
        n_shards in 1usize..12,
    ) {
        let n_shards = n_shards.min(n_objects);
        let map = build(kind, n_shards, n_objects);
        let mut seen = vec![false; n_objects];
        let mut total = 0usize;
        for s in 0..map.n_shards() {
            total += map.shard_len(s);
            for l in 0..map.shard_len(s) {
                let g = map.global_id(s, ObjectId(l as u32));
                prop_assert!(g.index() < n_objects);
                prop_assert!(!seen[g.index()], "{} assigned twice", g);
                seen[g.index()] = true;
                prop_assert_eq!(map.shard_of(g), s);
                prop_assert_eq!(map.local_id(g), ObjectId(l as u32));
            }
        }
        prop_assert_eq!(total, n_objects);
        prop_assert!(seen.into_iter().all(|b| b), "every object owned");
    }

    /// The bounded-remap property: growing a [`HashRing`] from N to N+1
    /// shards only ever moves objects *to* the new shard, and the moved
    /// share stays near the ideal `1/(N+1)`.
    #[test]
    fn hash_ring_remap_is_bounded(
        n_objects in 50usize..2_000,
        n_shards in 1usize..12,
    ) {
        let before = HashRing::new(n_shards, n_objects);
        let after = HashRing::new(n_shards + 1, n_objects);
        let mut moved = 0usize;
        for g in 0..n_objects as u32 {
            let o = ObjectId(g);
            if before.shard_of(o) != after.shard_of(o) {
                prop_assert_eq!(
                    after.shard_of(o),
                    n_shards,
                    "{} moved between surviving shards",
                    o
                );
                moved += 1;
            }
        }
        // Ideal is n_objects/(n_shards+1); allow generous statistical
        // slack (4x + small-sample constant) while still refuting any
        // "rehash everything" regression.
        let ideal = n_objects / (n_shards + 1);
        prop_assert!(
            moved <= ideal * 4 + 16,
            "moved {} objects, ideal {}",
            moved,
            ideal
        );
    }

    /// Splitting a query preserves its byte total and object multiset
    /// for every shard count and partitioner, and sub-queries use valid
    /// local ids.
    #[test]
    fn split_query_is_lossless_under_any_shard_count(
        kind_sel in arb_partitioner_kind(),
        sizes in arb_catalog_sizes(),
        n_shards in 1usize..12,
        objects in prop::collection::vec(0u32..48, 1..24),
        result_bytes in 0u64..1_000_000_000,
        tolerance in 0u64..1_000,
        kind in arb_kind(),
    ) {
        let catalog = ObjectCatalog::from_sizes(&sizes);
        let n_shards = n_shards.min(sizes.len());
        let objects: Vec<ObjectId> = objects
            .into_iter()
            .map(|o| ObjectId(o % sizes.len() as u32))
            .collect();
        let q = QueryEvent { seq: 1, objects: objects.clone(), result_bytes, tolerance, kind };
        let map = build(kind_sel, n_shards, sizes.len());
        let subs = map.split_query(&q, &catalog);

        prop_assert_eq!(
            subs.iter().map(|(_, s)| s.result_bytes).sum::<u64>(),
            result_bytes
        );
        let mut reassembled: Vec<ObjectId> = subs
            .iter()
            .flat_map(|(s, sub)| sub.objects.iter().map(|&l| map.global_id(*s, l)))
            .collect();
        reassembled.sort();
        let mut want = objects;
        want.sort();
        prop_assert_eq!(reassembled, want);
        for (s, sub) in &subs {
            prop_assert!(*s < n_shards);
            prop_assert_eq!(sub.seq, q.seq);
            prop_assert_eq!(sub.tolerance, q.tolerance);
            prop_assert_eq!(sub.kind, q.kind);
            prop_assert!(!sub.objects.is_empty());
        }
    }

    /// The offline `shard_trace` twin routes every event exactly as the
    /// online `split_query`/`split_update` path does, for random traces,
    /// shard counts and partitioners — the equivalence the integration
    /// and cluster differential tests lean on.
    #[test]
    fn shard_trace_agrees_with_online_routing(
        kind_sel in arb_partitioner_kind(),
        sizes in arb_catalog_sizes(),
        n_shards in 1usize..10,
        total_cache in 0u64..1_000_000,
        raw_events in prop::collection::vec(
            (0u32..48, 0u64..1_000_000, 0u64..100, 0u8..2),
            0..40
        ),
    ) {
        let catalog = ObjectCatalog::from_sizes(&sizes);
        // Sub-catalogs must be non-empty: shards never outnumber objects.
        let n_shards = n_shards.min(sizes.len());
        let n = sizes.len() as u32;
        let events: Vec<Event> = raw_events
            .into_iter()
            .enumerate()
            .map(|(seq, (obj, bytes, tol, is_query))| {
                if is_query == 1 {
                    Event::Query(QueryEvent {
                        seq: seq as u64,
                        objects: vec![ObjectId(obj % n), ObjectId((obj + 7) % n)],
                        result_bytes: bytes,
                        tolerance: tol,
                        kind: QueryKind::Selection,
                    })
                } else {
                    Event::Update(UpdateEvent {
                        seq: seq as u64,
                        object: ObjectId(obj % n),
                        bytes,
                    })
                }
            })
            .collect();
        let trace = Trace::new(events.clone());
        let map = build(kind_sel, n_shards, sizes.len());
        // An empty shard cannot carry a sub-catalog; the live server
        // refuses such configurations, so the twin skips them too.
        if (0..n_shards).any(|s| map.shard_len(s) == 0) {
            return Ok(());
        }

        let offline = shard_trace(map.as_ref(), &catalog, &trace, total_cache);

        // Online twin: route event by event with the same primitives.
        let mut online: Vec<Vec<Event>> = vec![Vec::new(); n_shards];
        for event in &events {
            match event {
                Event::Query(q) => {
                    for (s, sub) in map.split_query(&q.clone(), &catalog) {
                        online[s].push(Event::Query(sub));
                    }
                }
                Event::Update(u) => {
                    let (s, sub) = map.split_update(&u.clone());
                    online[s].push(Event::Update(sub));
                }
            }
        }

        prop_assert_eq!(offline.len(), n_shards);
        let caches = map.shard_cache_bytes(total_cache, &catalog);
        prop_assert_eq!(caches.iter().sum::<u64>(), total_cache);
        for (s, (sub_catalog, sub_trace, cache)) in offline.iter().enumerate() {
            prop_assert_eq!(&sub_trace.events, &online[s], "shard {} sub-trace diverged", s);
            prop_assert_eq!(*cache, caches[s]);
            prop_assert_eq!(sub_catalog.len(), map.shard_len(s));
        }

        // Byte totals survive the partitioning exactly.
        let query_bytes: u64 = offline.iter().map(|(_, t, _)| t.total_query_bytes()).sum();
        prop_assert_eq!(query_bytes, trace.total_query_bytes());
        let update_bytes: u64 = offline.iter().map(|(_, t, _)| t.total_update_bytes()).sum();
        prop_assert_eq!(update_bytes, trace.total_update_bytes());
    }

    /// Sub-catalogs tile the catalog: every object appears on exactly
    /// one shard with its original size, for any shard count and either
    /// partitioner.
    #[test]
    fn sub_catalogs_tile_the_catalog(
        kind_sel in arb_partitioner_kind(),
        sizes in arb_catalog_sizes(),
        n_shards in 1usize..12,
    ) {
        let catalog = ObjectCatalog::from_sizes(&sizes);
        let n_shards = n_shards.min(sizes.len());
        let map = build(kind_sel, n_shards, sizes.len());
        let mut seen = vec![0u32; sizes.len()];
        for s in (0..n_shards).filter(|&s| map.shard_len(s) > 0) {
            let sub = map.shard_catalog(s, &catalog);
            for l in 0..sub.len() {
                let g = map.global_id(s, ObjectId(l as u32));
                prop_assert!(g.index() < sizes.len());
                prop_assert_eq!(sub.size(ObjectId(l as u32)), catalog.size(g));
                seen[g.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each object on exactly one shard");
    }

    /// RoundRobin preserved byte-for-byte: the trait object computes the
    /// exact `g % N` / `g / N` arithmetic of the pre-trait `ShardMap`.
    #[test]
    fn round_robin_is_the_original_arithmetic(
        n_objects in 1usize..500,
        n_shards in 1usize..12,
        g in 0u32..500,
    ) {
        let n_shards = n_shards.min(n_objects);
        let g = g % n_objects as u32;
        let map = RoundRobin::new(n_shards, n_objects);
        prop_assert_eq!(map.shard_of(ObjectId(g)), (g as usize) % n_shards);
        prop_assert_eq!(map.local_id(ObjectId(g)), ObjectId(g / n_shards as u32));
    }
}
