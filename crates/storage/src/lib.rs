//! # delta-storage — simulated repository and cache object stores
//!
//! Stands in for the two MS SQL Server instances of the paper's prototype
//! (§6.1): the server-side [`Repository`] (authoritative state, append-only
//! per-object update logs, growing object sizes) and the middleware-side
//! [`CacheStore`] (space-constrained, whole-object residency, per-object
//! applied versions and stale marks).
//!
//! Delta's decisions depend only on object sizes, versions and byte costs —
//! never on SQL execution — so this in-memory model preserves exactly the
//! behaviour the paper measures (network bytes moved).
//!
//! ```
//! use delta_storage::{CacheStore, ObjectCatalog, ObjectId, Repository, staleness};
//!
//! let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100, 200]));
//! let mut cache = CacheStore::new(250);
//! let o = ObjectId(0);
//! cache.load(o, 100, repo.version(o)).unwrap();
//! repo.apply_update(o, 10, /* seq */ 5);
//! cache.invalidate(o);
//!
//! // A zero-tolerance query at time 6 needs that update shipped:
//! let need = staleness::needed_updates(&repo, &cache, o, 6, 0).unwrap();
//! assert_eq!(need.bytes, 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache_store;
pub mod object;
pub mod repository;
pub mod staleness;

pub use cache_store::{CacheError, CacheStore, Resident};
pub use object::{DataObject, ObjectCatalog, ObjectId, SpatialMapper, GB, MB};
pub use repository::{Repository, UpdateRecord};
pub use staleness::{needed_updates, query_current, NeededUpdates};
