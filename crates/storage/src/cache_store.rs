//! The middleware cache's object store.
//!
//! Objects are cached *in entirety or not at all* (§3), the cache is
//! space-constrained (typically 20–30 % of the server, §6), and a resident
//! object carries the version up to which updates have been applied.
//! Capacity accounting charges an object's bytes as held at load time plus
//! any update bytes shipped to it since.

use crate::object::ObjectId;

/// Why a load was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// The object would not fit even in an empty cache.
    TooLarge {
        /// The object's size.
        needed: u64,
        /// Total cache capacity.
        capacity: u64,
    },
    /// Not enough free space; evict first.
    NoSpace {
        /// The object's size.
        needed: u64,
        /// Currently free bytes.
        free: u64,
    },
    /// The object is already resident.
    AlreadyResident,
    /// The object is not resident.
    NotResident,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CacheError::TooLarge { needed, capacity } => {
                write!(
                    f,
                    "object of {needed} B exceeds cache capacity {capacity} B"
                )
            }
            CacheError::NoSpace { needed, free } => {
                write!(f, "need {needed} B but only {free} B free")
            }
            CacheError::AlreadyResident => write!(f, "object already resident"),
            CacheError::NotResident => write!(f, "object not resident"),
        }
    }
}

impl std::error::Error for CacheError {}

/// A resident object's cache-side state.
#[derive(Clone, Copy, Debug)]
pub struct Resident {
    /// Bytes currently held (load size + shipped update bytes).
    pub bytes: u64,
    /// Number of the object's updates applied at the cache.
    pub applied_version: u64,
    /// Whether updates newer than `applied_version` exist at the server
    /// (the invalidation mark of §3: "objects at the cache are invalidated
    /// when updates arrive for them at the server").
    pub stale: bool,
}

/// The space-constrained object store at the middleware.
///
/// Object ids are dense catalog indices, so residency lives in a
/// catalog-sized slab (`Vec<Option<Resident>>`) rather than a hash map:
/// every lookup on the query/update hot path is one unhashed index, and
/// iteration walks memory in id order (deterministic, cache-friendly).
/// The slab grows lazily to the highest id ever touched.
#[derive(Clone, Debug)]
pub struct CacheStore {
    capacity: u64,
    used: u64,
    resident: Vec<Option<Resident>>,
    len: usize,
    loads: u64,
    evictions: u64,
}

impl CacheStore {
    /// Creates an empty cache with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            resident: Vec::new(),
            len: 0,
            loads: 0,
            evictions: 0,
        }
    }

    /// The slab slot for `id`, growing the slab if the id is past the end.
    #[inline]
    fn slot_mut(&mut self, id: ObjectId) -> &mut Option<Resident> {
        let i = id.index();
        if i >= self.resident.len() {
            self.resident.resize(i + 1, None);
        }
        &mut self.resident[i]
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free. Zero when the store is at — or, transiently,
    /// over — capacity: applying updates grows resident objects in place
    /// (§3: updates insert data), and the policy layer sheds the excess at
    /// its next decision point.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no objects are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime count of completed loads.
    pub fn load_count(&self) -> u64 {
        self.loads
    }

    /// Lifetime count of evictions.
    pub fn eviction_count(&self) -> u64 {
        self.evictions
    }

    /// Whether `id` is resident.
    #[inline]
    pub fn contains(&self, id: ObjectId) -> bool {
        matches!(self.resident.get(id.index()), Some(Some(_)))
    }

    /// Resident state of `id`, if cached.
    #[inline]
    pub fn get(&self, id: ObjectId) -> Option<&Resident> {
        self.resident.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Iterates over resident objects, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Resident)> {
        self.resident
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (ObjectId(i as u32), r)))
    }

    /// Loads `id` (size `bytes`, fully updated to `version`).
    ///
    /// Fails if already resident or if there is no room — eviction is the
    /// policy layer's job, the store never evicts on its own. One slot
    /// probe decides residency and performs the insert.
    pub fn load(&mut self, id: ObjectId, bytes: u64, version: u64) -> Result<(), CacheError> {
        let capacity = self.capacity;
        let free = self.free();
        let slot = self.slot_mut(id);
        if slot.is_some() {
            return Err(CacheError::AlreadyResident);
        }
        if bytes > capacity {
            return Err(CacheError::TooLarge {
                needed: bytes,
                capacity,
            });
        }
        if bytes > free {
            return Err(CacheError::NoSpace {
                needed: bytes,
                free,
            });
        }
        *slot = Some(Resident {
            bytes,
            applied_version: version,
            stale: false,
        });
        self.len += 1;
        self.used += bytes;
        self.loads += 1;
        Ok(())
    }

    /// Evicts `id`, freeing its bytes.
    pub fn evict(&mut self, id: ObjectId) -> Result<(), CacheError> {
        match self.resident.get_mut(id.index()).and_then(Option::take) {
            Some(r) => {
                self.used -= r.bytes;
                self.len -= 1;
                self.evictions += 1;
                Ok(())
            }
            None => Err(CacheError::NotResident),
        }
    }

    /// Marks a resident object stale (an update arrived for it at the
    /// server). Non-resident ids are ignored.
    pub fn invalidate(&mut self, id: ObjectId) {
        if let Some(Some(r)) = self.resident.get_mut(id.index()) {
            r.stale = true;
        }
    }

    /// Applies shipped updates to a resident object: advances its version
    /// to `new_version`, grows it by `bytes`, and clears the stale mark iff
    /// `fully_fresh`.
    ///
    /// # Panics
    /// Panics if the object is not resident or the version would move
    /// backwards.
    pub fn apply_updates(&mut self, id: ObjectId, new_version: u64, bytes: u64, fully_fresh: bool) {
        let r = self
            .resident
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .expect("applying updates to non-resident object");
        assert!(new_version >= r.applied_version, "version must not regress");
        r.applied_version = new_version;
        r.bytes += bytes;
        if fully_fresh {
            r.stale = false;
        }
        self.used += bytes;
        // Update growth may push the cache over nominal capacity; `used()`
        // exceeding `capacity()` is the policy layer's cue to evict, not an
        // invariant violation here (a single shipped range can be large).
    }

    /// Applied version of a resident object.
    #[inline]
    pub fn applied_version(&self, id: ObjectId) -> Option<u64> {
        self.get(id).map(|r| r.applied_version)
    }

    /// Re-inserts a resident object from a snapshot: no load is counted
    /// and no capacity check runs (a legitimately captured store may sit
    /// over nominal capacity from update growth, and warm-restart must
    /// put it back exactly as it was).
    pub fn restore(
        &mut self,
        id: ObjectId,
        bytes: u64,
        applied_version: u64,
        stale: bool,
    ) -> Result<(), CacheError> {
        let slot = self.slot_mut(id);
        if slot.is_some() {
            return Err(CacheError::AlreadyResident);
        }
        *slot = Some(Resident {
            bytes,
            applied_version,
            stale,
        });
        self.len += 1;
        self.used += bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_evict_track_space() {
        let mut c = CacheStore::new(100);
        c.load(ObjectId(1), 40, 0).unwrap();
        c.load(ObjectId(2), 60, 3).unwrap();
        assert_eq!(c.used(), 100);
        assert_eq!(c.free(), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.load(ObjectId(3), 1, 0),
            Err(CacheError::NoSpace { needed: 1, free: 0 })
        );
        c.evict(ObjectId(1)).unwrap();
        assert_eq!(c.free(), 40);
        assert_eq!(c.load_count(), 2);
        assert_eq!(c.eviction_count(), 1);
    }

    #[test]
    fn too_large_versus_no_space() {
        let mut c = CacheStore::new(100);
        assert_eq!(
            c.load(ObjectId(0), 150, 0),
            Err(CacheError::TooLarge {
                needed: 150,
                capacity: 100
            })
        );
        c.load(ObjectId(1), 80, 0).unwrap();
        assert_eq!(
            c.load(ObjectId(2), 90, 0),
            Err(CacheError::NoSpace {
                needed: 90,
                free: 20
            })
        );
    }

    #[test]
    fn double_load_rejected() {
        let mut c = CacheStore::new(100);
        c.load(ObjectId(1), 10, 0).unwrap();
        assert_eq!(c.load(ObjectId(1), 10, 0), Err(CacheError::AlreadyResident));
    }

    #[test]
    fn evict_missing_rejected() {
        let mut c = CacheStore::new(100);
        assert_eq!(c.evict(ObjectId(9)), Err(CacheError::NotResident));
    }

    #[test]
    fn staleness_lifecycle() {
        let mut c = CacheStore::new(100);
        c.load(ObjectId(1), 10, 2).unwrap();
        assert!(!c.get(ObjectId(1)).unwrap().stale);
        c.invalidate(ObjectId(1));
        assert!(c.get(ObjectId(1)).unwrap().stale);
        // Ship updates to version 4, 5 bytes, fully fresh.
        c.apply_updates(ObjectId(1), 4, 5, true);
        let r = c.get(ObjectId(1)).unwrap();
        assert!(!r.stale);
        assert_eq!(r.applied_version, 4);
        assert_eq!(r.bytes, 15);
        assert_eq!(c.used(), 15);
    }

    #[test]
    fn partial_update_keeps_stale() {
        let mut c = CacheStore::new(100);
        c.load(ObjectId(1), 10, 0).unwrap();
        c.invalidate(ObjectId(1));
        // Ship only part of the outstanding range (tolerance allowed it).
        c.apply_updates(ObjectId(1), 1, 2, false);
        assert!(c.get(ObjectId(1)).unwrap().stale);
    }

    #[test]
    fn invalidate_nonresident_is_noop() {
        let mut c = CacheStore::new(10);
        c.invalidate(ObjectId(5));
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "version must not regress")]
    fn version_regression_panics() {
        let mut c = CacheStore::new(100);
        c.load(ObjectId(1), 10, 5).unwrap();
        c.apply_updates(ObjectId(1), 3, 0, true);
    }
}
#[cfg(test)]
mod growth_tests {
    use super::*;

    #[test]
    fn free_saturates_when_growth_exceeds_capacity() {
        let mut c = CacheStore::new(100);
        c.load(ObjectId(0), 90, 0).unwrap();
        // Updates grow the object past the nominal capacity.
        c.apply_updates(ObjectId(0), 1, 30, true);
        assert_eq!(c.used(), 120);
        assert_eq!(
            c.free(),
            0,
            "over-capacity reads as zero free, not underflow"
        );
        // Loading anything else reports NoSpace rather than panicking.
        assert!(matches!(
            c.load(ObjectId(1), 10, 0),
            Err(CacheError::NoSpace { free: 0, .. })
        ));
        // Shedding the grown object restores headroom.
        c.evict(ObjectId(0)).unwrap();
        assert_eq!(c.free(), 100);
    }
}
