//! Data objects and the object catalog.
//!
//! The paper models the repository as a set of data objects `S = o1..oN`
//! (§3): spatial partitions of the `PhotoObj` table, between 50 MB and
//! 90 GB each, ~800 GB total for the default 68-object set (§6.1). The
//! catalog is the shared, immutable description of those objects — sizes,
//! sky footprints, densities — that repository, cache and workload all
//! reference by [`ObjectId`].

use delta_htm::{Partition, Region, Vec3};
use serde::{Deserialize, Serialize};

/// Dense identifier of a data object (index into the catalog).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The identifier as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// One gigabyte, in bytes. Network costs in the paper are quoted in GB.
pub const GB: u64 = 1_000_000_000;

/// One megabyte, in bytes.
pub const MB: u64 = 1_000_000;

/// Static description of one data object.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataObject {
    /// Identifier (equals its catalog position).
    pub id: ObjectId,
    /// Total bytes stored for this object; also its load cost ν(o).
    pub size_bytes: u64,
    /// Relative data density (used to size updates, §6.1: "the size of an
    /// update is proportional to the density of the data object").
    pub density: f64,
}

/// The immutable set of data objects a repository serves.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObjectCatalog {
    objects: Vec<DataObject>,
    total_bytes: u64,
}

impl ObjectCatalog {
    /// Builds a catalog from explicit object sizes; densities are taken as
    /// proportional to size.
    ///
    /// # Panics
    /// Panics if `sizes` is empty or contains a zero size.
    pub fn from_sizes(sizes: &[u64]) -> Self {
        assert!(!sizes.is_empty(), "catalog must have at least one object");
        let total: u64 = sizes.iter().sum();
        let objects = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                assert!(s > 0, "object {i} has zero size");
                DataObject {
                    id: ObjectId(i as u32),
                    size_bytes: s,
                    density: s as f64 / total as f64,
                }
            })
            .collect();
        Self {
            objects,
            total_bytes: total,
        }
    }

    /// Builds a catalog from an HTM partition and a sky-density functional:
    /// each leaf trixel becomes an object whose size is its share of
    /// `total_bytes` (by integrated density), clipped to
    /// `[min_bytes, max_bytes]`.
    ///
    /// This reproduces the paper's object population: 68 partitions of the
    /// 1 TB PhotoObj table holding ~800 GB, each between 50 MB and 90 GB.
    pub fn from_partition(
        partition: &Partition,
        total_bytes: u64,
        min_bytes: u64,
        max_bytes: u64,
    ) -> Self {
        assert!(min_bytes > 0 && min_bytes <= max_bytes);
        let weights = partition.weights();
        let wsum: f64 = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);
        let sizes: Vec<u64> = weights
            .iter()
            .map(|w| {
                let raw = (w / wsum) * total_bytes as f64;
                (raw as u64).clamp(min_bytes, max_bytes)
            })
            .collect();
        Self::from_sizes(&sizes)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the catalog is empty (never true for a valid catalog).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over all objects.
    pub fn iter(&self) -> impl Iterator<Item = &DataObject> {
        self.objects.iter()
    }

    /// The object with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn get(&self, id: ObjectId) -> &DataObject {
        &self.objects[id.index()]
    }

    /// Size (== load cost) of an object in bytes.
    pub fn size(&self, id: ObjectId) -> u64 {
        self.objects[id.index()].size_bytes
    }

    /// Sum of all object sizes — the server repository size.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// All object ids.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        (0..self.objects.len() as u32).map(ObjectId)
    }
}

/// Maps sky positions and regions to catalog objects via an HTM partition.
///
/// This is the "semantic framework that determines the mapping between the
/// query q and the data objects B(q) it accesses" required by §4 of the
/// paper: queries specify a spatial region; objects are spatial partitions.
#[derive(Clone, Debug)]
pub struct SpatialMapper {
    partition: Partition,
}

impl SpatialMapper {
    /// Wraps a partition whose leaf count matches the catalog size.
    pub fn new(partition: Partition) -> Self {
        Self { partition }
    }

    /// The underlying partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Object containing a sky position.
    pub fn object_at(&self, p: Vec3) -> ObjectId {
        ObjectId(self.partition.locate(p) as u32)
    }

    /// Objects a region (conservatively) touches: the paper's `B(q)`.
    pub fn objects_for(&self, region: &Region) -> Vec<ObjectId> {
        self.partition
            .objects_for_region(region)
            .into_iter()
            .map(|i| ObjectId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sizes_assigns_dense_ids() {
        let c = ObjectCatalog::from_sizes(&[10, 20, 30]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_bytes(), 60);
        assert_eq!(c.get(ObjectId(1)).size_bytes, 20);
        assert!((c.get(ObjectId(2)).density - 0.5).abs() < 1e-12);
        let ids: Vec<_> = c.ids().collect();
        assert_eq!(ids, vec![ObjectId(0), ObjectId(1), ObjectId(2)]);
    }

    #[test]
    #[should_panic(expected = "zero size")]
    fn zero_size_rejected() {
        ObjectCatalog::from_sizes(&[10, 0]);
    }

    #[test]
    fn from_partition_respects_clipping() {
        let part = Partition::adaptive(|t| t.solid_angle(), 68);
        let c = ObjectCatalog::from_partition(&part, 800 * GB, 50 * MB, 90 * GB);
        assert_eq!(c.len(), part.len());
        for o in c.iter() {
            assert!(o.size_bytes >= 50 * MB, "{} too small", o.id);
            assert!(o.size_bytes <= 90 * GB, "{} too big", o.id);
        }
        // Roughly the requested total (clipping perturbs it slightly).
        let total = c.total_bytes() as f64;
        assert!(total > 0.5 * 800.0 * GB as f64 && total < 1.5 * 800.0 * GB as f64);
    }

    #[test]
    fn spatial_mapper_consistency() {
        let part = Partition::adaptive(|t| t.solid_angle(), 32);
        let mapper = SpatialMapper::new(part);
        let p = Vec3::from_radec_deg(100.0, -25.0);
        let o = mapper.object_at(p);
        let objs = mapper.objects_for(&Region::cone_deg(100.0, -25.0, 2.0));
        assert!(objs.contains(&o));
    }
}
