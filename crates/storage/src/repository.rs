//! The server-side repository: authoritative object state and update log.
//!
//! A rapidly-growing repository receives a stream of updates, each
//! affecting exactly one object (§3: "each incoming update u affects just
//! one object o(u)"). Data is never deleted (archival), so the per-object
//! state is an append-only log; an object's *version* is the number of
//! updates applied to it so far.

use crate::object::{ObjectCatalog, ObjectId};
use serde::{Deserialize, Serialize};

/// One update applied at the repository.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateRecord {
    /// Global event-sequence number at which the update arrived. Doubles
    /// as the update's timestamp for staleness-tolerance checks.
    pub seq: u64,
    /// Size of the update's data content — its shipping cost ν(u).
    pub bytes: u64,
}

/// The authoritative data store at the server.
#[derive(Clone, Debug)]
pub struct Repository {
    catalog: ObjectCatalog,
    logs: Vec<Vec<UpdateRecord>>,
    /// Per-object prefix sums of update bytes (`cum[v]` = bytes of the
    /// first `v` updates), so any range cost is O(1).
    cum: Vec<Vec<u64>>,
    grown_bytes: Vec<u64>,
}

impl Repository {
    /// Creates a repository over a catalog, with empty update logs.
    pub fn new(catalog: ObjectCatalog) -> Self {
        let n = catalog.len();
        Self {
            catalog,
            logs: vec![Vec::new(); n],
            cum: vec![vec![0]; n],
            grown_bytes: vec![0; n],
        }
    }

    /// The object catalog.
    pub fn catalog(&self) -> &ObjectCatalog {
        &self.catalog
    }

    /// Applies an update to `id` at global sequence `seq`, returning the
    /// object's new version.
    ///
    /// # Panics
    /// Panics if `seq` is not monotonically non-decreasing for the object.
    pub fn apply_update(&mut self, id: ObjectId, bytes: u64, seq: u64) -> u64 {
        let log = &mut self.logs[id.index()];
        if let Some(last) = log.last() {
            assert!(seq >= last.seq, "update sequence must be monotone");
        }
        log.push(UpdateRecord { seq, bytes });
        let c = &mut self.cum[id.index()];
        c.push(c.last().copied().unwrap_or(0) + bytes);
        self.grown_bytes[id.index()] += bytes;
        log.len() as u64
    }

    /// Current version (number of updates ever applied) of an object.
    pub fn version(&self, id: ObjectId) -> u64 {
        self.logs[id.index()].len() as u64
    }

    /// The update records of `id` from version `from` (0-based) onward.
    pub fn updates_since(&self, id: ObjectId, from: u64) -> &[UpdateRecord] {
        &self.logs[id.index()][from as usize..]
    }

    /// Version of `id` as of time `now - tolerance`: the number of its
    /// updates with `seq <= horizon`. A cached copy at this version (or
    /// later) satisfies a query with the given tolerance (§3's t(q)
    /// semantics: all updates except those within the last t(q) time
    /// units).
    pub fn version_at_horizon(&self, id: ObjectId, now: u64, tolerance: u64) -> u64 {
        let horizon = now.saturating_sub(tolerance);
        let log = &self.logs[id.index()];
        // Logs are seq-sorted; binary search for the first record newer
        // than the horizon.
        log.partition_point(|r| r.seq <= horizon) as u64
    }

    /// Current size of the object: base catalog size plus all update bytes
    /// — the cost of loading it now ("the entire data object (including
    /// the updates) is shipped", §3).
    pub fn current_size(&self, id: ObjectId) -> u64 {
        self.catalog.size(id) + self.grown_bytes[id.index()]
    }

    /// Current total repository size.
    pub fn total_current_bytes(&self) -> u64 {
        self.catalog.total_bytes() + self.grown_bytes.iter().sum::<u64>()
    }

    /// Total bytes of updates between versions `from..to` of an object —
    /// the cost of shipping that update range to the cache. O(1) via
    /// prefix sums.
    pub fn update_bytes(&self, id: ObjectId, from: u64, to: u64) -> u64 {
        let c = &self.cum[id.index()];
        c[to as usize] - c[from as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectCatalog;

    fn repo() -> Repository {
        Repository::new(ObjectCatalog::from_sizes(&[100, 200, 300]))
    }

    #[test]
    fn versions_advance_per_object() {
        let mut r = repo();
        let a = ObjectId(0);
        let b = ObjectId(1);
        assert_eq!(r.version(a), 0);
        assert_eq!(r.apply_update(a, 5, 1), 1);
        assert_eq!(r.apply_update(a, 7, 3), 2);
        assert_eq!(r.apply_update(b, 2, 4), 1);
        assert_eq!(r.version(a), 2);
        assert_eq!(r.version(b), 1);
        assert_eq!(r.version(ObjectId(2)), 0);
    }

    #[test]
    fn horizon_version_respects_tolerance() {
        let mut r = repo();
        let a = ObjectId(0);
        r.apply_update(a, 1, 10);
        r.apply_update(a, 1, 20);
        r.apply_update(a, 1, 30);
        // At time 35 with tolerance 10, horizon is 25: two updates needed.
        assert_eq!(r.version_at_horizon(a, 35, 10), 2);
        // Zero tolerance needs everything up to now.
        assert_eq!(r.version_at_horizon(a, 35, 0), 3);
        // Huge tolerance needs nothing.
        assert_eq!(r.version_at_horizon(a, 35, 1000), 0);
        // Horizon exactly on an update's seq includes it.
        assert_eq!(r.version_at_horizon(a, 30, 10), 2);
    }

    #[test]
    fn sizes_grow_with_updates() {
        let mut r = repo();
        let a = ObjectId(0);
        assert_eq!(r.current_size(a), 100);
        r.apply_update(a, 40, 1);
        assert_eq!(r.current_size(a), 140);
        assert_eq!(r.total_current_bytes(), 640);
    }

    #[test]
    fn update_bytes_ranges() {
        let mut r = repo();
        let a = ObjectId(0);
        r.apply_update(a, 5, 1);
        r.apply_update(a, 7, 2);
        r.apply_update(a, 11, 3);
        assert_eq!(r.update_bytes(a, 0, 3), 23);
        assert_eq!(r.update_bytes(a, 1, 2), 7);
        assert_eq!(r.update_bytes(a, 2, 2), 0);
        assert_eq!(r.updates_since(a, 1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_seq_panics() {
        let mut r = repo();
        r.apply_update(ObjectId(0), 1, 5);
        r.apply_update(ObjectId(0), 1, 4);
    }
}
