//! Currency bookkeeping: which updates does a query actually need?
//!
//! The paper's tolerance semantics (§3): *"Given t(q), an answer to q must
//! incorporate all updates received on each object in B(q) except those
//! that arrived within the last t(q) time units."* This module turns that
//! sentence into the version arithmetic shared by every policy.

use crate::cache_store::CacheStore;
use crate::object::ObjectId;
use crate::repository::Repository;

/// The update range a cached object must apply to satisfy a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeededUpdates {
    /// Object concerned.
    pub object: ObjectId,
    /// First needed version (exclusive of already-applied): range start.
    pub from_version: u64,
    /// Required version (range end): all updates with `seq <= now - t(q)`.
    pub to_version: u64,
    /// Total bytes of the needed range — the cost of shipping it.
    pub bytes: u64,
}

impl NeededUpdates {
    /// Whether the cached copy already satisfies the requirement.
    pub fn is_current(&self) -> bool {
        self.from_version >= self.to_version
    }

    /// Number of outstanding updates in the needed range.
    pub fn count(&self) -> u64 {
        self.to_version.saturating_sub(self.from_version)
    }
}

/// Computes the updates a query with tolerance `tolerance` (issued at
/// `now`) needs shipped for object `id`, given the cache's applied version.
///
/// Returns `None` when the object is not resident (the query cannot be
/// served from cache regardless of currency).
pub fn needed_updates(
    repo: &Repository,
    cache: &CacheStore,
    id: ObjectId,
    now: u64,
    tolerance: u64,
) -> Option<NeededUpdates> {
    let applied = cache.applied_version(id)?;
    let required = repo.version_at_horizon(id, now, tolerance);
    let from = applied.min(required);
    let bytes = if applied < required {
        repo.update_bytes(id, applied, required)
    } else {
        0
    };
    Some(NeededUpdates {
        object: id,
        from_version: from,
        to_version: required,
        bytes,
    })
}

/// Whether the cache can answer a query over `objects` *right now* without
/// any communication: every object resident and current per the tolerance.
pub fn query_current(
    repo: &Repository,
    cache: &CacheStore,
    objects: &[ObjectId],
    now: u64,
    tolerance: u64,
) -> bool {
    objects
        .iter()
        .all(|&o| needed_updates(repo, cache, o, now, tolerance).is_some_and(|n| n.is_current()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectCatalog;

    fn setup() -> (Repository, CacheStore) {
        let repo = Repository::new(ObjectCatalog::from_sizes(&[100, 100]));
        let cache = CacheStore::new(1000);
        (repo, cache)
    }

    #[test]
    fn non_resident_is_none() {
        let (repo, cache) = setup();
        assert!(needed_updates(&repo, &cache, ObjectId(0), 10, 0).is_none());
    }

    #[test]
    fn fresh_object_is_current() {
        let (mut repo, mut cache) = setup();
        let a = ObjectId(0);
        repo.apply_update(a, 5, 1);
        cache.load(a, 105, 1).unwrap();
        let n = needed_updates(&repo, &cache, a, 10, 0).unwrap();
        assert!(n.is_current());
        assert_eq!(n.bytes, 0);
    }

    #[test]
    fn stale_object_needs_range() {
        let (mut repo, mut cache) = setup();
        let a = ObjectId(0);
        cache.load(a, 100, 0).unwrap();
        repo.apply_update(a, 5, 1);
        repo.apply_update(a, 7, 2);
        let n = needed_updates(&repo, &cache, a, 10, 0).unwrap();
        assert!(!n.is_current());
        assert_eq!(n.count(), 2);
        assert_eq!(n.bytes, 12);
    }

    #[test]
    fn tolerance_waives_recent_updates() {
        let (mut repo, mut cache) = setup();
        let a = ObjectId(0);
        cache.load(a, 100, 0).unwrap();
        repo.apply_update(a, 5, 1);
        repo.apply_update(a, 7, 9); // recent
                                    // At now=10 with tolerance 5, only the seq<=5 update is needed.
        let n = needed_updates(&repo, &cache, a, 10, 5).unwrap();
        assert_eq!(n.count(), 1);
        assert_eq!(n.bytes, 5);
        // With tolerance 20 nothing is needed.
        let n = needed_updates(&repo, &cache, a, 10, 20).unwrap();
        assert!(n.is_current());
    }

    #[test]
    fn query_current_requires_all_objects() {
        let (mut repo, mut cache) = setup();
        let a = ObjectId(0);
        let b = ObjectId(1);
        cache.load(a, 100, 0).unwrap();
        // b not resident -> not current.
        assert!(!query_current(&repo, &cache, &[a, b], 5, 0));
        cache.load(b, 100, 0).unwrap();
        assert!(query_current(&repo, &cache, &[a, b], 5, 0));
        repo.apply_update(b, 3, 6);
        assert!(!query_current(&repo, &cache, &[a, b], 7, 0));
        // ...but a tolerant query is fine.
        assert!(query_current(&repo, &cache, &[a, b], 7, 2));
    }
}
