//! Differential pin for the dense-slab conversion: the slab-backed
//! [`CacheStore`] and the heap-indexed `GreedyDualSize` must be
//! observationally identical to straightforward `HashMap` reference
//! models (the pre-slab implementations, kept here verbatim in spirit)
//! through arbitrary load/touch/evict/restore/update sequences.
//!
//! The models deliberately re-implement the *semantics*, not the code:
//! the cache model tracks residency, byte accounting and counters in a
//! map; the GDS model picks victims by a linear `(H, tick, id)` scan —
//! exactly the scan the indexed binary heap replaced. If the slab or
//! the heap ever diverges (a stale `pos` entry, a missed sift, a
//! double-counted `used`), these properties catch it on the spot.

use delta_policy::{GreedyDualSize, ReplacementPolicy};
use delta_storage::{CacheError, CacheStore, ObjectId};
use proptest::prelude::*;
use std::collections::HashMap;

// ---- CacheStore vs HashMap reference ----

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RefResident {
    bytes: u64,
    applied_version: u64,
    stale: bool,
}

/// The hash-map reference model of `CacheStore`.
#[derive(Clone, Debug, Default)]
struct RefCache {
    capacity: u64,
    used: u64,
    resident: HashMap<u32, RefResident>,
    loads: u64,
    evictions: u64,
}

impl RefCache {
    fn new(capacity: u64) -> Self {
        RefCache {
            capacity,
            ..Default::default()
        }
    }

    fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    fn load(&mut self, id: u32, bytes: u64, version: u64) -> Result<(), CacheError> {
        if self.resident.contains_key(&id) {
            return Err(CacheError::AlreadyResident);
        }
        if bytes > self.capacity {
            return Err(CacheError::TooLarge {
                needed: bytes,
                capacity: self.capacity,
            });
        }
        if bytes > self.free() {
            return Err(CacheError::NoSpace {
                needed: bytes,
                free: self.free(),
            });
        }
        self.resident.insert(
            id,
            RefResident {
                bytes,
                applied_version: version,
                stale: false,
            },
        );
        self.used += bytes;
        self.loads += 1;
        Ok(())
    }

    fn evict(&mut self, id: u32) -> Result<(), CacheError> {
        match self.resident.remove(&id) {
            Some(r) => {
                self.used -= r.bytes;
                self.evictions += 1;
                Ok(())
            }
            None => Err(CacheError::NotResident),
        }
    }

    fn invalidate(&mut self, id: u32) {
        if let Some(r) = self.resident.get_mut(&id) {
            r.stale = true;
        }
    }

    fn apply_updates(&mut self, id: u32, new_version: u64, bytes: u64, fully_fresh: bool) {
        let r = self.resident.get_mut(&id).expect("resident");
        r.applied_version = new_version;
        r.bytes += bytes;
        if fully_fresh {
            r.stale = false;
        }
        self.used += bytes;
    }

    fn restore(
        &mut self,
        id: u32,
        bytes: u64,
        applied_version: u64,
        stale: bool,
    ) -> Result<(), CacheError> {
        if self.resident.contains_key(&id) {
            return Err(CacheError::AlreadyResident);
        }
        self.resident.insert(
            id,
            RefResident {
                bytes,
                applied_version,
                stale,
            },
        );
        self.used += bytes;
        Ok(())
    }
}

#[derive(Clone, Debug)]
enum CacheOp {
    Load {
        id: u32,
        bytes: u64,
        version: u64,
    },
    Evict {
        id: u32,
    },
    Invalidate {
        id: u32,
    },
    /// Applied only when the object is resident (the store panics on
    /// non-resident ids by contract); grows by `bytes`, advances the
    /// version by `dv`.
    ApplyUpdates {
        id: u32,
        dv: u64,
        bytes: u64,
        fully_fresh: bool,
    },
    Restore {
        id: u32,
        bytes: u64,
        version: u64,
        stale: bool,
    },
}

const UNIVERSE: u32 = 24;

fn arb_cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..UNIVERSE, 1u64..120, 0u64..8).prop_map(|(id, bytes, version)| CacheOp::Load {
                id,
                bytes,
                version
            }),
            (0..UNIVERSE).prop_map(|id| CacheOp::Evict { id }),
            (0..UNIVERSE).prop_map(|id| CacheOp::Invalidate { id }),
            (0..UNIVERSE, 0u64..4, 0u64..40, proptest::bool::ANY).prop_map(
                |(id, dv, bytes, fully_fresh)| CacheOp::ApplyUpdates {
                    id,
                    dv,
                    bytes,
                    fully_fresh
                }
            ),
            (0..UNIVERSE, 1u64..120, 0u64..8, proptest::bool::ANY).prop_map(
                |(id, bytes, version, stale)| CacheOp::Restore {
                    id,
                    bytes,
                    version,
                    stale
                }
            ),
        ],
        0..200,
    )
}

/// Asserts every observable of the slab store equals the reference.
fn assert_cache_equiv(store: &CacheStore, model: &RefCache) -> Result<(), TestCaseError> {
    prop_assert_eq!(store.capacity(), model.capacity);
    prop_assert_eq!(store.used(), model.used);
    prop_assert_eq!(store.free(), model.free());
    prop_assert_eq!(store.len(), model.resident.len());
    prop_assert_eq!(store.is_empty(), model.resident.is_empty());
    prop_assert_eq!(store.load_count(), model.loads);
    prop_assert_eq!(store.eviction_count(), model.evictions);
    for id in 0..UNIVERSE {
        let got = store.get(ObjectId(id));
        let want = model.resident.get(&id);
        prop_assert_eq!(store.contains(ObjectId(id)), want.is_some());
        prop_assert_eq!(
            store.applied_version(ObjectId(id)),
            want.map(|r| r.applied_version)
        );
        match (got, want) {
            (None, None) => {}
            (Some(g), Some(w)) => {
                prop_assert_eq!(
                    (g.bytes, g.applied_version, g.stale),
                    (w.bytes, w.applied_version, w.stale)
                );
            }
            other => prop_assert!(false, "residency mismatch for {}: {:?}", id, other),
        }
    }
    // Iteration covers exactly the resident set.
    let mut iterated: Vec<u32> = store.iter().map(|(o, _)| o.0).collect();
    let mut expected: Vec<u32> = model.resident.keys().copied().collect();
    iterated.sort_unstable();
    expected.sort_unstable();
    prop_assert_eq!(iterated, expected);
    Ok(())
}

// ---- GreedyDualSize vs linear-scan reference ----

#[derive(Clone, Copy, Debug)]
struct RefEntry {
    h: f64,
    size: u64,
    tick: u64,
}

/// The hash-map + linear-scan reference model of `GreedyDualSize` — the
/// pre-heap implementation.
#[derive(Clone, Debug)]
struct RefGds {
    capacity: u64,
    used: u64,
    inflation: f64,
    tick: u64,
    entries: HashMap<u32, RefEntry>,
}

impl RefGds {
    fn new(capacity: u64) -> Self {
        RefGds {
            capacity,
            used: 0,
            inflation: 0.0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn victim(&self) -> Option<u32> {
        self.entries
            .iter()
            .min_by(|a, b| {
                a.1.h
                    .total_cmp(&b.1.h)
                    .then_with(|| a.1.tick.cmp(&b.1.tick))
                    .then_with(|| a.0.cmp(b.0))
            })
            .map(|(&id, _)| id)
    }

    fn request(&mut self, id: u32, size: u64, cost: u64) -> (bool, Vec<u32>) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.h = self.inflation + cost as f64 / size.max(1) as f64;
            let t = self.bump();
            self.entries.get_mut(&id).expect("present").tick = t;
            return (true, Vec::new());
        }
        if size > self.capacity {
            return (false, Vec::new());
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            let v = self.victim().expect("victim exists");
            let e = self.entries.remove(&v).expect("resident");
            self.used -= e.size;
            self.inflation = self.inflation.max(e.h);
            evicted.push(v);
        }
        let h = self.inflation + cost as f64 / size.max(1) as f64;
        let tick = self.bump();
        self.entries.insert(id, RefEntry { h, size, tick });
        self.used += size;
        (true, evicted)
    }

    fn touch(&mut self, id: u32) {
        if let Some(e) = self.entries.get(&id) {
            let (size, h_base) = (e.size, self.inflation);
            let cost_over_size = e.h - h_base;
            let t = self.bump();
            let e = self.entries.get_mut(&id).expect("present");
            e.h = h_base + cost_over_size.max(1.0 / size.max(1) as f64);
            e.tick = t;
        }
    }

    fn forget(&mut self, id: u32) {
        if let Some(e) = self.entries.remove(&id) {
            self.used -= e.size;
        }
    }
}

#[derive(Clone, Debug)]
enum GdsOp {
    Request(u32, u64, u64),
    Touch(u32),
    Forget(u32),
}

fn arb_gds_ops() -> impl Strategy<Value = Vec<GdsOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..UNIVERSE, 1u64..150, 0u64..300).prop_map(|(i, s, c)| GdsOp::Request(i, s, c)),
            (0..UNIVERSE).prop_map(GdsOp::Touch),
            (0..UNIVERSE).prop_map(GdsOp::Forget),
        ],
        0..250,
    )
}

fn assert_gds_equiv(gds: &GreedyDualSize, model: &RefGds) -> Result<(), TestCaseError> {
    prop_assert_eq!(gds.used(), model.used);
    prop_assert_eq!(gds.capacity(), model.capacity);
    prop_assert_eq!(gds.victim().map(|o| o.0), model.victim());
    prop_assert!((gds.inflation() - model.inflation).abs() < 1e-12);
    for id in 0..UNIVERSE {
        prop_assert_eq!(gds.contains(ObjectId(id)), model.entries.contains_key(&id));
        let want = model.entries.get(&id).map(|e| e.h);
        match (gds.priority(ObjectId(id)), want) {
            (None, None) => {}
            (Some(g), Some(w)) => prop_assert!((g - w).abs() < 1e-12, "priority {} vs {}", g, w),
            other => prop_assert!(false, "priority mismatch for {}: {:?}", id, other),
        }
    }
    let mut resident: Vec<u32> = gds.resident().iter().map(|o| o.0).collect();
    let mut expected: Vec<u32> = model.entries.keys().copied().collect();
    resident.sort_unstable();
    expected.sort_unstable();
    prop_assert_eq!(resident, expected);
    Ok(())
}

proptest! {
    /// The slab store and the hash-map model agree on every observable
    /// after every operation.
    #[test]
    fn cache_store_matches_hashmap_reference(
        cap in 50u64..400,
        ops in arb_cache_ops(),
    ) {
        let mut store = CacheStore::new(cap);
        let mut model = RefCache::new(cap);
        for op in &ops {
            match *op {
                CacheOp::Load { id, bytes, version } => {
                    prop_assert_eq!(
                        store.load(ObjectId(id), bytes, version),
                        model.load(id, bytes, version)
                    );
                }
                CacheOp::Evict { id } => {
                    prop_assert_eq!(store.evict(ObjectId(id)), model.evict(id));
                }
                CacheOp::Invalidate { id } => {
                    store.invalidate(ObjectId(id));
                    model.invalidate(id);
                }
                CacheOp::ApplyUpdates { id, dv, bytes, fully_fresh } => {
                    // Only legal on residents; version must not regress.
                    let Some(applied) = store.applied_version(ObjectId(id)) else {
                        continue;
                    };
                    store.apply_updates(ObjectId(id), applied + dv, bytes, fully_fresh);
                    model.apply_updates(id, applied + dv, bytes, fully_fresh);
                }
                CacheOp::Restore { id, bytes, version, stale } => {
                    prop_assert_eq!(
                        store.restore(ObjectId(id), bytes, version, stale),
                        model.restore(id, bytes, version, stale)
                    );
                }
            }
            assert_cache_equiv(&store, &model)?;
        }
    }

    /// The heap-indexed GDS and the linear-scan model make identical
    /// decisions — same admissions, same eviction order, same victim,
    /// same priorities — through arbitrary request/touch/forget churn.
    #[test]
    fn gds_heap_matches_linear_scan_reference(
        cap in 50u64..500,
        ops in arb_gds_ops(),
    ) {
        let mut gds = GreedyDualSize::new(cap);
        let mut model = RefGds::new(cap);
        for op in &ops {
            match *op {
                GdsOp::Request(id, size, cost) => {
                    let adm = gds.request(ObjectId(id), size, cost);
                    let (admitted, evicted) = model.request(id, size, cost);
                    prop_assert_eq!(adm.admitted, admitted);
                    prop_assert_eq!(
                        adm.evicted.iter().map(|o| o.0).collect::<Vec<_>>(),
                        evicted,
                        "eviction order must match the linear scan"
                    );
                }
                GdsOp::Touch(id) => {
                    gds.touch(ObjectId(id));
                    model.touch(id);
                }
                GdsOp::Forget(id) => {
                    gds.forget(ObjectId(id));
                    model.forget(id);
                }
            }
            assert_gds_equiv(&gds, &model)?;
        }
    }
}
