//! Workload configuration: every knob of the trace reconstruction.
//!
//! Defaults follow §6.1 of the paper: a ~1 TB PhotoObj-like table split
//! into 68 spatial objects holding ~800 GB (50 MB–90 GB each), 250,000
//! queries and 250,000 updates, ~300 GB of query traffic, ~150 GB of
//! update traffic, a long warm-up prefix of cheap queries, drifting query
//! hotspots and great-circle-clustered updates.

use serde::{Deserialize, Serialize};

/// Relative frequencies of the query shapes in the trace (§6.1 lists
/// range, spatial self-join, selection and aggregation queries; cone
/// searches and stripe scans are the canonical SkyServer additions).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QueryMix {
    /// Cone searches around a position.
    pub cone: f64,
    /// RA/Dec rectangle scans.
    pub range: f64,
    /// Spatial self-joins.
    pub self_join: f64,
    /// Wide-area aggregations.
    pub aggregate: f64,
    /// Great-circle survey scans (touch many objects).
    pub scan: f64,
    /// Point selections.
    pub selection: f64,
}

impl QueryMix {
    /// The SkyServer-like default mix.
    pub fn sdss_like() -> Self {
        QueryMix {
            cone: 0.38,
            range: 0.22,
            self_join: 0.12,
            aggregate: 0.08,
            scan: 0.05,
            selection: 0.15,
        }
    }

    /// Sum of the weights (must be positive).
    pub fn total(&self) -> f64 {
        self.cone + self.range + self.self_join + self.aggregate + self.scan + self.selection
    }
}

/// Full configuration of a synthetic survey workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Master RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Number of query events.
    pub n_queries: usize,
    /// Number of update events.
    pub n_updates: usize,
    /// Target number of data objects (HTM partition leaves).
    pub target_objects: usize,
    /// Total repository bytes spread over the objects.
    pub total_bytes: u64,
    /// Smallest object size after clipping.
    pub min_object_bytes: u64,
    /// Largest object size after clipping.
    pub max_object_bytes: u64,
    /// Mean query-result size (post-warm-up).
    pub mean_result_bytes: u64,
    /// Hard cap on a single result.
    pub max_result_bytes: u64,
    /// Mean update-content size.
    pub mean_update_bytes: u64,
    /// Fraction of the event sequence forming the cheap warm-up prefix.
    pub warmup_fraction: f64,
    /// Result-size multiplier during warm-up (≪ 1).
    pub warmup_scale: f64,
    /// Number of simultaneous query hotspots.
    pub n_hotspots: usize,
    /// Zipf exponent of hotspot popularity.
    pub hotspot_zipf: f64,
    /// A hotspot relocates every this-many queries (workload evolution).
    pub drift_interval: usize,
    /// Probability a query demands full currency (t(q) = 0).
    pub zero_tolerance_frac: f64,
    /// Mean tolerance (event ticks) for the tolerant remainder.
    pub mean_tolerance: u64,
    /// Number of telescope scan stripes generating updates.
    pub n_stripes: usize,
    /// Updates emitted along one stripe before switching to the next.
    pub stripe_len: usize,
    /// Number of over-density blobs in the sky model.
    pub n_blobs: usize,
    /// Fraction of queries that *excurse*: instead of re-hitting the
    /// hotspot they probe data "close to, or related to, rather than the
    /// exact same as" the current queries (§6.2, citing \[24\] — the
    /// mechanism behind Fig. 8(b)'s fine-granularity upturn: nearby
    /// probes stay inside a coarse cached object but fall off the edge of
    /// a fine one).
    pub excursion_frac: f64,
    /// Angular distance range (degrees) of an excursion from its hotspot.
    pub excursion_deg: (f64, f64),
    /// Query shape mix.
    pub mix: QueryMix,
}

impl WorkloadConfig {
    /// Full-scale configuration mirroring §6.1 of the paper.
    pub fn sdss_like() -> Self {
        use delta_storage::{GB, MB};
        WorkloadConfig {
            seed: 0xDE17A,
            n_queries: 250_000,
            n_updates: 250_000,
            target_objects: 68,
            total_bytes: 800 * GB,
            min_object_bytes: 50 * MB,
            max_object_bytes: 90 * GB,
            mean_result_bytes: 2 * MB + MB / 2, // ≈ 300 GB over 125k post-warm-up queries
            max_result_bytes: 15 * GB,          // the paper's example q3 ships 15 GB
            mean_update_bytes: 1_100_000, // stripes oversample dense sky ~1.8x; yields Replica/NoCache ≈ 0.75 post-warm-up as in Fig. 7(b)
            warmup_fraction: 0.5,
            warmup_scale: 0.05,
            n_hotspots: 6,
            hotspot_zipf: 1.35,
            drift_interval: 9_000,
            zero_tolerance_frac: 0.7,
            mean_tolerance: 2_000,
            n_stripes: 10,
            stripe_len: 900,
            n_blobs: 10,
            excursion_frac: 0.18,
            excursion_deg: (4.0, 14.0),
            mix: QueryMix::sdss_like(),
        }
    }

    /// A fast, small configuration for unit and integration tests
    /// (thousands of events, megabyte-scale objects).
    pub fn small() -> Self {
        use delta_storage::MB;
        WorkloadConfig {
            seed: 42,
            n_queries: 2_000,
            n_updates: 2_000,
            target_objects: 16,
            total_bytes: 800 * MB,
            min_object_bytes: MB / 20,
            max_object_bytes: 90 * MB,
            mean_result_bytes: MB / 5, // 200 KB: ~280 MB of post-warm-up query traffic
            max_result_bytes: 15 * MB,
            mean_update_bytes: 140_000, // scaled like the full config

            warmup_fraction: 0.3,
            warmup_scale: 0.1,
            n_hotspots: 4,
            hotspot_zipf: 1.35,
            drift_interval: 400,
            zero_tolerance_frac: 0.7,
            mean_tolerance: 200,
            n_stripes: 4,
            stripe_len: 120,
            n_blobs: 5,
            excursion_frac: 0.18,
            excursion_deg: (4.0, 14.0),
            mix: QueryMix::sdss_like(),
        }
    }

    /// Looks up a named preset, as accepted by the server and loadgen
    /// binaries' `--preset` flags.
    pub fn from_preset(name: &str) -> Result<Self, String> {
        match name {
            "small" => Ok(WorkloadConfig::small()),
            "paper" => Ok(WorkloadConfig::sdss_like()),
            other => Err(format!("unknown preset {other:?} (small|paper)")),
        }
    }

    /// Total events in the interleaved trace.
    pub fn n_events(&self) -> usize {
        self.n_queries + self.n_updates
    }

    /// The sky model every generator derived from this configuration
    /// uses — deterministic in `seed` and `n_blobs`.
    pub fn sky_model(&self) -> crate::sky::SkyModel {
        crate::sky::SkyModel::sdss_like(self.seed, self.n_blobs)
    }

    /// The adaptive HTM partition of [`Self::sky_model`]'s sky: split by
    /// solid angle into `target_objects` roughly equi-area leaves, then
    /// reweighted by data mass — exactly the partition
    /// [`crate::SyntheticSurvey::generate`] builds its catalog over.
    pub fn spatial_partition(&self) -> delta_htm::Partition {
        let sky = self.sky_model();
        let mut partition =
            delta_htm::Partition::adaptive(|t| t.solid_angle(), self.target_objects);
        partition.reweight(|t| sky.trixel_mass(t));
        partition
    }

    /// The region → object resolver over [`Self::spatial_partition`].
    ///
    /// This is the plumbing a wire server needs to compile SQL against a
    /// preset-served catalog: object ids produced here agree with the
    /// catalog [`crate::SyntheticSurvey::generate`] serves for the same
    /// configuration.
    pub fn spatial_mapper(&self) -> delta_storage::SpatialMapper {
        delta_storage::SpatialMapper::new(self.spatial_partition())
    }

    /// Checks internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_queries == 0 {
            return Err("n_queries must be positive".into());
        }
        if self.target_objects < 8 {
            return Err("target_objects must be at least 8 (HTM base)".into());
        }
        if self.min_object_bytes == 0 || self.min_object_bytes > self.max_object_bytes {
            return Err("object size bounds invalid".into());
        }
        if !(0.0..=1.0).contains(&self.warmup_fraction) {
            return Err("warmup_fraction must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.zero_tolerance_frac) {
            return Err("zero_tolerance_frac must be in [0,1]".into());
        }
        if self.mix.total() <= 0.0 {
            return Err("query mix weights must sum to a positive value".into());
        }
        if self.n_hotspots == 0 || self.hotspot_zipf <= 0.0 {
            return Err("hotspot parameters invalid".into());
        }
        if self.n_stripes == 0 || self.stripe_len == 0 {
            return Err("stripe parameters invalid".into());
        }
        if !(0.0..=1.0).contains(&self.excursion_frac)
            || self.excursion_deg.0 < 0.0
            || self.excursion_deg.0 > self.excursion_deg.1
        {
            return Err("excursion parameters invalid".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        WorkloadConfig::sdss_like().validate().unwrap();
        WorkloadConfig::small().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = WorkloadConfig::small();
        c.n_queries = 0;
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::small();
        c.target_objects = 4;
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::small();
        c.warmup_fraction = 1.5;
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::small();
        c.min_object_bytes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn preset_mapper_matches_generated_survey() {
        let cfg = WorkloadConfig::small();
        let survey = crate::SyntheticSurvey::generate(&cfg);
        let mapper = cfg.spatial_mapper();
        assert_eq!(mapper.partition().len(), survey.mapper.partition().len());
        assert_eq!(mapper.partition().len(), survey.catalog.len());
        for (ra, dec) in [(0.0, 0.0), (185.0, 15.3), (300.0, -45.0), (42.0, 80.0)] {
            let p = delta_htm::Vec3::from_radec_deg(ra, dec);
            assert_eq!(mapper.object_at(p), survey.mapper.object_at(p));
        }
    }

    #[test]
    fn sdss_scale_matches_paper() {
        use delta_storage::GB;
        let c = WorkloadConfig::sdss_like();
        assert_eq!(c.n_queries, 250_000);
        assert_eq!(c.n_updates, 250_000);
        assert_eq!(c.total_bytes, 800 * GB);
        // Post-warm-up query traffic ≈ 250k · (1-0.5) · 2.5 MB ≈ 312 GB.
        let post = (c.n_queries as f64) * (1.0 - c.warmup_fraction) * c.mean_result_bytes as f64;
        assert!(post > 250.0 * GB as f64 && post < 400.0 * GB as f64);
        // Update traffic sized so post-warm-up Replica/NoCache ≈ 0.75
        // (Fig. 7(b)'s relative ordering), accounting for the stripes'
        // ~1.8x dense-sky oversampling applied downstream.
        let upd = c.n_updates as f64 * c.mean_update_bytes as f64;
        assert!(upd > 200.0 * GB as f64 && upd < 400.0 * GB as f64);
    }
}
