//! Trace statistics and the Fig. 7(a) characterization series.
//!
//! Fig. 7(a) of the paper plots, for a sample of the event sequence, the
//! object-IDs touched by each query (rings) and update (crosses), showing
//! that query hotspots and update hotspots are distinct clusters that
//! drift over time. [`fig7a_series`] produces exactly that scatter;
//! [`TraceStats`] aggregates the per-object activity used to identify the
//! hotspots.

use crate::event::{Event, QueryKind};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Per-object activity aggregates over a trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of queries touching each object.
    pub query_touches: Vec<u64>,
    /// Total result bytes attributed to queries touching each object
    /// (full result counted once per touched object).
    pub query_bytes: Vec<u64>,
    /// Number of updates hitting each object.
    pub update_counts: Vec<u64>,
    /// Total update bytes per object.
    pub update_bytes: Vec<u64>,
}

impl TraceStats {
    /// Computes statistics for a trace over `n_objects` objects.
    pub fn compute(trace: &Trace, n_objects: usize) -> Self {
        let mut s = TraceStats {
            query_touches: vec![0; n_objects],
            query_bytes: vec![0; n_objects],
            update_counts: vec![0; n_objects],
            update_bytes: vec![0; n_objects],
        };
        for e in trace.iter() {
            match e {
                Event::Query(q) => {
                    for o in &q.objects {
                        s.query_touches[o.index()] += 1;
                        s.query_bytes[o.index()] += q.result_bytes;
                    }
                }
                Event::Update(u) => {
                    s.update_counts[u.object.index()] += 1;
                    s.update_bytes[u.object.index()] += u.bytes;
                }
            }
        }
        s
    }

    /// The `k` most-queried object ids, by touch count, descending.
    pub fn top_query_objects(&self, k: usize) -> Vec<usize> {
        top_k(&self.query_touches, k)
    }

    /// The `k` most-updated object ids, by update count, descending.
    pub fn top_update_objects(&self, k: usize) -> Vec<usize> {
        top_k(&self.update_counts, k)
    }

    /// Jaccard overlap between the top-k query and update hotspot sets —
    /// low overlap is what makes decoupling profitable.
    pub fn hotspot_overlap(&self, k: usize) -> f64 {
        use std::collections::HashSet;
        let q: HashSet<_> = self.top_query_objects(k).into_iter().collect();
        let u: HashSet<_> = self.top_update_objects(k).into_iter().collect();
        if q.is_empty() && u.is_empty() {
            return 0.0;
        }
        q.intersection(&u).count() as f64 / q.union(&u).count() as f64
    }
}

fn top_k(counts: &[u64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..counts.len()).collect();
    idx.sort_unstable_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// One point of the Fig. 7(a) scatter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Event sequence number (x-axis).
    pub seq: u64,
    /// Object id (y-axis).
    pub object: u32,
    /// True for update events (crosses), false for query touches (rings).
    pub is_update: bool,
}

impl serde_json::ToJson for ScatterPoint {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("seq".into(), self.seq.to_json()),
            ("object".into(), self.object.to_json()),
            ("is_update".into(), self.is_update.to_json()),
        ])
    }
}

/// Produces the Fig. 7(a) scatter, keeping one query in `stride` and one
/// update in `stride` (sampled per stream, so a regular query/update
/// interleave cannot alias one stream away), matching the paper's "sample
/// of the updates and queries".
pub fn fig7a_series(trace: &Trace, stride: usize) -> Vec<ScatterPoint> {
    let stride = stride.max(1);
    let mut out = Vec::new();
    let (mut qi, mut ui) = (0usize, 0usize);
    for e in trace.iter() {
        match e {
            Event::Query(q) => {
                if qi % stride == 0 {
                    for o in &q.objects {
                        out.push(ScatterPoint {
                            seq: q.seq,
                            object: o.0,
                            is_update: false,
                        });
                    }
                }
                qi += 1;
            }
            Event::Update(u) => {
                if ui % stride == 0 {
                    out.push(ScatterPoint {
                        seq: u.seq,
                        object: u.object.0,
                        is_update: true,
                    });
                }
                ui += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::generator::SyntheticSurvey;

    #[test]
    fn stats_count_correctly() {
        use crate::event::{QueryEvent, QueryKind, UpdateEvent};
        use delta_storage::ObjectId;
        let trace = Trace::new(vec![
            Event::Query(QueryEvent {
                seq: 0,
                objects: vec![ObjectId(0), ObjectId(1)],
                result_bytes: 10,
                tolerance: 0,
                kind: QueryKind::Cone,
            }),
            Event::Update(UpdateEvent {
                seq: 1,
                object: ObjectId(1),
                bytes: 5,
            }),
            Event::Update(UpdateEvent {
                seq: 2,
                object: ObjectId(1),
                bytes: 5,
            }),
        ]);
        let s = TraceStats::compute(&trace, 3);
        assert_eq!(s.query_touches, vec![1, 1, 0]);
        assert_eq!(s.query_bytes, vec![10, 10, 0]);
        assert_eq!(s.update_counts, vec![0, 2, 0]);
        assert_eq!(s.update_bytes, vec![0, 10, 0]);
        assert_eq!(s.top_update_objects(1), vec![1]);
    }

    #[test]
    fn hotspots_mostly_disjoint_on_synthetic_survey() {
        // The paper's observation: query hotspots (22-24, 62-64) and
        // update hotspots (11-13, 30-32) are different objects. Our
        // generator must reproduce that separation.
        // At the paper's 68-object granularity (the small default's 16
        // objects are too coarse for hotspots to be distinguishable).
        let mut cfg = WorkloadConfig::small();
        cfg.target_objects = 68;
        let s = SyntheticSurvey::generate(&cfg);
        let stats = TraceStats::compute(&s.trace, s.catalog.len());
        let overlap = stats.hotspot_overlap(6);
        assert!(
            overlap < 0.5,
            "query/update hotspot overlap {overlap} too high for decoupling to matter"
        );
    }

    #[test]
    fn fig7a_series_has_both_marks() {
        let s = SyntheticSurvey::generate(&WorkloadConfig::small());
        let pts = fig7a_series(&s.trace, 10);
        assert!(pts.iter().any(|p| p.is_update));
        assert!(pts.iter().any(|p| !p.is_update));
        // Strided output is much smaller than the full touch list.
        let full = fig7a_series(&s.trace, 1);
        assert!(pts.len() < full.len());
        // All object ids valid.
        assert!(pts.iter().all(|p| (p.object as usize) < s.catalog.len()));
    }
}
/// Distribution summary of the query-shape mix and result sizes — the
/// §6.1 trace properties ("several kinds of queries … no single query
/// template dominates"; heavy-tailed result sizes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MixStats {
    /// Query counts per [`QueryKind`], in enum order
    /// (cone, range, self-join, aggregate, scan, selection).
    pub kind_counts: [u64; 6],
    /// Result-size percentiles in bytes: p50, p90, p99 and max.
    pub result_p50: u64,
    /// 90th-percentile result size.
    pub result_p90: u64,
    /// 99th-percentile result size.
    pub result_p99: u64,
    /// Largest single result.
    pub result_max: u64,
    /// Mean result size.
    pub result_mean: f64,
    /// Mean number of objects per query — the B(q) fan-out.
    pub mean_fanout: f64,
    /// Fraction of queries demanding full currency (t(q) = 0).
    pub zero_tolerance_frac: f64,
}

impl MixStats {
    /// Computes the mix summary of a trace.
    pub fn compute(trace: &Trace) -> Self {
        let mut kind_counts = [0u64; 6];
        let mut sizes: Vec<u64> = Vec::new();
        let mut fanout = 0u64;
        let mut zero_tol = 0u64;
        for e in trace.iter() {
            if let Event::Query(q) = e {
                kind_counts[kind_index(q.kind)] += 1;
                sizes.push(q.result_bytes);
                fanout += q.objects.len() as u64;
                if q.tolerance == 0 {
                    zero_tol += 1;
                }
            }
        }
        if sizes.is_empty() {
            return MixStats {
                kind_counts,
                result_p50: 0,
                result_p90: 0,
                result_p99: 0,
                result_max: 0,
                result_mean: 0.0,
                mean_fanout: 0.0,
                zero_tolerance_frac: 0.0,
            };
        }
        sizes.sort_unstable();
        let n = sizes.len();
        let pct = |p: f64| sizes[((p * n as f64) as usize).min(n - 1)];
        MixStats {
            kind_counts,
            result_p50: pct(0.50),
            result_p90: pct(0.90),
            result_p99: pct(0.99),
            result_max: *sizes.last().expect("non-empty"),
            result_mean: sizes.iter().sum::<u64>() as f64 / n as f64,
            mean_fanout: fanout as f64 / n as f64,
            zero_tolerance_frac: zero_tol as f64 / n as f64,
        }
    }

    /// Whether any single query kind holds more than `frac` of the
    /// queries — §6.1 says no template dominates the SkyServer trace.
    pub fn dominated_by_one_kind(&self, frac: f64) -> bool {
        let total: u64 = self.kind_counts.iter().sum();
        total > 0
            && self
                .kind_counts
                .iter()
                .any(|&c| c as f64 > frac * total as f64)
    }

    /// Heavy-tail indicator: p99 / p50 of the result-size distribution.
    pub fn tail_ratio(&self) -> f64 {
        if self.result_p50 == 0 {
            return 0.0;
        }
        self.result_p99 as f64 / self.result_p50 as f64
    }
}

fn kind_index(k: QueryKind) -> usize {
    match k {
        QueryKind::Cone => 0,
        QueryKind::Range => 1,
        QueryKind::SelfJoin => 2,
        QueryKind::Aggregate => 3,
        QueryKind::Scan => 4,
        QueryKind::Selection => 5,
    }
}

#[cfg(test)]
mod mix_tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::generator::SyntheticSurvey;

    #[test]
    fn mix_reflects_sdss_properties() {
        let mut cfg = WorkloadConfig::small();
        cfg.n_queries = 3_000;
        cfg.n_updates = 0;
        let s = SyntheticSurvey::generate(&cfg);
        let m = MixStats::compute(&s.trace);
        assert_eq!(m.kind_counts.iter().sum::<u64>(), 3_000);
        assert!(
            !m.dominated_by_one_kind(0.8),
            "no single template dominates (§6.1): {:?}",
            m.kind_counts
        );
        assert!(
            m.tail_ratio() > 5.0,
            "heavy tail expected, got {}",
            m.tail_ratio()
        );
        assert!(m.mean_fanout >= 1.0);
        assert!(
            (m.zero_tolerance_frac - cfg.zero_tolerance_frac).abs() < 0.1,
            "zero-tolerance fraction {}",
            m.zero_tolerance_frac
        );
        assert!(m.result_p50 <= m.result_p90 && m.result_p90 <= m.result_p99);
        assert!(m.result_p99 <= m.result_max);
        assert!(m.result_mean > 0.0);
    }

    #[test]
    fn empty_trace_mix_is_zeroed() {
        let m = MixStats::compute(&Trace::default());
        assert_eq!(m.kind_counts, [0; 6]);
        assert_eq!(m.result_max, 0);
        assert!(!m.dominated_by_one_kind(0.5));
        assert_eq!(m.tail_ratio(), 0.0);
    }
}
