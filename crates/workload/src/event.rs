//! Trace events: the interleaved query/update sequence of the paper's §6.
//!
//! The paper's experimental unit is a *query-update event sequence* —
//! 250,000 queries (a two-month SkyServer trace) interleaved with 250,000
//! synthetic updates. Event sequence numbers double as the time axis, so a
//! tolerance-for-staleness `t(q)` is expressed in event ticks.

use delta_storage::ObjectId;
use serde::{Deserialize, Serialize};

/// The SQL shape of a query, as classified in §6.1 ("range queries,
/// spatial self-join queries, simple selection queries, as well as
/// aggregation queries").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// Cone search around a position.
    Cone,
    /// RA/Dec rectangle range scan.
    Range,
    /// Spatial self-join (neighbourhood pairs).
    SelfJoin,
    /// Aggregation over a wide region.
    Aggregate,
    /// Survey-style scan along a great-circle stripe.
    Scan,
    /// Point selection on a single object.
    Selection,
}

/// A read-only user query arriving at the cache.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryEvent {
    /// Global event sequence number (the time axis).
    pub seq: u64,
    /// The set of data objects the query accesses — the paper's `B(q)`.
    pub objects: Vec<ObjectId>,
    /// Size of the query's result — its shipping cost ν(q).
    pub result_bytes: u64,
    /// Tolerance for staleness `t(q)` in event ticks (0 = must be fully
    /// current).
    pub tolerance: u64,
    /// Query shape (for workload statistics; policies ignore it).
    pub kind: QueryKind,
}

/// A data update arriving at the repository.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// Global event sequence number.
    pub seq: u64,
    /// The single object the update affects — the paper's `o(u)`.
    pub object: ObjectId,
    /// Size of the update's content — its shipping cost ν(u).
    pub bytes: u64,
}

/// One event of the interleaved trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A user query at the cache.
    Query(QueryEvent),
    /// A repository update.
    Update(UpdateEvent),
}

impl Event {
    /// Global sequence number of the event.
    pub fn seq(&self) -> u64 {
        match self {
            Event::Query(q) => q.seq,
            Event::Update(u) => u.seq,
        }
    }

    /// Whether this is a query event.
    pub fn is_query(&self) -> bool {
        matches!(self, Event::Query(_))
    }

    /// The network bytes this event would cost if shipped in isolation.
    pub fn ship_bytes(&self) -> u64 {
        match self {
            Event::Query(q) => q.result_bytes,
            Event::Update(u) => u.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let q = Event::Query(QueryEvent {
            seq: 5,
            objects: vec![ObjectId(1), ObjectId(2)],
            result_bytes: 100,
            tolerance: 0,
            kind: QueryKind::Cone,
        });
        let u = Event::Update(UpdateEvent { seq: 6, object: ObjectId(1), bytes: 9 });
        assert_eq!(q.seq(), 5);
        assert!(q.is_query());
        assert_eq!(q.ship_bytes(), 100);
        assert_eq!(u.seq(), 6);
        assert!(!u.is_query());
        assert_eq!(u.ship_bytes(), 9);
    }
}
