//! Trace events: the interleaved query/update sequence of the paper's §6.
//!
//! The paper's experimental unit is a *query-update event sequence* —
//! 250,000 queries (a two-month SkyServer trace) interleaved with 250,000
//! synthetic updates. Event sequence numbers double as the time axis, so a
//! tolerance-for-staleness `t(q)` is expressed in event ticks.

use delta_storage::ObjectId;
use serde::{Deserialize, Serialize};

/// The SQL shape of a query, as classified in §6.1 ("range queries,
/// spatial self-join queries, simple selection queries, as well as
/// aggregation queries").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// Cone search around a position.
    Cone,
    /// RA/Dec rectangle range scan.
    Range,
    /// Spatial self-join (neighbourhood pairs).
    SelfJoin,
    /// Aggregation over a wide region.
    Aggregate,
    /// Survey-style scan along a great-circle stripe.
    Scan,
    /// Point selection on a single object.
    Selection,
}

/// A read-only user query arriving at the cache.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryEvent {
    /// Global event sequence number (the time axis).
    pub seq: u64,
    /// The set of data objects the query accesses — the paper's `B(q)`.
    pub objects: Vec<ObjectId>,
    /// Size of the query's result — its shipping cost ν(q).
    pub result_bytes: u64,
    /// Tolerance for staleness `t(q)` in event ticks (0 = must be fully
    /// current).
    pub tolerance: u64,
    /// Query shape (for workload statistics; policies ignore it).
    pub kind: QueryKind,
}

/// A data update arriving at the repository.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// Global event sequence number.
    pub seq: u64,
    /// The single object the update affects — the paper's `o(u)`.
    pub object: ObjectId,
    /// Size of the update's content — its shipping cost ν(u).
    pub bytes: u64,
}

/// One event of the interleaved trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A user query at the cache.
    Query(QueryEvent),
    /// A repository update.
    Update(UpdateEvent),
}

impl Event {
    /// Global sequence number of the event.
    pub fn seq(&self) -> u64 {
        match self {
            Event::Query(q) => q.seq,
            Event::Update(u) => u.seq,
        }
    }

    /// Whether this is a query event.
    pub fn is_query(&self) -> bool {
        matches!(self, Event::Query(_))
    }

    /// The network bytes this event would cost if shipped in isolation.
    pub fn ship_bytes(&self) -> u64 {
        match self {
            Event::Query(q) => q.result_bytes,
            Event::Update(u) => u.bytes,
        }
    }
}

mod json {
    //! Hand-written JSON codecs (the vendored serde is derive-free),
    //! matching serde's shape: newtype ids as bare numbers, unit enum
    //! variants as strings, data-carrying variants externally tagged.

    use super::{Event, QueryEvent, QueryKind, UpdateEvent};
    use delta_storage::ObjectId;
    use serde_json::{Error, FromJson, ToJson, Value};

    fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
        v.get(name)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`")))
    }

    impl ToJson for QueryKind {
        fn to_json(&self) -> Value {
            let name = match self {
                QueryKind::Cone => "Cone",
                QueryKind::Range => "Range",
                QueryKind::SelfJoin => "SelfJoin",
                QueryKind::Aggregate => "Aggregate",
                QueryKind::Scan => "Scan",
                QueryKind::Selection => "Selection",
            };
            Value::String(name.to_string())
        }
    }

    impl FromJson for QueryKind {
        fn from_json(v: &Value) -> Result<Self, Error> {
            match v.as_str() {
                Some("Cone") => Ok(QueryKind::Cone),
                Some("Range") => Ok(QueryKind::Range),
                Some("SelfJoin") => Ok(QueryKind::SelfJoin),
                Some("Aggregate") => Ok(QueryKind::Aggregate),
                Some("Scan") => Ok(QueryKind::Scan),
                Some("Selection") => Ok(QueryKind::Selection),
                _ => Err(Error::msg("unknown QueryKind")),
            }
        }
    }

    impl ToJson for QueryEvent {
        fn to_json(&self) -> Value {
            Value::Object(vec![
                ("seq".into(), self.seq.to_json()),
                (
                    "objects".into(),
                    Value::Array(self.objects.iter().map(|o| o.0.to_json()).collect()),
                ),
                ("result_bytes".into(), self.result_bytes.to_json()),
                ("tolerance".into(), self.tolerance.to_json()),
                ("kind".into(), self.kind.to_json()),
            ])
        }
    }

    impl FromJson for QueryEvent {
        fn from_json(v: &Value) -> Result<Self, Error> {
            Ok(QueryEvent {
                seq: u64::from_json(field(v, "seq")?)?,
                objects: Vec::<u32>::from_json(field(v, "objects")?)?
                    .into_iter()
                    .map(ObjectId)
                    .collect(),
                result_bytes: u64::from_json(field(v, "result_bytes")?)?,
                tolerance: u64::from_json(field(v, "tolerance")?)?,
                kind: QueryKind::from_json(field(v, "kind")?)?,
            })
        }
    }

    impl ToJson for UpdateEvent {
        fn to_json(&self) -> Value {
            Value::Object(vec![
                ("seq".into(), self.seq.to_json()),
                ("object".into(), self.object.0.to_json()),
                ("bytes".into(), self.bytes.to_json()),
            ])
        }
    }

    impl FromJson for UpdateEvent {
        fn from_json(v: &Value) -> Result<Self, Error> {
            Ok(UpdateEvent {
                seq: u64::from_json(field(v, "seq")?)?,
                object: ObjectId(u32::from_json(field(v, "object")?)?),
                bytes: u64::from_json(field(v, "bytes")?)?,
            })
        }
    }

    impl ToJson for Event {
        fn to_json(&self) -> Value {
            match self {
                Event::Query(q) => Value::Object(vec![("Query".into(), q.to_json())]),
                Event::Update(u) => Value::Object(vec![("Update".into(), u.to_json())]),
            }
        }
    }

    impl FromJson for Event {
        fn from_json(v: &Value) -> Result<Self, Error> {
            if let Some(q) = v.get("Query") {
                Ok(Event::Query(QueryEvent::from_json(q)?))
            } else if let Some(u) = v.get("Update") {
                Ok(Event::Update(UpdateEvent::from_json(u)?))
            } else {
                Err(Error::msg("expected externally tagged Event"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let q = Event::Query(QueryEvent {
            seq: 5,
            objects: vec![ObjectId(1), ObjectId(2)],
            result_bytes: 100,
            tolerance: 0,
            kind: QueryKind::Cone,
        });
        let u = Event::Update(UpdateEvent {
            seq: 6,
            object: ObjectId(1),
            bytes: 9,
        });
        assert_eq!(q.seq(), 5);
        assert!(q.is_query());
        assert_eq!(q.ship_bytes(), 100);
        assert_eq!(u.seq(), 6);
        assert!(!u.is_query());
        assert_eq!(u.ship_bytes(), 9);
    }
}
