//! # delta-workload — SDSS-like astronomy workload reconstruction
//!
//! The paper evaluates Delta on a real two-month SkyServer query trace and
//! an astronomer-consulted synthetic update trace, neither of which is
//! publicly available. This crate rebuilds both from their *published
//! properties* (§6.1, Fig. 7(a)):
//!
//! * [`SkyModel`] — inhomogeneous sky density (band + over-density blobs)
//!   giving the 50 MB–90 GB object-size spread;
//! * [`QueryGenerator`] — drifting Zipf hotspots, a mixed bag of query
//!   shapes (cone/range/self-join/aggregate/scan/selection), Pareto
//!   heavy-tailed result sizes, a cheap warm-up prefix, and per-query
//!   staleness tolerances;
//! * [`UpdateGenerator`] — great-circle telescope stripes producing
//!   spatially-clustered updates sized by object density;
//! * [`SyntheticSurvey`] — the one-call builder (sky → HTM partition →
//!   catalog → interleaved trace), fully deterministic in the seed;
//! * [`trace`] — a self-contained JSONL trace format;
//! * [`stats`] — per-object activity, hotspot extraction and the
//!   Fig. 7(a) scatter series.
//!
//! ```
//! use delta_workload::{SyntheticSurvey, WorkloadConfig};
//!
//! let mut cfg = WorkloadConfig::small();
//! cfg.n_queries = 100;
//! cfg.n_updates = 100;
//! let survey = SyntheticSurvey::generate(&cfg);
//! assert_eq!(survey.trace.len(), 200);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod event;
pub mod generator;
pub mod querygen;
pub mod sky;
pub mod stats;
pub mod trace;
pub mod updategen;

pub use config::{QueryMix, WorkloadConfig};
pub use event::{Event, QueryEvent, QueryKind, UpdateEvent};
pub use generator::SyntheticSurvey;
pub use querygen::QueryGenerator;
pub use sky::SkyModel;
pub use stats::{fig7a_series, MixStats, ScatterPoint, TraceStats};
pub use trace::{read_jsonl, read_jsonl_with_header, write_jsonl, Trace, TraceHeader};
pub use updategen::UpdateGenerator;
