//! Query-trace reconstruction.
//!
//! The real input of the paper's evaluation is a 2-month SkyServer query
//! trace. Its published properties (§6.1, Fig. 7(a); also the SkyServer
//! traffic report \[35\]) are what we reproduce:
//!
//! * queries cluster around *hotspots* in object space, and the hotspots
//!   **drift** over time ("queries evolve and cluster around different
//!   objects over time", "real-world queries do not follow any clear
//!   patterns");
//! * no single query template dominates — the mix spans cone, range,
//!   self-join, aggregation, scan and selection shapes;
//! * result sizes are heavy-tailed (the example query q3 ships 15 GB while
//!   the mean is ~1 MB);
//! * the trace opens with a long warm-up of cheap queries;
//! * most queries demand full currency, some tolerate staleness (t(q)).

use crate::config::WorkloadConfig;
use crate::event::{QueryEvent, QueryKind};
use crate::sky::SkyModel;
use delta_htm::{Region, Vec3};
use delta_storage::SpatialMapper;
use rand::rngs::StdRng;
use rand::RngExt;
use rand_distr::{Distribution, LogNormal, Pareto, Zipf};

/// Stateful generator for the query half of the trace.
pub struct QueryGenerator<'a> {
    cfg: &'a WorkloadConfig,
    mapper: &'a SpatialMapper,
    sky: &'a SkyModel,
    hotspots: Vec<Vec3>,
    zipf: Zipf<f64>,
    pareto: Pareto<f64>,
    radius_dist: LogNormal<f64>,
    emitted: usize,
}

/// Picks a hotspot position biased toward *sparse* sky: sample a few
/// uniform candidates and keep the lowest-density one. This reproduces
/// the separation the paper observes in Fig. 7(a) — query hotspots
/// (their object-IDs 22–24, 62–64) sit away from the data-dense,
/// update-heavy survey stripes (11–13, 30–32): the community's follow-up
/// targets are specific fields, not the bulk-catalog regions the
/// telescope is currently pouring data into.
fn sparse_biased_direction(sky: &SkyModel, rng: &mut StdRng) -> Vec3 {
    let mut best = random_direction(rng);
    let mut best_d = sky.density_at(best);
    for _ in 0..5 {
        let cand = random_direction(rng);
        let d = sky.density_at(cand);
        if d < best_d {
            best = cand;
            best_d = d;
        }
    }
    best
}

impl<'a> QueryGenerator<'a> {
    /// Creates a generator with hotspots seeded from the RNG.
    pub fn new(
        cfg: &'a WorkloadConfig,
        mapper: &'a SpatialMapper,
        sky: &'a SkyModel,
        rng: &mut StdRng,
    ) -> Self {
        let hotspots = (0..cfg.n_hotspots)
            .map(|_| sparse_biased_direction(sky, rng))
            .collect();
        // Pareto with shape a has mean a·x_m/(a-1); pick a = 1.6 for a
        // pronounced but integrable tail and solve x_m for the target mean.
        let shape = 1.6;
        let x_m = cfg.mean_result_bytes as f64 * (shape - 1.0) / shape;
        QueryGenerator {
            cfg,
            mapper,
            sky,
            hotspots,
            zipf: Zipf::new(cfg.n_hotspots as f64, cfg.hotspot_zipf).expect("valid zipf"),
            pareto: Pareto::new(x_m.max(1.0), shape).expect("valid pareto"),
            radius_dist: LogNormal::new((0.6f64).ln(), 0.6).expect("valid lognormal"),
            emitted: 0,
        }
    }

    /// Current hotspot centers (exposed for tests/statistics).
    pub fn hotspots(&self) -> &[Vec3] {
        &self.hotspots
    }

    /// Generates the next query at global sequence `seq`; `warmup` scales
    /// the result size down during the cheap prefix.
    pub fn next_query(&mut self, seq: u64, warmup: bool, rng: &mut StdRng) -> QueryEvent {
        self.maybe_drift(rng);
        self.emitted += 1;

        let kind = self.pick_kind(rng);
        let center = self.jittered_hotspot(rng);
        let region = self.region_for(kind, center, rng);
        let mut objects = self.mapper.objects_for(&region);
        if objects.is_empty() {
            // Conservative covers never return empty for valid regions,
            // but guard anyway: fall back to the containing object.
            objects.push(self.mapper.object_at(center));
        }

        let result_bytes = self.result_bytes(kind, warmup, rng);
        let tolerance = if rng.random_bool(self.cfg.zero_tolerance_frac) {
            0
        } else {
            // Exponential with the configured mean, via inverse CDF.
            let u: f64 = rng.random_range(1e-12..1.0);
            (-(u.ln()) * self.cfg.mean_tolerance as f64) as u64
        };

        QueryEvent {
            seq,
            objects,
            result_bytes,
            tolerance,
            kind,
        }
    }

    /// Workload evolution: every `drift_interval` queries one hotspot
    /// jumps to a fresh random position.
    fn maybe_drift(&mut self, rng: &mut StdRng) {
        if self.cfg.drift_interval > 0
            && self.emitted > 0
            && self.emitted.is_multiple_of(self.cfg.drift_interval)
        {
            let k = rng.random_range(0..self.hotspots.len());
            self.hotspots[k] = sparse_biased_direction(self.sky, rng);
        }
    }

    fn pick_kind(&self, rng: &mut StdRng) -> QueryKind {
        let m = &self.cfg.mix;
        let mut x = rng.random_range(0.0..m.total());
        for (w, k) in [
            (m.cone, QueryKind::Cone),
            (m.range, QueryKind::Range),
            (m.self_join, QueryKind::SelfJoin),
            (m.aggregate, QueryKind::Aggregate),
            (m.scan, QueryKind::Scan),
        ] {
            if x < w {
                return k;
            }
            x -= w;
        }
        QueryKind::Selection
    }

    fn jittered_hotspot(&mut self, rng: &mut StdRng) -> Vec3 {
        let idx = (self.zipf.sample(rng) as usize - 1).min(self.hotspots.len() - 1);
        let h = self.hotspots[idx];
        let (ra, dec) = h.to_radec_deg();
        if rng.random_bool(self.cfg.excursion_frac) {
            // Excursion: probe data "close to, or related to, rather than
            // the exact same as" the hot data (§6.2, citing \[24\]) — a
            // moderate step away from the hotspot, in a random direction.
            let (lo, hi) = self.cfg.excursion_deg;
            let dist: f64 = rng.random_range(lo..hi.max(lo + 1e-9));
            let ang: f64 = rng.random_range(0.0..std::f64::consts::TAU);
            let dec_scale = dec.to_radians().cos().max(0.05);
            return Vec3::from_radec_deg(
                ra + dist * ang.cos() / dec_scale,
                (dec + dist * ang.sin()).clamp(-89.0, 89.0),
            );
        }
        // Gaussian jitter of a few degrees keeps queries clustered but not
        // identical.
        let jra: f64 = rng.random_range(-3.0..3.0);
        let jdec: f64 = rng.random_range(-3.0..3.0);
        Vec3::from_radec_deg(ra + jra, (dec + jdec).clamp(-89.0, 89.0))
    }

    fn region_for(&mut self, kind: QueryKind, center: Vec3, rng: &mut StdRng) -> Region {
        let (ra, dec) = center.to_radec_deg();
        match kind {
            QueryKind::Cone => {
                let r = self.radius_dist.sample(rng).clamp(0.05, 8.0);
                Region::cone_deg(ra, dec, r)
            }
            QueryKind::SelfJoin => {
                // Neighbourhood join: a cone slightly wider than a typical
                // match radius.
                let r = self.radius_dist.sample(rng).clamp(0.2, 10.0) * 1.5;
                Region::cone_deg(ra, dec, r)
            }
            QueryKind::Range => {
                let dra: f64 = rng.random_range(0.5..6.0);
                let ddec: f64 = rng.random_range(0.5..6.0);
                Region::RaDecRect {
                    ra_min: (ra - dra).rem_euclid(360.0),
                    ra_max: (ra + dra).rem_euclid(360.0),
                    dec_min: (dec - ddec).max(-90.0),
                    dec_max: (dec + ddec).min(90.0),
                }
            }
            QueryKind::Aggregate => {
                let r = rng.random_range(6.0..20.0);
                Region::cone_deg(ra, dec, r)
            }
            QueryKind::Scan => Region::GreatCircleBand {
                pole: random_direction(rng),
                half_width_rad: rng.random_range(0.004..0.02),
            },
            QueryKind::Selection => Region::cone_deg(ra, dec, 0.02),
        }
    }

    fn result_bytes(&mut self, kind: QueryKind, warmup: bool, rng: &mut StdRng) -> u64 {
        let mult = match kind {
            QueryKind::Selection => 0.05,
            QueryKind::Cone => 0.6,
            QueryKind::Range => 1.0,
            QueryKind::SelfJoin => 1.6,
            QueryKind::Aggregate => 2.5,
            QueryKind::Scan => 4.0,
        };
        let mut b = self.pareto.sample(rng) * mult;
        if warmup {
            b *= self.cfg.warmup_scale;
        }
        (b as u64).clamp(64, self.cfg.max_result_bytes)
    }
}

/// Uniformly random unit vector (area-uniform on the sphere).
pub(crate) fn random_direction(rng: &mut StdRng) -> Vec3 {
    let z: f64 = rng.random_range(-1.0..1.0);
    let phi: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let r = (1.0 - z * z).sqrt();
    Vec3::new(r * phi.cos(), r * phi.sin(), z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_htm::Partition;
    use rand::SeedableRng;

    fn setup() -> (WorkloadConfig, SpatialMapper, SkyModel) {
        let cfg = WorkloadConfig::small();
        let sky = SkyModel::sdss_like(cfg.seed, cfg.n_blobs);
        let mut part = Partition::adaptive(|t| t.solid_angle(), cfg.target_objects);
        part.reweight(|t| sky.trixel_mass(t));
        (cfg, SpatialMapper::new(part), sky)
    }

    #[test]
    fn queries_have_objects_and_bounded_results() {
        let (cfg, mapper, sky) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = QueryGenerator::new(&cfg, &mapper, &sky, &mut rng);
        for seq in 0..500 {
            let q = g.next_query(seq, false, &mut rng);
            assert!(!q.objects.is_empty());
            assert!(q.result_bytes >= 64 && q.result_bytes <= cfg.max_result_bytes);
            assert!(
                q.objects.windows(2).all(|w| w[0] < w[1]),
                "objects sorted/deduped"
            );
        }
    }

    #[test]
    fn warmup_queries_are_cheap() {
        let (cfg, mapper, sky) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = QueryGenerator::new(&cfg, &mapper, &sky, &mut rng);
        let warm: u64 = (0..300)
            .map(|s| g.next_query(s, true, &mut rng).result_bytes)
            .sum();
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = QueryGenerator::new(&cfg, &mapper, &sky, &mut rng);
        let hot: u64 = (0..300)
            .map(|s| g.next_query(s, false, &mut rng).result_bytes)
            .sum();
        assert!(
            (warm as f64) < (hot as f64) * 0.4,
            "warm-up total {warm} not much cheaper than {hot}"
        );
    }

    #[test]
    fn hotspots_drift_over_time() {
        let (mut cfg, mapper, sky) = setup();
        cfg.drift_interval = 50;
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = QueryGenerator::new(&cfg, &mapper, &sky, &mut rng);
        let before = g.hotspots().to_vec();
        for s in 0..500 {
            let _ = g.next_query(s, false, &mut rng);
        }
        let after = g.hotspots();
        let moved = before
            .iter()
            .zip(after)
            .filter(|(a, b)| a.angular_distance(**b) > 1e-9)
            .count();
        assert!(moved >= 2, "only {moved} hotspots moved");
    }

    #[test]
    fn queries_cluster_on_hot_objects() {
        // With no drift, the touch distribution across objects must be far
        // from uniform.
        let (mut cfg, mapper, sky) = setup();
        cfg.drift_interval = 0;
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = QueryGenerator::new(&cfg, &mapper, &sky, &mut rng);
        let n = mapper.partition().len();
        let mut touches = vec![0u64; n];
        for s in 0..2000 {
            for o in g.next_query(s, false, &mut rng).objects {
                touches[o.index()] += 1;
            }
        }
        let total: u64 = touches.iter().sum();
        let mut sorted = touches.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top5: u64 = sorted.iter().take(5).sum();
        assert!(
            top5 as f64 > 0.3 * total as f64,
            "top-5 objects hold only {top5}/{total} touches — no hotspots"
        );
    }

    #[test]
    fn tolerance_distribution_matches_config() {
        let (cfg, mapper, sky) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = QueryGenerator::new(&cfg, &mapper, &sky, &mut rng);
        let n = 3000;
        let zeros = (0..n)
            .filter(|&s| g.next_query(s, false, &mut rng).tolerance == 0)
            .count();
        let frac = zeros as f64 / n as f64;
        assert!(
            (frac - cfg.zero_tolerance_frac).abs() < 0.05,
            "zero-tolerance fraction {frac} vs configured {}",
            cfg.zero_tolerance_frac
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (cfg, mapper, sky) = setup();
        let gen_series = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut g = QueryGenerator::new(&cfg, &mapper, &sky, &mut rng);
            (0..100)
                .map(|s| g.next_query(s, false, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_series(), gen_series());
    }
}
