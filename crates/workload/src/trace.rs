//! Traces: the interleaved event sequence, with a self-contained JSONL
//! on-disk format.
//!
//! A trace file opens with a header line describing the object catalog
//! (sizes in bytes), followed by one JSON event per line. Files written by
//! the generator can be replayed byte-identically by the bench harness, so
//! every figure is regenerable from an artifact.

use crate::event::Event;
use delta_storage::ObjectCatalog;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// The interleaved query/update event sequence.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Events ordered by sequence number.
    pub events: Vec<Event>,
}

impl Trace {
    /// Wraps an event vector (must be seq-ordered).
    ///
    /// # Panics
    /// Panics if events are not ordered by `seq`.
    pub fn new(events: Vec<Event>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].seq() <= w[1].seq()),
            "trace events must be seq-ordered"
        );
        Self { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events in order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of query events.
    pub fn n_queries(&self) -> usize {
        self.events.iter().filter(|e| e.is_query()).count()
    }

    /// Number of update events.
    pub fn n_updates(&self) -> usize {
        self.events.len() - self.n_queries()
    }

    /// Total result bytes over all queries (the NoCache yardstick's cost).
    pub fn total_query_bytes(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.is_query())
            .map(Event::ship_bytes)
            .sum()
    }

    /// Total update bytes (the Replica yardstick's cost).
    pub fn total_update_bytes(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| !e.is_query())
            .map(Event::ship_bytes)
            .sum()
    }

    /// A sub-trace with only the first `n` events (for quick experiments).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            events: self.events[..n.min(self.events.len())].to_vec(),
        }
    }
}

/// Header line of a trace file: everything needed to rebuild the catalog.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Format version.
    pub version: u32,
    /// Object sizes in bytes, by object id.
    pub object_sizes: Vec<u64>,
    /// Free-form description (config echo).
    pub description: String,
}

impl serde_json::ToJson for TraceHeader {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("version".into(), self.version.to_json()),
            ("object_sizes".into(), self.object_sizes.to_json()),
            ("description".into(), self.description.to_json()),
        ])
    }
}

impl serde_json::FromJson for TraceHeader {
    fn from_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde_json::Error::msg(format!("missing field `{name}`")))
        };
        Ok(TraceHeader {
            version: u32::from_json(field("version")?)?,
            object_sizes: Vec::<u64>::from_json(field("object_sizes")?)?,
            description: String::from_json(field("description")?)?,
        })
    }
}

/// Current trace-file format version.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Writes `(catalog, trace)` as JSONL: header line, then one event per
/// line.
pub fn write_jsonl(
    path: &Path,
    catalog: &ObjectCatalog,
    trace: &Trace,
    description: &str,
) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    let header = TraceHeader {
        version: TRACE_FORMAT_VERSION,
        object_sizes: catalog.iter().map(|o| o.size_bytes).collect(),
        description: description.to_string(),
    };
    serde_json::to_writer(&mut w, &header)?;
    w.write_all(b"\n")?;
    for e in &trace.events {
        serde_json::to_writer(&mut w, e)?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads a trace file back into a catalog and trace.
pub fn read_jsonl(path: &Path) -> std::io::Result<(ObjectCatalog, Trace)> {
    read_jsonl_with_header(path).map(|(c, t, _)| (c, t))
}

/// Like [`read_jsonl`], also returning the file's header (description,
/// format version) for tooling that reports provenance.
///
/// # Errors
/// Fails on I/O errors, a malformed header/event line, or an unsupported
/// format version.
pub fn read_jsonl_with_header(path: &Path) -> std::io::Result<(ObjectCatalog, Trace, TraceHeader)> {
    let f = std::fs::File::open(path)?;
    let mut lines = BufReader::new(f).lines();
    let header_line = lines.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "empty trace file")
    })??;
    let header: TraceHeader = serde_json::from_str(&header_line)?;
    if header.version != TRACE_FORMAT_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unsupported trace version {}", header.version),
        ));
    }
    let catalog = ObjectCatalog::from_sizes(&header.object_sizes);
    let mut events = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(serde_json::from_str(&line)?);
    }
    Ok((catalog, Trace::new(events), header))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{QueryEvent, QueryKind, UpdateEvent};
    use delta_storage::ObjectId;

    fn sample_trace() -> (ObjectCatalog, Trace) {
        let catalog = ObjectCatalog::from_sizes(&[100, 200, 300]);
        let trace = Trace::new(vec![
            Event::Query(QueryEvent {
                seq: 0,
                objects: vec![ObjectId(0), ObjectId(2)],
                result_bytes: 50,
                tolerance: 0,
                kind: QueryKind::Cone,
            }),
            Event::Update(UpdateEvent {
                seq: 1,
                object: ObjectId(1),
                bytes: 7,
            }),
            Event::Query(QueryEvent {
                seq: 2,
                objects: vec![ObjectId(1)],
                result_bytes: 20,
                tolerance: 5,
                kind: QueryKind::Selection,
            }),
        ]);
        (catalog, trace)
    }

    #[test]
    fn totals() {
        let (_, t) = sample_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.n_queries(), 2);
        assert_eq!(t.n_updates(), 1);
        assert_eq!(t.total_query_bytes(), 70);
        assert_eq!(t.total_update_bytes(), 7);
        assert_eq!(t.truncated(1).len(), 1);
        assert_eq!(t.truncated(100).len(), 3);
    }

    #[test]
    #[should_panic(expected = "seq-ordered")]
    fn unordered_events_rejected() {
        let _ = Trace::new(vec![
            Event::Update(UpdateEvent {
                seq: 5,
                object: ObjectId(0),
                bytes: 1,
            }),
            Event::Update(UpdateEvent {
                seq: 3,
                object: ObjectId(0),
                bytes: 1,
            }),
        ]);
    }

    #[test]
    fn jsonl_round_trip() {
        let (catalog, trace) = sample_trace();
        let dir = std::env::temp_dir().join("delta_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        write_jsonl(&path, &catalog, &trace, "unit test").unwrap();
        let (cat2, trace2) = read_jsonl(&path).unwrap();
        assert_eq!(trace, trace2);
        assert_eq!(catalog.total_bytes(), cat2.total_bytes());
        assert_eq!(catalog.len(), cat2.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_bad_version() {
        let dir = std::env::temp_dir().join("delta_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(
            &path,
            "{\"version\":99,\"object_sizes\":[1],\"description\":\"\"}\n",
        )
        .unwrap();
        assert!(read_jsonl(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
