//! A synthetic sky-density model.
//!
//! The SDSS `PhotoObj` data are far from uniform on the sphere: source
//! density tracks the survey footprint and the galactic structure, which is
//! why the paper's 68 equi-area partitions range from 50 MB to 90 GB
//! (§6.1). [`SkyModel`] reproduces that inhomogeneity with a smooth
//! analytic density — a broad band around a tilted great circle (the
//! survey stripe concentration) plus a handful of Gaussian over-densities
//! (clusters / well-studied fields) on a low floor.

use delta_htm::{Trixel, Vec3};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One Gaussian over-density on the sphere.
#[derive(Clone, Copy, Debug)]
pub struct Blob {
    /// Center direction.
    pub center: Vec3,
    /// Angular scale in radians.
    pub sigma_rad: f64,
    /// Peak amplitude relative to the floor.
    pub amplitude: f64,
}

/// Analytic sky density used to size data objects and aim scans.
#[derive(Clone, Debug)]
pub struct SkyModel {
    blobs: Vec<Blob>,
    band_pole: Vec3,
    band_sigma: f64,
    band_amplitude: f64,
    floor: f64,
}

impl SkyModel {
    /// A reproducible SDSS-like sky: a tilted dense band plus `n_blobs`
    /// compact, strong over-densities.
    ///
    /// The parameters are chosen to make the per-object mass distribution
    /// as skewed as the paper reports for its equi-area partitions — data
    /// objects "from as low as 50 MB to as high as 90 GB" (§6.1), a three
    /// orders-of-magnitude spread: most of the sky sits near a very low
    /// floor and the mass concentrates in the band and a few compact
    /// clumps.
    pub fn sdss_like(seed: u64, n_blobs: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let blobs = (0..n_blobs)
            .map(|_| {
                let ra = rng.random_range(0.0..360.0);
                let dec = rng.random_range(-80.0..80.0f64);
                Blob {
                    center: Vec3::from_radec_deg(ra, dec),
                    sigma_rad: rng.random_range(0.03..0.12),
                    amplitude: rng.random_range(10.0..80.0),
                }
            })
            .collect();
        SkyModel {
            blobs,
            band_pole: Vec3::from_radec_deg(192.9, 27.1), // ~galactic pole
            band_sigma: 0.22,
            band_amplitude: 1.2,
            floor: 0.05,
        }
    }

    /// A uniform sky (useful as a control in tests and ablations).
    pub fn uniform() -> Self {
        SkyModel {
            blobs: Vec::new(),
            band_pole: Vec3::new(0.0, 0.0, 1.0),
            band_sigma: 1.0,
            band_amplitude: 0.0,
            floor: 1.0,
        }
    }

    /// Density at a direction (arbitrary units, strictly positive).
    pub fn density_at(&self, p: Vec3) -> f64 {
        let mut d = self.floor;
        // Band: Gaussian in the colatitude from the band's great circle.
        let colat = std::f64::consts::FRAC_PI_2 - self.band_pole.angular_distance(p);
        d += self.band_amplitude
            * (-(colat * colat) / (2.0 * self.band_sigma * self.band_sigma)).exp();
        for b in &self.blobs {
            let r = b.center.angular_distance(p);
            d += b.amplitude * (-(r * r) / (2.0 * b.sigma_rad * b.sigma_rad)).exp();
        }
        d
    }

    /// Integrated density over a trixel.
    ///
    /// The smooth components (floor + band) are integrated by sampling the
    /// centroid and corners. Blobs can be much narrower than a trixel, so
    /// sampling would miss them; instead each blob's total mass
    /// (`2π σ² A` for a spherical Gaussian cap) is assigned to the trixel
    /// containing its center — exact in the small-σ limit the generator
    /// uses.
    pub fn trixel_mass(&self, t: &Trixel) -> f64 {
        let samples = [t.center(), t.v[0], t.v[1], t.v[2]];
        let smooth_at = |p: Vec3| {
            let colat = std::f64::consts::FRAC_PI_2 - self.band_pole.angular_distance(p);
            self.floor
                + self.band_amplitude
                    * (-(colat * colat) / (2.0 * self.band_sigma * self.band_sigma)).exp()
        };
        let mean: f64 = samples.iter().map(|&p| smooth_at(p)).sum::<f64>() / samples.len() as f64;
        let mut mass = mean * t.solid_angle();
        for b in &self.blobs {
            if t.contains(b.center) {
                mass += std::f64::consts::TAU * b.sigma_rad * b.sigma_rad * b.amplitude;
            }
        }
        mass
    }

    /// The over-density blobs (query generators aim hotspots at them).
    pub fn blobs(&self) -> &[Blob] {
        &self.blobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_htm::Partition;

    #[test]
    fn density_positive_everywhere() {
        let sky = SkyModel::sdss_like(7, 6);
        for i in 0..500 {
            let p =
                Vec3::from_radec_deg((i as f64 * 7.7) % 360.0, ((i as f64 * 3.3) % 178.0) - 89.0);
            assert!(sky.density_at(p) > 0.0);
        }
    }

    #[test]
    fn blobs_raise_density() {
        let sky = SkyModel::sdss_like(7, 6);
        let b = sky.blobs()[0];
        let far = Vec3::from_radec_deg(
            (b.center.to_radec_deg().0 + 180.0) % 360.0,
            -b.center.to_radec_deg().1,
        );
        assert!(sky.density_at(b.center) > sky.density_at(far));
    }

    #[test]
    fn uniform_sky_is_flat() {
        let sky = SkyModel::uniform();
        let a = sky.density_at(Vec3::from_radec_deg(10.0, 10.0));
        let b = sky.density_at(Vec3::from_radec_deg(200.0, -60.0));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn equi_area_partition_has_skewed_masses() {
        // The generator's construction: equi-area leaves, mass weights.
        let sky = SkyModel::sdss_like(42, 8);
        let mut part = Partition::adaptive(|t| t.solid_angle(), 68);
        part.reweight(|t| sky.trixel_mass(t));
        assert!(part.len() >= 68 && part.len() <= 71);
        // Masses must be strongly skewed: that is the paper's 50 MB vs
        // 90 GB object-size spread.
        let w = part.weights();
        let max = w.iter().cloned().fold(0.0, f64::max);
        let min = w.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min.max(1e-12) > 50.0,
            "sky too uniform: {max} / {min}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SkyModel::sdss_like(5, 4);
        let b = SkyModel::sdss_like(5, 4);
        let p = Vec3::from_radec_deg(123.0, -12.0);
        assert_eq!(a.density_at(p), b.density_at(p));
    }
}
