//! Update-trace reconstruction.
//!
//! §6.1: *"Telescopes collect data by scanning specific regions of the
//! sky, along great circles, in a coordinated and systematic fashion.
//! Updates are thus clustered by regions on the sky. Based on this
//! pattern, we created a workload of 250,000 updates. The size of an
//! update is proportional to the density of the data object."*
//!
//! [`UpdateGenerator`] walks a rotating set of great-circle stripes in
//! small angular steps. Consecutive updates therefore hit the same or
//! adjacent objects (the update hotspots of Fig. 7(a)), and the stripe set
//! itself differs from the query hotspots, which is what makes decoupling
//! profitable.

use crate::config::WorkloadConfig;
use crate::event::UpdateEvent;
use crate::querygen::random_direction;
use delta_htm::Vec3;
use delta_storage::SpatialMapper;
use rand::rngs::StdRng;
use rand::RngExt;
use rand_distr::{Distribution, LogNormal};

/// One survey stripe: a great circle with a scan phase.
#[derive(Clone, Copy, Debug)]
struct Stripe {
    /// Orthonormal basis of the great circle's plane (derived from its
    /// pole at construction).
    e1: Vec3,
    e2: Vec3,
    /// Current scan phase along the circle, radians.
    phase: f64,
}

impl Stripe {
    fn new(pole: Vec3, phase: f64) -> Self {
        // Any vector not parallel to the pole seeds the basis.
        let helper = if pole.z.abs() < 0.9 {
            Vec3::new(0.0, 0.0, 1.0)
        } else {
            Vec3::new(1.0, 0.0, 0.0)
        };
        let e1 = pole.cross(helper).normalized();
        let e2 = pole.cross(e1).normalized();
        Stripe { e1, e2, phase }
    }

    fn position(&self) -> Vec3 {
        (self.e1 * self.phase.cos() + self.e2 * self.phase.sin()).normalized()
    }
}

/// Stateful generator for the update half of the trace.
pub struct UpdateGenerator<'a> {
    cfg: &'a WorkloadConfig,
    mapper: &'a SpatialMapper,
    stripes: Vec<Stripe>,
    current: usize,
    steps_in_current: usize,
    step_rad: f64,
    size_noise: LogNormal<f64>,
    mean_density: f64,
}

impl<'a> UpdateGenerator<'a> {
    /// Creates a generator whose stripes are seeded from the RNG.
    pub fn new(cfg: &'a WorkloadConfig, mapper: &'a SpatialMapper, rng: &mut StdRng) -> Self {
        let stripes = (0..cfg.n_stripes)
            .map(|_| {
                Stripe::new(
                    random_direction(rng),
                    rng.random_range(0.0..std::f64::consts::TAU),
                )
            })
            .collect();
        let n = mapper.partition().len().max(1);
        UpdateGenerator {
            cfg,
            mapper,
            stripes,
            current: 0,
            steps_in_current: 0,
            // A full stripe pass (stripe_len steps) covers ~120° of the
            // circle, so a pass dwells on a contiguous run of objects.
            step_rad: (2.0 * std::f64::consts::PI / 3.0) / cfg.stripe_len as f64,
            size_noise: LogNormal::new(0.0, 0.4).expect("valid lognormal"),
            mean_density: 1.0 / n as f64,
        }
    }

    /// Generates the next update at global sequence `seq`.
    pub fn next_update(&mut self, seq: u64, rng: &mut StdRng) -> UpdateEvent {
        if self.steps_in_current >= self.cfg.stripe_len {
            self.steps_in_current = 0;
            self.current = (self.current + 1) % self.stripes.len();
        }
        let stripe = &mut self.stripes[self.current];
        stripe.phase = (stripe.phase + self.step_rad) % std::f64::consts::TAU;
        let pos = stripe.position();
        self.steps_in_current += 1;

        let object = self.mapper.object_at(pos);
        // Size ∝ object density, with multiplicative noise; lognormal(0,σ)
        // has mean e^{σ²/2}, divide it out to keep the configured mean.
        let density = self.mapper.partition().weights()[object.index()]
            / self
                .mapper
                .partition()
                .weights()
                .iter()
                .sum::<f64>()
                .max(f64::MIN_POSITIVE);
        let rel = density / self.mean_density;
        let noise = self.size_noise.sample(rng) / (0.4f64 * 0.4 / 2.0).exp();
        let bytes = (self.cfg.mean_update_bytes as f64 * rel * noise) as u64;
        UpdateEvent {
            seq,
            object,
            bytes: bytes.max(64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sky::SkyModel;
    use delta_htm::Partition;
    use rand::SeedableRng;

    fn setup() -> (WorkloadConfig, SpatialMapper) {
        let cfg = WorkloadConfig::small();
        let sky = SkyModel::sdss_like(cfg.seed, cfg.n_blobs);
        let part = Partition::adaptive(|t| sky.trixel_mass(t), cfg.target_objects);
        (cfg, SpatialMapper::new(part))
    }

    #[test]
    fn updates_are_spatially_clustered() {
        // Consecutive updates within a stripe pass should often repeat the
        // same object (the stripe dwells on contiguous sky).
        let (cfg, mapper) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = UpdateGenerator::new(&cfg, &mapper, &mut rng);
        let events: Vec<_> = (0..cfg.stripe_len as u64)
            .map(|s| g.next_update(s, &mut rng))
            .collect();
        let repeats = events
            .windows(2)
            .filter(|w| w[0].object == w[1].object)
            .count();
        assert!(
            repeats as f64 > 0.5 * (events.len() - 1) as f64,
            "only {repeats}/{} consecutive repeats — not clustered",
            events.len() - 1
        );
    }

    #[test]
    fn updates_concentrate_on_few_objects() {
        // At a finer partition (more leaves than the default test setup)
        // the fixed stripe set must leave parts of the sky untouched and
        // concentrate updates on the stripe corridors.
        let (cfg, _) = setup();
        let sky = SkyModel::sdss_like(cfg.seed, cfg.n_blobs);
        let part = Partition::adaptive(|t| sky.trixel_mass(t), 96);
        let mapper = SpatialMapper::new(part);
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = UpdateGenerator::new(&cfg, &mapper, &mut rng);
        let n = mapper.partition().len();
        let mut counts = vec![0u64; n];
        for s in 0..3000 {
            counts[g.next_update(s, &mut rng).object.index()] += 1;
        }
        let touched = counts.iter().filter(|&&c| c > 0).count();
        assert!(
            touched < n,
            "updates touched every object ({touched}/{n}) — stripes should miss some"
        );
        // And the touched ones are unevenly loaded.
        let max = *counts.iter().max().unwrap();
        let mean = 3000.0 / touched as f64;
        assert!(max as f64 > 1.5 * mean, "update load too uniform");
    }

    #[test]
    fn update_sizes_track_density() {
        let (cfg, mapper) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = UpdateGenerator::new(&cfg, &mapper, &mut rng);
        let weights = mapper.partition().weights().to_vec();
        let mut by_obj: std::collections::HashMap<u32, Vec<u64>> = Default::default();
        for s in 0..5000 {
            let u = g.next_update(s, &mut rng);
            by_obj.entry(u.object.0).or_default().push(u.bytes);
        }
        // Compare mean sizes of the densest vs sparsest touched objects.
        let mut touched: Vec<(f64, f64)> = by_obj
            .iter()
            .filter(|(_, v)| v.len() >= 20)
            .map(|(&o, v)| {
                (
                    weights[o as usize],
                    v.iter().sum::<u64>() as f64 / v.len() as f64,
                )
            })
            .collect();
        touched.sort_by(|a, b| a.0.total_cmp(&b.0));
        if touched.len() >= 2 {
            let (sparse_w, sparse_mean) = touched[0];
            let (dense_w, dense_mean) = touched[touched.len() - 1];
            assert!(dense_w > sparse_w);
            assert!(
                dense_mean > sparse_mean,
                "dense object updates ({dense_mean}) not larger than sparse ({sparse_mean})"
            );
        }
    }

    #[test]
    fn mean_size_near_configured() {
        let (cfg, mapper) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = UpdateGenerator::new(&cfg, &mapper, &mut rng);
        let n = 20_000;
        let total: u64 = (0..n).map(|s| g.next_update(s, &mut rng).bytes).sum();
        let mean = total as f64 / n as f64;
        let target = cfg.mean_update_bytes as f64;
        // Stripes oversample dense sky, so allow a broad band.
        assert!(
            mean > 0.3 * target && mean < 4.0 * target,
            "mean update size {mean} wildly off target {target}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (cfg, mapper) = setup();
        let make = || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut g = UpdateGenerator::new(&cfg, &mapper, &mut rng);
            (0..200)
                .map(|s| g.next_update(s, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }
}
