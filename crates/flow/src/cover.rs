//! Incremental minimum-weight vertex cover on bipartite interaction graphs.
//!
//! Theorem 1 of the Delta paper: with the interaction graph known, the
//! optimal ship-query/ship-update choice is a minimum-weight vertex cover,
//! and because the graph is bipartite (edges only between update nodes and
//! query nodes) the cover is computable in polynomial time by reduction to
//! maximum network flow (Hochbaum's construction):
//!
//! ```text
//!   source s --w(u)--> each update node u --INF--> query node q --w(q)--> sink t
//! ```
//!
//! After computing max flow, let `R` be the nodes reachable from `s` in the
//! residual graph. The cover is `{u ∉ R} ∪ {q ∈ R}`, and its weight equals
//! the flow value (min cut).
//!
//! [`CoverGraph`] maintains this network **incrementally**: nodes and edges
//! are added as events arrive, covers are re-solved by continuing from the
//! previous flow, and nodes leave (updates shipped, queries answered,
//! objects evicted) via closed-form flow cancellation that keeps the
//! retained flow feasible — precisely the remainder-subgraph technique of
//! §4 of the paper.

use crate::graph::{EdgeId, FlowNetwork, NodeId, INF};
use std::collections::HashSet;

/// Handle to an update node in a [`CoverGraph`]. Stable across compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UpdateNode(pub usize);

/// Handle to a query node in a [`CoverGraph`]. Stable across compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryNode(pub usize);

#[derive(Clone, Debug)]
struct UEntry {
    node: NodeId,
    s_edge: EdgeId,
    weight: u64,
    /// Live interaction edges, paired with the query handle.
    edges: Vec<(EdgeId, QueryNode)>,
    alive: bool,
}

#[derive(Clone, Debug)]
struct QEntry {
    node: NodeId,
    t_edge: EdgeId,
    weight: u64,
    edges: Vec<(EdgeId, UpdateNode)>,
    alive: bool,
}

/// The result of a cover computation.
#[derive(Clone, Debug, Default)]
pub struct Cover {
    /// Total weight of the cover == max-flow value == minimal shipping cost.
    pub weight: u64,
    /// Update nodes in the cover (their updates should be shipped).
    pub updates: HashSet<UpdateNode>,
    /// Query nodes in the cover (these queries should be shipped).
    pub queries: HashSet<QueryNode>,
}

/// An incrementally-maintained bipartite weighted graph with min-weight
/// vertex cover queries.
#[derive(Clone, Debug)]
pub struct CoverGraph {
    net: FlowNetwork,
    s: NodeId,
    t: NodeId,
    us: Vec<UEntry>,
    qs: Vec<QEntry>,
    live_u: usize,
    live_q: usize,
    removed_nodes: usize,
}

impl Default for CoverGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl CoverGraph {
    /// Creates an empty cover graph.
    pub fn new() -> Self {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        Self {
            net,
            s,
            t,
            us: Vec::new(),
            qs: Vec::new(),
            live_u: 0,
            live_q: 0,
            removed_nodes: 0,
        }
    }

    /// Adds an update node with shipping cost `weight`.
    pub fn add_update(&mut self, weight: u64) -> UpdateNode {
        let node = self.net.add_node();
        let s_edge = self.net.add_edge(self.s, node, weight);
        self.us.push(UEntry {
            node,
            s_edge,
            weight,
            edges: Vec::new(),
            alive: true,
        });
        self.live_u += 1;
        UpdateNode(self.us.len() - 1)
    }

    /// Adds a query node with shipping cost `weight`.
    pub fn add_query(&mut self, weight: u64) -> QueryNode {
        let node = self.net.add_node();
        let t_edge = self.net.add_edge(node, self.t, weight);
        self.qs.push(QEntry {
            node,
            t_edge,
            weight,
            edges: Vec::new(),
            alive: true,
        });
        self.live_q += 1;
        QueryNode(self.qs.len() - 1)
    }

    /// Adds an interaction edge: query `q`'s currency requirement depends on
    /// update `u`.
    ///
    /// # Panics
    /// Panics if either endpoint has been removed.
    pub fn add_interaction(&mut self, u: UpdateNode, q: QueryNode) {
        assert!(self.us[u.0].alive, "update node removed");
        assert!(self.qs[q.0].alive, "query node removed");
        let e = self.net.add_edge(self.us[u.0].node, self.qs[q.0].node, INF);
        self.us[u.0].edges.push((e, q));
        self.qs[q.0].edges.push((e, u));
    }

    /// Shipping cost of an update node.
    pub fn update_weight(&self, u: UpdateNode) -> u64 {
        self.us[u.0].weight
    }

    /// Shipping cost of a query node.
    pub fn query_weight(&self, q: QueryNode) -> u64 {
        self.qs[q.0].weight
    }

    /// Whether the update node is still in the graph.
    pub fn update_alive(&self, u: UpdateNode) -> bool {
        self.us[u.0].alive
    }

    /// Whether the query node is still in the graph.
    pub fn query_alive(&self, q: QueryNode) -> bool {
        self.qs[q.0].alive
    }

    /// Number of live edges incident to `u` (edges to removed queries don't
    /// count).
    pub fn update_degree(&self, u: UpdateNode) -> usize {
        self.us[u.0]
            .edges
            .iter()
            .filter(|(_, q)| self.qs[q.0].alive)
            .count()
    }

    /// Number of live edges incident to `q`.
    pub fn query_degree(&self, q: QueryNode) -> usize {
        self.qs[q.0]
            .edges
            .iter()
            .filter(|(_, u)| self.us[u.0].alive)
            .count()
    }

    /// Live update-node count.
    pub fn live_updates(&self) -> usize {
        self.live_u
    }

    /// Live query-node count.
    pub fn live_queries(&self) -> usize {
        self.live_q
    }

    /// Removes an update node (it was shipped, or its object was evicted),
    /// cancelling any flow routed through it so the remaining flow stays
    /// feasible.
    pub fn remove_update(&mut self, u: UpdateNode) {
        let entry = &self.us[u.0];
        if !entry.alive {
            return;
        }
        let node = entry.node;
        let s_edge = entry.s_edge;
        // Cancel flow on each interaction edge and the matching q->t edge.
        let edges = entry.edges.clone();
        for (e, q) in edges {
            let f = self.net.flow_on(e) as i64;
            if f > 0 {
                self.net.force_flow(e, -f);
                self.net.force_flow(self.qs[q.0].t_edge, -f);
            }
        }
        let f_su = self.net.flow_on(s_edge) as i64;
        if f_su > 0 {
            self.net.force_flow(s_edge, -f_su);
        }
        self.net.delete_node(node);
        self.us[u.0].alive = false;
        self.live_u -= 1;
        self.removed_nodes += 1;
        self.maybe_compact();
    }

    /// Removes a query node (it was answered at the cache or shipped and its
    /// retention is no longer needed), cancelling flow through it.
    pub fn remove_query(&mut self, q: QueryNode) {
        let entry = &self.qs[q.0];
        if !entry.alive {
            return;
        }
        let node = entry.node;
        let t_edge = entry.t_edge;
        let edges = entry.edges.clone();
        for (e, u) in edges {
            let f = self.net.flow_on(e) as i64;
            if f > 0 {
                self.net.force_flow(e, -f);
                self.net.force_flow(self.us[u.0].s_edge, -f);
            }
        }
        let f_qt = self.net.flow_on(t_edge) as i64;
        if f_qt > 0 {
            self.net.force_flow(t_edge, -f_qt);
        }
        self.net.delete_node(node);
        self.qs[q.0].alive = false;
        self.live_q -= 1;
        self.removed_nodes += 1;
        self.maybe_compact();
    }

    /// Solves for the current minimum-weight vertex cover, continuing from
    /// the previous flow (the incremental step of §4).
    pub fn solve(&mut self) -> Cover {
        self.net.max_flow(self.s, self.t);
        let reach = self.net.residual_reachable(self.s);
        let mut cover = Cover {
            weight: self.net.flow_value(self.s),
            ..Default::default()
        };
        for (i, u) in self.us.iter().enumerate() {
            if u.alive && !reach[u.node] {
                cover.updates.insert(UpdateNode(i));
            }
        }
        for (i, q) in self.qs.iter().enumerate() {
            if q.alive && reach[q.node] {
                cover.queries.insert(QueryNode(i));
            }
        }
        debug_assert_eq!(
            cover.weight,
            cover
                .updates
                .iter()
                .map(|&u| self.us[u.0].weight)
                .chain(cover.queries.iter().map(|&q| self.qs[q.0].weight))
                .sum::<u64>(),
            "cover weight must equal max-flow value"
        );
        cover
    }

    /// Rebuilds the underlying network without deleted nodes when bloat
    /// passes a threshold, carrying over the feasible flow. External handles
    /// remain valid.
    fn maybe_compact(&mut self) {
        let live = self.live_u + self.live_q + 2;
        if self.removed_nodes < 64 || self.removed_nodes < live * 4 {
            return;
        }
        self.compact();
    }

    /// Forces a compaction (normally triggered automatically).
    pub fn compact(&mut self) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        // Recreate live nodes and carry flows across.
        let mut new_unode = vec![usize::MAX; self.us.len()];
        for (i, u) in self.us.iter_mut().enumerate() {
            if !u.alive {
                continue;
            }
            let node = net.add_node();
            let old_flow = self.net.flow_on(u.s_edge);
            let s_edge = net.add_edge(s, node, u.weight);
            net.force_flow(s_edge, old_flow as i64);
            new_unode[i] = node;
            u.node = node;
            u.s_edge = s_edge;
        }
        for q in self.qs.iter_mut() {
            if !q.alive {
                continue;
            }
            let node = net.add_node();
            let old_flow = self.net.flow_on(q.t_edge);
            let t_edge = net.add_edge(node, t, q.weight);
            net.force_flow(t_edge, old_flow as i64);
            q.node = node;
            q.t_edge = t_edge;
        }
        // Interaction edges (only between live endpoints).
        let mut rewires: Vec<(usize, usize, EdgeId, u64)> = Vec::new();
        for (qi, q) in self.qs.iter().enumerate() {
            if !q.alive {
                continue;
            }
            for &(e, u) in &q.edges {
                if self.us[u.0].alive {
                    rewires.push((u.0, qi, e, self.net.flow_on(e)));
                }
            }
        }
        for q in self.qs.iter_mut() {
            q.edges.clear();
        }
        for u in self.us.iter_mut() {
            u.edges.clear();
        }
        for (ui, qi, _old_e, flow) in rewires {
            let e = net.add_edge(new_unode[ui], self.qs[qi].node, INF);
            net.force_flow(e, flow as i64);
            self.us[ui].edges.push((e, QueryNode(qi)));
            self.qs[qi].edges.push((e, UpdateNode(ui)));
        }
        self.net = net;
        self.s = s;
        self.t = t;
        self.removed_nodes = 0;
        debug_assert!(self.net.check_conservation(self.s, self.t).is_ok());
    }

    /// Sanity check: the flow is conserved. For tests.
    pub fn check(&self) -> Result<(), String> {
        self.net.check_conservation(self.s, self.t)
    }
}

/// Exhaustive minimum-weight vertex cover for tiny bipartite graphs
/// (`|U| <= 20`). Reference implementation for tests and benchmarks.
///
/// `edges` lists `(u_index, q_index)` pairs.
pub fn brute_force_cover_weight(
    u_weights: &[u64],
    q_weights: &[u64],
    edges: &[(usize, usize)],
) -> u64 {
    assert!(
        u_weights.len() <= 20,
        "brute force limited to 20 update nodes"
    );
    let mut best = u64::MAX;
    for mask in 0u32..(1 << u_weights.len()) {
        let mut w: u64 = 0;
        for (i, &uw) in u_weights.iter().enumerate() {
            if mask & (1 << i) != 0 {
                w += uw;
            }
        }
        // Every query with an edge from an unchosen u must join the cover.
        let mut q_in = vec![false; q_weights.len()];
        for &(u, q) in edges {
            if mask & (1 << u) == 0 {
                q_in[q] = true;
            }
        }
        for (q, &inc) in q_in.iter().enumerate() {
            if inc {
                w += q_weights[q];
            }
        }
        best = best.min(w);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_zero_cover() {
        let mut g = CoverGraph::new();
        let c = g.solve();
        assert_eq!(c.weight, 0);
        assert!(c.updates.is_empty() && c.queries.is_empty());
    }

    #[test]
    fn isolated_nodes_never_in_cover() {
        let mut g = CoverGraph::new();
        g.add_update(10);
        g.add_query(20);
        let c = g.solve();
        assert_eq!(c.weight, 0);
        assert!(c.updates.is_empty() && c.queries.is_empty());
    }

    #[test]
    fn single_edge_picks_cheaper_side() {
        let mut g = CoverGraph::new();
        let u = g.add_update(3);
        let q = g.add_query(10);
        g.add_interaction(u, q);
        let c = g.solve();
        assert_eq!(c.weight, 3);
        assert!(c.updates.contains(&u));
        assert!(!c.queries.contains(&q));
    }

    #[test]
    fn expensive_update_ships_query() {
        let mut g = CoverGraph::new();
        let u = g.add_update(50);
        let q = g.add_query(10);
        g.add_interaction(u, q);
        let c = g.solve();
        assert_eq!(c.weight, 10);
        assert!(c.queries.contains(&q));
    }

    #[test]
    fn star_updates_shared_by_queries() {
        // One cheap update interacting with three expensive queries:
        // ship the update once instead of three queries.
        let mut g = CoverGraph::new();
        let u = g.add_update(5);
        for _ in 0..3 {
            let q = g.add_query(4);
            g.add_interaction(u, q);
        }
        let c = g.solve();
        assert_eq!(c.weight, 5);
        assert_eq!(c.updates.len(), 1);
    }

    #[test]
    fn paper_example_fig2_internal_graph() {
        // The internal interaction subgraph of Fig. 2: u1(1GB), u6(2GB)
        // both interact with q7(5GB). Shipping both updates (3GB) beats
        // shipping the query (5GB).
        let mut g = CoverGraph::new();
        let u1 = g.add_update(1);
        let u6 = g.add_update(2);
        let q7 = g.add_query(5);
        g.add_interaction(u1, q7);
        g.add_interaction(u6, q7);
        let c = g.solve();
        assert_eq!(c.weight, 3);
        assert!(c.updates.contains(&u1) && c.updates.contains(&u6));
        assert!(!c.queries.contains(&q7));
    }

    #[test]
    fn cover_covers_every_edge() {
        let mut g = CoverGraph::new();
        let us: Vec<_> = [7u64, 3, 9, 2].iter().map(|&w| g.add_update(w)).collect();
        let qs: Vec<_> = [5u64, 6, 1].iter().map(|&w| g.add_query(w)).collect();
        let edges = [(0, 0), (0, 1), (1, 1), (2, 2), (3, 0), (3, 2)];
        for &(u, q) in &edges {
            g.add_interaction(us[u], qs[q]);
        }
        let c = g.solve();
        for &(u, q) in &edges {
            assert!(
                c.updates.contains(&us[u]) || c.queries.contains(&qs[q]),
                "edge ({u},{q}) uncovered"
            );
        }
        let brute = brute_force_cover_weight(&[7, 3, 9, 2], &[5, 6, 1], &edges);
        assert_eq!(c.weight, brute);
    }

    #[test]
    fn incremental_additions_match_fresh_solve() {
        let mut g = CoverGraph::new();
        let u1 = g.add_update(4);
        let q1 = g.add_query(3);
        g.add_interaction(u1, q1);
        let w1 = g.solve().weight;
        assert_eq!(w1, 3);
        // New query raises the stakes for u1.
        let q2 = g.add_query(6);
        g.add_interaction(u1, q2);
        let c = g.solve();
        // Now shipping u1 (4) beats q1+q2 (9).
        assert_eq!(c.weight, 4);
        g.check().unwrap();
    }

    #[test]
    fn removal_cancels_flow_and_stays_feasible() {
        let mut g = CoverGraph::new();
        let u1 = g.add_update(2);
        let u2 = g.add_update(3);
        let q1 = g.add_query(4);
        let q2 = g.add_query(2);
        g.add_interaction(u1, q1);
        g.add_interaction(u2, q1);
        g.add_interaction(u2, q2);
        let _ = g.solve();
        g.remove_update(u2);
        g.check().unwrap();
        let c = g.solve();
        // Remaining graph: u1(2) -- q1(4): ship u1.
        assert_eq!(c.weight, 2);
        assert!(c.updates.contains(&u1));
        // Removing again is a no-op.
        g.remove_update(u2);
        g.check().unwrap();
    }

    #[test]
    fn remove_query_then_resolve() {
        let mut g = CoverGraph::new();
        let u = g.add_update(5);
        let q1 = g.add_query(3);
        let q2 = g.add_query(3);
        g.add_interaction(u, q1);
        g.add_interaction(u, q2);
        assert_eq!(g.solve().weight, 5); // ship u (5) vs q1+q2 (6)
        g.remove_query(q1);
        let c = g.solve();
        assert_eq!(c.weight, 3); // now just q2 vs u: ship q2
        assert!(c.queries.contains(&q2));
        g.check().unwrap();
    }

    #[test]
    fn degrees_track_liveness() {
        let mut g = CoverGraph::new();
        let u = g.add_update(1);
        let q1 = g.add_query(1);
        let q2 = g.add_query(1);
        g.add_interaction(u, q1);
        g.add_interaction(u, q2);
        assert_eq!(g.update_degree(u), 2);
        g.remove_query(q1);
        assert_eq!(g.update_degree(u), 1);
        assert_eq!(g.query_degree(q2), 1);
        g.remove_update(u);
        assert_eq!(g.query_degree(q2), 0);
    }

    #[test]
    fn compaction_preserves_solution() {
        let mut g = CoverGraph::new();
        // Build, solve, remove many nodes to trigger compaction, and check
        // the survivors still solve correctly.
        let mut kept = Vec::new();
        for i in 0..200 {
            let u = g.add_update(2 + (i % 5) as u64);
            let q = g.add_query(1 + (i % 7) as u64);
            g.add_interaction(u, q);
            if i % 10 == 0 {
                kept.push((u, q));
            }
        }
        let _ = g.solve();
        for i in 0..200 {
            if i % 10 != 0 {
                g.remove_update(UpdateNode(i));
                g.remove_query(QueryNode(i));
            }
        }
        g.compact();
        g.check().unwrap();
        let c = g.solve();
        // Each surviving pair contributes min(w_u, w_q).
        let expect: u64 = kept
            .iter()
            .map(|&(u, q)| g.update_weight(u).min(g.query_weight(q)))
            .sum();
        assert_eq!(c.weight, expect);
    }

    #[test]
    fn brute_force_sanity() {
        assert_eq!(brute_force_cover_weight(&[3], &[10], &[(0, 0)]), 3);
        assert_eq!(brute_force_cover_weight(&[10], &[3], &[(0, 0)]), 3);
        assert_eq!(brute_force_cover_weight(&[], &[], &[]), 0);
    }
}
