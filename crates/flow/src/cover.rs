//! Incremental minimum-weight vertex cover on bipartite interaction graphs.
//!
//! Theorem 1 of the Delta paper: with the interaction graph known, the
//! optimal ship-query/ship-update choice is a minimum-weight vertex cover,
//! and because the graph is bipartite (edges only between update nodes and
//! query nodes) the cover is computable in polynomial time by reduction to
//! maximum network flow (Hochbaum's construction):
//!
//! ```text
//!   source s --w(u)--> each update node u --INF--> query node q --w(q)--> sink t
//! ```
//!
//! After computing max flow, let `R` be the nodes reachable from `s` in the
//! residual graph. The cover is `{u ∉ R} ∪ {q ∈ R}`, and its weight equals
//! the flow value (min cut).
//!
//! [`CoverGraph`] maintains this network **incrementally**: nodes and edges
//! are added as events arrive, covers are re-solved by continuing from the
//! previous flow, and nodes leave (updates shipped, queries answered,
//! objects evicted) via closed-form flow cancellation that keeps the
//! retained flow feasible — precisely the remainder-subgraph technique of
//! §4 of the paper.
//!
//! ## The membership fast path
//!
//! The online decision loop never needs the whole cover: it asks one
//! question per arriving query — *is this query node in the cover?* —
//! and already knows, from its own bookkeeping, which update ranges to
//! ship when the answer is no. [`CoverGraph::solve_query_membership`]
//! answers exactly that: augment the flow to maximality (incrementally),
//! then run an **early-exit** residual BFS from `s` that stops the moment
//! the query node is discovered. No reachability vector, no `HashSet`
//! materialization, no allocation at all. The full
//! [`CoverGraph::solve`] survives for tests, stats, and offline planning.
//!
//! This is sound because the residual-reachable set of *any* maximum flow
//! is the same canonical set (the minimal source-side min cut): whichever
//! augmenting order — or [`FlowSolver`] — produced maximality, membership
//! answers are identical.

use crate::dinic::{dinic_max_flow_with, DinicScratch};
use crate::graph::{EdgeId, FlowNetwork, NodeId, INF};
use std::collections::HashSet;

/// Handle to an update node in a [`CoverGraph`]. Stable across compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UpdateNode(pub usize);

/// Handle to a query node in a [`CoverGraph`]. Stable across compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryNode(pub usize);

/// How [`CoverGraph`] pushes the incremental flow to maximality on each
/// solve. All three produce identical covers (the residual-reachable set
/// of a maximum flow is canonical); they differ only in wall-clock cost,
/// raced head-to-head in the `flow_solve` bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlowSolver {
    /// Shortest-augmenting-path (Edmonds–Karp) until no path remains —
    /// the paper's §4 incremental step. One BFS per augmenting path.
    EdmondsKarp,
    /// Dinic's blocking flow on every solve. Fewer phases when many
    /// paths are needed, but each phase costs a full level-graph BFS —
    /// overkill for the common 0/1-augmentation incremental solve.
    Dinic,
    /// A bounded burst of Edmonds–Karp augmentations (covering the
    /// common incremental case at one BFS each), falling back to Dinic
    /// when the residual demand is larger — e.g. right after a
    /// mass-removal rewired lots of flow. The measured default.
    #[default]
    Hybrid,
}

/// Edmonds–Karp augmentations the [`FlowSolver::Hybrid`] strategy
/// attempts before handing the solve to Dinic.
const HYBRID_EK_BUDGET: usize = 8;

/// Pooled edge-list Vecs retained for reuse (beyond this, capacity is
/// returned to the allocator).
const MAX_POOLED_EDGE_LISTS: usize = 256;

#[derive(Clone, Debug)]
struct UEntry {
    node: NodeId,
    s_edge: EdgeId,
    weight: u64,
    /// Live interaction edges, paired with the query handle.
    edges: Vec<(EdgeId, QueryNode)>,
    /// Count of `edges` whose query endpoint is still alive, maintained
    /// eagerly so degree queries are O(1).
    live_deg: usize,
    alive: bool,
}

#[derive(Clone, Debug)]
struct QEntry {
    node: NodeId,
    t_edge: EdgeId,
    weight: u64,
    edges: Vec<(EdgeId, UpdateNode)>,
    live_deg: usize,
    alive: bool,
}

/// The result of a cover computation.
#[derive(Clone, Debug, Default)]
pub struct Cover {
    /// Total weight of the cover == max-flow value == minimal shipping cost.
    pub weight: u64,
    /// Update nodes in the cover (their updates should be shipped).
    pub updates: HashSet<UpdateNode>,
    /// Query nodes in the cover (these queries should be shipped).
    pub queries: HashSet<QueryNode>,
}

/// An incrementally-maintained bipartite weighted graph with min-weight
/// vertex cover queries.
#[derive(Clone, Debug)]
pub struct CoverGraph {
    net: FlowNetwork,
    s: NodeId,
    t: NodeId,
    us: Vec<UEntry>,
    qs: Vec<QEntry>,
    live_u: usize,
    live_q: usize,
    /// Live interaction edges (both endpoints alive).
    live_edges: usize,
    removed_nodes: usize,
    solver: FlowSolver,
    dinic: DinicScratch,
    /// Recycled `UEntry::edges` / `QEntry::edges` Vecs from removed
    /// nodes, reused by `add_update` / `add_query`.
    u_edge_pool: Vec<Vec<(EdgeId, QueryNode)>>,
    q_edge_pool: Vec<Vec<(EdgeId, UpdateNode)>>,
    /// Compaction scratch: `(u index, q index, carried flow)` per
    /// surviving interaction edge.
    rewires: Vec<(usize, usize, u64)>,
    /// Compaction scratch: old update index -> rebuilt NodeId.
    unode_scratch: Vec<NodeId>,
}

impl Default for CoverGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl CoverGraph {
    /// Creates an empty cover graph.
    pub fn new() -> Self {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        Self {
            net,
            s,
            t,
            us: Vec::new(),
            qs: Vec::new(),
            live_u: 0,
            live_q: 0,
            live_edges: 0,
            removed_nodes: 0,
            solver: FlowSolver::default(),
            dinic: DinicScratch::default(),
            u_edge_pool: Vec::new(),
            q_edge_pool: Vec::new(),
            rewires: Vec::new(),
            unode_scratch: Vec::new(),
        }
    }

    /// Selects the max-flow strategy (covers are identical under all of
    /// them — see [`FlowSolver`]). Default is [`FlowSolver::Hybrid`].
    pub fn set_solver(&mut self, solver: FlowSolver) {
        self.solver = solver;
    }

    /// The active max-flow strategy.
    pub fn solver(&self) -> FlowSolver {
        self.solver
    }

    /// Adds an update node with shipping cost `weight`.
    pub fn add_update(&mut self, weight: u64) -> UpdateNode {
        let node = self.net.add_node();
        let s_edge = self.net.add_edge(self.s, node, weight);
        self.us.push(UEntry {
            node,
            s_edge,
            weight,
            edges: self.u_edge_pool.pop().unwrap_or_default(),
            live_deg: 0,
            alive: true,
        });
        self.live_u += 1;
        UpdateNode(self.us.len() - 1)
    }

    /// Adds a query node with shipping cost `weight`.
    pub fn add_query(&mut self, weight: u64) -> QueryNode {
        let node = self.net.add_node();
        let t_edge = self.net.add_edge(node, self.t, weight);
        self.qs.push(QEntry {
            node,
            t_edge,
            weight,
            edges: self.q_edge_pool.pop().unwrap_or_default(),
            live_deg: 0,
            alive: true,
        });
        self.live_q += 1;
        QueryNode(self.qs.len() - 1)
    }

    /// Adds an interaction edge: query `q`'s currency requirement depends on
    /// update `u`.
    ///
    /// # Panics
    /// Panics if either endpoint has been removed.
    pub fn add_interaction(&mut self, u: UpdateNode, q: QueryNode) {
        assert!(self.us[u.0].alive, "update node removed");
        assert!(self.qs[q.0].alive, "query node removed");
        let e = self.net.add_edge(self.us[u.0].node, self.qs[q.0].node, INF);
        self.us[u.0].edges.push((e, q));
        self.us[u.0].live_deg += 1;
        self.qs[q.0].edges.push((e, u));
        self.qs[q.0].live_deg += 1;
        self.live_edges += 1;
    }

    /// Shipping cost of an update node.
    pub fn update_weight(&self, u: UpdateNode) -> u64 {
        self.us[u.0].weight
    }

    /// Shipping cost of a query node.
    pub fn query_weight(&self, q: QueryNode) -> u64 {
        self.qs[q.0].weight
    }

    /// Whether the update node is still in the graph.
    pub fn update_alive(&self, u: UpdateNode) -> bool {
        self.us[u.0].alive
    }

    /// Whether the query node is still in the graph.
    pub fn query_alive(&self, q: QueryNode) -> bool {
        self.qs[q.0].alive
    }

    /// Number of live edges incident to `u` (edges to removed queries don't
    /// count). O(1): maintained eagerly on edge and node mutations.
    pub fn update_degree(&self, u: UpdateNode) -> usize {
        debug_assert_eq!(
            self.us[u.0].live_deg,
            self.us[u.0]
                .edges
                .iter()
                .filter(|(_, q)| self.qs[q.0].alive)
                .count(),
            "update live-degree counter out of sync"
        );
        self.us[u.0].live_deg
    }

    /// Number of live edges incident to `q`. O(1).
    pub fn query_degree(&self, q: QueryNode) -> usize {
        debug_assert_eq!(
            self.qs[q.0].live_deg,
            self.qs[q.0]
                .edges
                .iter()
                .filter(|(_, u)| self.us[u.0].alive)
                .count(),
            "query live-degree counter out of sync"
        );
        self.qs[q.0].live_deg
    }

    /// Live update-node count.
    pub fn live_updates(&self) -> usize {
        self.live_u
    }

    /// Live query-node count.
    pub fn live_queries(&self) -> usize {
        self.live_q
    }

    /// Live interaction-edge count (both endpoints alive).
    pub fn live_interactions(&self) -> usize {
        self.live_edges
    }

    /// Removes an update node (it was shipped, or its object was evicted),
    /// cancelling any flow routed through it so the remaining flow stays
    /// feasible.
    pub fn remove_update(&mut self, u: UpdateNode) {
        if !self.us[u.0].alive {
            return;
        }
        let node = self.us[u.0].node;
        let s_edge = self.us[u.0].s_edge;
        // Cancel flow on each interaction edge and the matching q->t edge.
        // The entry is dead after this call and its edge list is never
        // read again, so move it out instead of cloning it.
        let mut edges = std::mem::take(&mut self.us[u.0].edges);
        for &(e, q) in &edges {
            let qe = &mut self.qs[q.0];
            if qe.alive {
                qe.live_deg -= 1;
                self.live_edges -= 1;
            }
            let f = self.net.flow_on(e) as i64;
            if f > 0 {
                self.net.force_flow(e, -f);
                self.net.force_flow(self.qs[q.0].t_edge, -f);
            }
        }
        if self.u_edge_pool.len() < MAX_POOLED_EDGE_LISTS {
            edges.clear();
            self.u_edge_pool.push(edges);
        }
        let f_su = self.net.flow_on(s_edge) as i64;
        if f_su > 0 {
            self.net.force_flow(s_edge, -f_su);
        }
        self.net.delete_node(node);
        self.us[u.0].alive = false;
        self.us[u.0].live_deg = 0;
        self.live_u -= 1;
        self.removed_nodes += 1;
        self.maybe_compact();
    }

    /// Removes a query node (it was answered at the cache or shipped and its
    /// retention is no longer needed), cancelling flow through it.
    pub fn remove_query(&mut self, q: QueryNode) {
        if !self.qs[q.0].alive {
            return;
        }
        let node = self.qs[q.0].node;
        let t_edge = self.qs[q.0].t_edge;
        let mut edges = std::mem::take(&mut self.qs[q.0].edges);
        for &(e, u) in &edges {
            let ue = &mut self.us[u.0];
            if ue.alive {
                ue.live_deg -= 1;
                self.live_edges -= 1;
            }
            let f = self.net.flow_on(e) as i64;
            if f > 0 {
                self.net.force_flow(e, -f);
                self.net.force_flow(self.us[u.0].s_edge, -f);
            }
        }
        if self.q_edge_pool.len() < MAX_POOLED_EDGE_LISTS {
            edges.clear();
            self.q_edge_pool.push(edges);
        }
        let f_qt = self.net.flow_on(t_edge) as i64;
        if f_qt > 0 {
            self.net.force_flow(t_edge, -f_qt);
        }
        self.net.delete_node(node);
        self.qs[q.0].alive = false;
        self.qs[q.0].live_deg = 0;
        self.live_q -= 1;
        self.removed_nodes += 1;
        self.maybe_compact();
    }

    /// Pushes the current (feasible) flow to maximality with the active
    /// [`FlowSolver`]. The incremental step of §4.
    fn maximize_flow(&mut self) {
        match self.solver {
            FlowSolver::EdmondsKarp => {
                self.net.max_flow(self.s, self.t);
            }
            FlowSolver::Dinic => {
                dinic_max_flow_with(&mut self.net, self.s, self.t, &mut self.dinic);
            }
            FlowSolver::Hybrid => {
                for _ in 0..HYBRID_EK_BUDGET {
                    if self.net.augment_once(self.s, self.t).is_none() {
                        return;
                    }
                }
                dinic_max_flow_with(&mut self.net, self.s, self.t, &mut self.dinic);
            }
        }
    }

    /// Answers the one question the online decision loop needs: after
    /// re-solving incrementally, is query `q` in the minimum-weight cover
    /// (i.e. should it be shipped)? Allocation-free; early-exits the
    /// residual BFS the moment `q`'s node settles. Equivalent to
    /// `self.solve().queries.contains(&q)` (pinned by proptests).
    ///
    /// # Panics
    /// Panics if `q` has been removed.
    pub fn solve_query_membership(&mut self, q: QueryNode) -> bool {
        assert!(self.qs[q.0].alive, "query node removed");
        self.maximize_flow();
        let node = self.qs[q.0].node;
        self.net.residual_reaches(self.s, node)
    }

    /// Solves for the current minimum-weight vertex cover, continuing from
    /// the previous flow (the incremental step of §4). Materializes the
    /// full cover — tests, stats, and offline planning; the online hot
    /// path uses [`Self::solve_query_membership`].
    pub fn solve(&mut self) -> Cover {
        self.maximize_flow();
        self.net.mark_residual_reachable(self.s);
        let mut cover = Cover {
            weight: self.net.flow_value(self.s),
            ..Default::default()
        };
        for (i, u) in self.us.iter().enumerate() {
            if u.alive && !self.net.reached(u.node) {
                cover.updates.insert(UpdateNode(i));
            }
        }
        for (i, q) in self.qs.iter().enumerate() {
            if q.alive && self.net.reached(q.node) {
                cover.queries.insert(QueryNode(i));
            }
        }
        debug_assert_eq!(
            cover.weight,
            cover
                .updates
                .iter()
                .map(|&u| self.us[u.0].weight)
                .chain(cover.queries.iter().map(|&q| self.qs[q.0].weight))
                .sum::<u64>(),
            "cover weight must equal max-flow value"
        );
        cover
    }

    /// Rebuilds the underlying network without deleted nodes when bloat
    /// passes a threshold, carrying over the feasible flow. External handles
    /// remain valid.
    fn maybe_compact(&mut self) {
        let live = self.live_u + self.live_q + 2;
        if self.removed_nodes < 64 || self.removed_nodes < live * 4 {
            return;
        }
        self.compact();
    }

    /// Forces a compaction (normally triggered automatically).
    pub fn compact(&mut self) {
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        // Recreate live nodes and carry flows across.
        let mut new_unode = std::mem::take(&mut self.unode_scratch);
        new_unode.clear();
        new_unode.resize(self.us.len(), usize::MAX);
        for (i, u) in self.us.iter_mut().enumerate() {
            if !u.alive {
                continue;
            }
            let node = net.add_node();
            let old_flow = self.net.flow_on(u.s_edge);
            let s_edge = net.add_edge(s, node, u.weight);
            net.force_flow(s_edge, old_flow as i64);
            new_unode[i] = node;
            u.node = node;
            u.s_edge = s_edge;
        }
        for q in self.qs.iter_mut() {
            if !q.alive {
                continue;
            }
            let node = net.add_node();
            let old_flow = self.net.flow_on(q.t_edge);
            let t_edge = net.add_edge(node, t, q.weight);
            net.force_flow(t_edge, old_flow as i64);
            q.node = node;
            q.t_edge = t_edge;
        }
        // Interaction edges (only between live endpoints).
        let mut rewires = std::mem::take(&mut self.rewires);
        rewires.clear();
        for (qi, q) in self.qs.iter().enumerate() {
            if !q.alive {
                continue;
            }
            for &(e, u) in &q.edges {
                if self.us[u.0].alive {
                    rewires.push((u.0, qi, self.net.flow_on(e)));
                }
            }
        }
        for q in self.qs.iter_mut() {
            q.edges.clear();
        }
        for u in self.us.iter_mut() {
            u.edges.clear();
        }
        for &(ui, qi, flow) in &rewires {
            let e = net.add_edge(new_unode[ui], self.qs[qi].node, INF);
            net.force_flow(e, flow as i64);
            self.us[ui].edges.push((e, QueryNode(qi)));
            self.qs[qi].edges.push((e, UpdateNode(ui)));
        }
        rewires.clear();
        self.rewires = rewires;
        new_unode.clear();
        self.unode_scratch = new_unode;
        // The rebuilt network starts with cold scratch buffers; inherit
        // the old ones so post-compaction solves stay allocation-free.
        net.adopt_scratch(&mut self.net);
        self.net = net;
        self.s = s;
        self.t = t;
        self.removed_nodes = 0;
        debug_assert!(self.net.check_conservation(self.s, self.t).is_ok());
    }

    /// Sanity check: the flow is conserved. For tests.
    pub fn check(&self) -> Result<(), String> {
        self.net.check_conservation(self.s, self.t)
    }
}

/// Exhaustive minimum-weight vertex cover for tiny bipartite graphs
/// (`|U| <= 20`). Reference implementation for tests and benchmarks.
///
/// `edges` lists `(u_index, q_index)` pairs.
pub fn brute_force_cover_weight(
    u_weights: &[u64],
    q_weights: &[u64],
    edges: &[(usize, usize)],
) -> u64 {
    assert!(
        u_weights.len() <= 20,
        "brute force limited to 20 update nodes"
    );
    let mut best = u64::MAX;
    for mask in 0u32..(1 << u_weights.len()) {
        let mut w: u64 = 0;
        for (i, &uw) in u_weights.iter().enumerate() {
            if mask & (1 << i) != 0 {
                w += uw;
            }
        }
        // Every query with an edge from an unchosen u must join the cover.
        let mut q_in = vec![false; q_weights.len()];
        for &(u, q) in edges {
            if mask & (1 << u) == 0 {
                q_in[q] = true;
            }
        }
        for (q, &inc) in q_in.iter().enumerate() {
            if inc {
                w += q_weights[q];
            }
        }
        best = best.min(w);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_zero_cover() {
        let mut g = CoverGraph::new();
        let c = g.solve();
        assert_eq!(c.weight, 0);
        assert!(c.updates.is_empty() && c.queries.is_empty());
    }

    #[test]
    fn isolated_nodes_never_in_cover() {
        let mut g = CoverGraph::new();
        g.add_update(10);
        g.add_query(20);
        let c = g.solve();
        assert_eq!(c.weight, 0);
        assert!(c.updates.is_empty() && c.queries.is_empty());
    }

    #[test]
    fn single_edge_picks_cheaper_side() {
        let mut g = CoverGraph::new();
        let u = g.add_update(3);
        let q = g.add_query(10);
        g.add_interaction(u, q);
        let c = g.solve();
        assert_eq!(c.weight, 3);
        assert!(c.updates.contains(&u));
        assert!(!c.queries.contains(&q));
        assert!(!g.solve_query_membership(q));
    }

    #[test]
    fn expensive_update_ships_query() {
        let mut g = CoverGraph::new();
        let u = g.add_update(50);
        let q = g.add_query(10);
        g.add_interaction(u, q);
        let c = g.solve();
        assert_eq!(c.weight, 10);
        assert!(c.queries.contains(&q));
        assert!(g.solve_query_membership(q));
    }

    #[test]
    fn membership_matches_solve_under_every_solver() {
        for solver in [
            FlowSolver::EdmondsKarp,
            FlowSolver::Dinic,
            FlowSolver::Hybrid,
        ] {
            let mut g = CoverGraph::new();
            g.set_solver(solver);
            let u1 = g.add_update(5);
            let u2 = g.add_update(40);
            let q1 = g.add_query(4);
            let q2 = g.add_query(100);
            g.add_interaction(u1, q1);
            g.add_interaction(u1, q2);
            g.add_interaction(u2, q2);
            let m1 = g.solve_query_membership(q1);
            let m2 = g.solve_query_membership(q2);
            let c = g.solve();
            assert_eq!(m1, c.queries.contains(&q1), "{solver:?} q1");
            assert_eq!(m2, c.queries.contains(&q2), "{solver:?} q2");
        }
    }

    #[test]
    fn star_updates_shared_by_queries() {
        // One cheap update interacting with three expensive queries:
        // ship the update once instead of three queries.
        let mut g = CoverGraph::new();
        let u = g.add_update(5);
        for _ in 0..3 {
            let q = g.add_query(4);
            g.add_interaction(u, q);
        }
        let c = g.solve();
        assert_eq!(c.weight, 5);
        assert_eq!(c.updates.len(), 1);
    }

    #[test]
    fn paper_example_fig2_internal_graph() {
        // The internal interaction subgraph of Fig. 2: u1(1GB), u6(2GB)
        // both interact with q7(5GB). Shipping both updates (3GB) beats
        // shipping the query (5GB).
        let mut g = CoverGraph::new();
        let u1 = g.add_update(1);
        let u6 = g.add_update(2);
        let q7 = g.add_query(5);
        g.add_interaction(u1, q7);
        g.add_interaction(u6, q7);
        let c = g.solve();
        assert_eq!(c.weight, 3);
        assert!(c.updates.contains(&u1) && c.updates.contains(&u6));
        assert!(!c.queries.contains(&q7));
        assert!(!g.solve_query_membership(q7));
    }

    #[test]
    fn cover_covers_every_edge() {
        let mut g = CoverGraph::new();
        let us: Vec<_> = [7u64, 3, 9, 2].iter().map(|&w| g.add_update(w)).collect();
        let qs: Vec<_> = [5u64, 6, 1].iter().map(|&w| g.add_query(w)).collect();
        let edges = [(0, 0), (0, 1), (1, 1), (2, 2), (3, 0), (3, 2)];
        for &(u, q) in &edges {
            g.add_interaction(us[u], qs[q]);
        }
        let c = g.solve();
        for &(u, q) in &edges {
            assert!(
                c.updates.contains(&us[u]) || c.queries.contains(&qs[q]),
                "edge ({u},{q}) uncovered"
            );
        }
        let brute = brute_force_cover_weight(&[7, 3, 9, 2], &[5, 6, 1], &edges);
        assert_eq!(c.weight, brute);
    }

    #[test]
    fn incremental_additions_match_fresh_solve() {
        let mut g = CoverGraph::new();
        let u1 = g.add_update(4);
        let q1 = g.add_query(3);
        g.add_interaction(u1, q1);
        let w1 = g.solve().weight;
        assert_eq!(w1, 3);
        // New query raises the stakes for u1.
        let q2 = g.add_query(6);
        g.add_interaction(u1, q2);
        let c = g.solve();
        // Now shipping u1 (4) beats q1+q2 (9).
        assert_eq!(c.weight, 4);
        g.check().unwrap();
    }

    #[test]
    fn removal_cancels_flow_and_stays_feasible() {
        let mut g = CoverGraph::new();
        let u1 = g.add_update(2);
        let u2 = g.add_update(3);
        let q1 = g.add_query(4);
        let q2 = g.add_query(2);
        g.add_interaction(u1, q1);
        g.add_interaction(u2, q1);
        g.add_interaction(u2, q2);
        let _ = g.solve();
        g.remove_update(u2);
        g.check().unwrap();
        let c = g.solve();
        // Remaining graph: u1(2) -- q1(4): ship u1.
        assert_eq!(c.weight, 2);
        assert!(c.updates.contains(&u1));
        // Removing again is a no-op.
        g.remove_update(u2);
        g.check().unwrap();
    }

    #[test]
    fn remove_query_then_resolve() {
        let mut g = CoverGraph::new();
        let u = g.add_update(5);
        let q1 = g.add_query(3);
        let q2 = g.add_query(3);
        g.add_interaction(u, q1);
        g.add_interaction(u, q2);
        assert_eq!(g.solve().weight, 5); // ship u (5) vs q1+q2 (6)
        g.remove_query(q1);
        let c = g.solve();
        assert_eq!(c.weight, 3); // now just q2 vs u: ship q2
        assert!(c.queries.contains(&q2));
        g.check().unwrap();
    }

    #[test]
    fn degrees_track_liveness() {
        let mut g = CoverGraph::new();
        let u = g.add_update(1);
        let q1 = g.add_query(1);
        let q2 = g.add_query(1);
        g.add_interaction(u, q1);
        g.add_interaction(u, q2);
        assert_eq!(g.update_degree(u), 2);
        assert_eq!(g.live_interactions(), 2);
        g.remove_query(q1);
        assert_eq!(g.update_degree(u), 1);
        assert_eq!(g.query_degree(q2), 1);
        assert_eq!(g.live_interactions(), 1);
        g.remove_update(u);
        assert_eq!(g.query_degree(q2), 0);
        assert_eq!(g.live_interactions(), 0);
    }

    #[test]
    fn compaction_preserves_solution() {
        let mut g = CoverGraph::new();
        // Build, solve, remove many nodes to trigger compaction, and check
        // the survivors still solve correctly.
        let mut kept = Vec::new();
        for i in 0..200 {
            let u = g.add_update(2 + (i % 5) as u64);
            let q = g.add_query(1 + (i % 7) as u64);
            g.add_interaction(u, q);
            if i % 10 == 0 {
                kept.push((u, q));
            }
        }
        let _ = g.solve();
        for i in 0..200 {
            if i % 10 != 0 {
                g.remove_update(UpdateNode(i));
                g.remove_query(QueryNode(i));
            }
        }
        g.compact();
        g.check().unwrap();
        let c = g.solve();
        // Each surviving pair contributes min(w_u, w_q).
        let expect: u64 = kept
            .iter()
            .map(|&(u, q)| g.update_weight(u).min(g.query_weight(q)))
            .sum();
        assert_eq!(c.weight, expect);
        // Degree counters survive compaction.
        for &(u, q) in &kept {
            assert_eq!(g.update_degree(u), 1);
            assert_eq!(g.query_degree(q), 1);
        }
    }

    #[test]
    fn brute_force_sanity() {
        assert_eq!(brute_force_cover_weight(&[3], &[10], &[(0, 0)]), 3);
        assert_eq!(brute_force_cover_weight(&[10], &[3], &[(0, 0)]), 3);
        assert_eq!(brute_force_cover_weight(&[], &[], &[]), 0);
    }
}
