//! Flow networks with incremental Edmonds–Karp maximum flow.
//!
//! The Delta paper's `UpdateManager` computes minimum-weight vertex covers
//! by max-flow, *incrementally*: as queries and updates join the interaction
//! graph "the previous flow remains a valid flow though it may not be
//! maximum any more" (§4), so each recomputation only searches for the new
//! augmenting paths. [`FlowNetwork::max_flow`] is written exactly that way —
//! it never resets existing flow, so calling it after mutations performs the
//! incremental step, and calling [`FlowNetwork::reset_flow`] first gives the
//! classic from-scratch algorithm.
//!
//! ## Scratch epochs
//!
//! Every BFS over the network (augmenting-path search, residual
//! reachability) needs per-node visited/parent state. Allocating it per
//! call would put a `vec![false; n]` on the decision hot path, so the
//! network owns the buffers and stamps them with a monotonically
//! increasing **epoch**: a node is "visited in this traversal" iff
//! `mark[v] == epoch`, and bumping the epoch invalidates the whole buffer
//! in O(1). `parent[v]` is only meaningful while `mark[v]` carries the
//! current epoch, which is why both live behind the same bump.

/// Node handle within a [`FlowNetwork`].
pub type NodeId = usize;

/// Edge handle within a [`FlowNetwork`]. The reverse (residual) edge of
/// edge `e` is always `e ^ 1`.
pub type EdgeId = usize;

/// Effectively-infinite capacity that still leaves headroom against
/// accidental `u64` overflow when summing cuts.
pub const INF: u64 = u64::MAX / 4;

/// Recycled adjacency Vecs kept for reuse after node deletion (beyond
/// this, capacity is returned to the allocator).
const MAX_POOLED_ADJ: usize = 1024;

/// A directed edge with explicit flow (residual capacity is `cap - flow`).
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Head node.
    pub to: NodeId,
    /// Capacity. Reverse edges have capacity 0.
    pub cap: u64,
    /// Current flow; negative flow on a reverse edge is represented by the
    /// *forward* edge's flow, so this stays in `0..=cap` on forward edges
    /// and `-flow(fwd)` is encoded as residual headroom on the twin.
    pub flow: i64,
}

impl Edge {
    /// Residual capacity available for augmentation along this direction.
    #[inline]
    pub fn residual(&self) -> u64 {
        debug_assert!(self.flow <= self.cap as i64);
        (self.cap as i64 - self.flow) as u64
    }
}

/// An adjacency-list flow network supporting node deletion and incremental
/// max-flow.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    adj: Vec<Vec<EdgeId>>,
    edges: Vec<Edge>,
    deleted: Vec<bool>,
    /// BFS scratch: the edge that discovered each node, valid only while
    /// `mark[v] == epoch`.
    parent: Vec<EdgeId>,
    queue: Vec<NodeId>,
    /// Epoch stamps — see the module docs.
    mark: Vec<u64>,
    epoch: u64,
    /// Adjacency Vecs recycled from deleted nodes, reused by `add_node`
    /// so steady-state node churn never touches the allocator.
    free_adj: Vec<Vec<EdgeId>>,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(self.free_adj.pop().unwrap_or_default());
        self.deleted.push(false);
        self.adj.len() - 1
    }

    /// Number of nodes ever added (including deleted ones).
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of live (non-deleted) nodes.
    pub fn live_node_count(&self) -> usize {
        self.deleted.iter().filter(|&&d| !d).count()
    }

    /// Number of forward edges ever added.
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge `from -> to` with the given capacity and returns
    /// its id. A paired reverse edge (capacity 0) is created at `id ^ 1`.
    ///
    /// # Panics
    /// Panics if either endpoint is deleted or out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: u64) -> EdgeId {
        assert!(!self.deleted[from] && !self.deleted[to], "endpoint deleted");
        let id = self.edges.len();
        self.edges.push(Edge { to, cap, flow: 0 });
        self.edges.push(Edge {
            to: from,
            cap: 0,
            flow: 0,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Read access to an edge.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e]
    }

    /// Edge ids incident to `v` (both directions, forward and residual).
    /// Empty for deleted nodes (their adjacency storage is recycled).
    pub fn adjacency(&self, v: NodeId) -> &[EdgeId] {
        &self.adj[v]
    }

    /// Current flow on a forward edge (0 for unused).
    pub fn flow_on(&self, e: EdgeId) -> u64 {
        self.edges[e].flow.max(0) as u64
    }

    /// Marks a node deleted. The caller is responsible for having cancelled
    /// any flow through it first (see `force_flow`); deleted nodes are
    /// skipped by BFS and never traversed again, so their adjacency list is
    /// recycled for future nodes.
    ///
    /// # Panics
    /// Panics (in debug builds) if flow still passes through the node.
    pub fn delete_node(&mut self, v: NodeId) {
        debug_assert!(
            self.adj[v]
                .iter()
                .all(|&e| self.edges[e].flow <= 0 || self.edges[e ^ 1].flow <= 0),
            "deleting node with live flow"
        );
        debug_assert!(
            self.adj[v].iter().all(|&e| self.edges[e].flow.max(0) == 0),
            "deleting node {v} with outgoing flow"
        );
        self.deleted[v] = true;
        let mut adj = std::mem::take(&mut self.adj[v]);
        if self.free_adj.len() < MAX_POOLED_ADJ {
            adj.clear();
            self.free_adj.push(adj);
        }
    }

    /// Whether the node has been deleted.
    pub fn is_deleted(&self, v: NodeId) -> bool {
        self.deleted[v]
    }

    /// Directly adjusts the flow on edge `e` (and its twin) by `delta`.
    ///
    /// Used for structured flow cancellation (e.g. removing a node from a
    /// three-layer cover network where the rerouting is known in closed
    /// form). The caller must keep the overall flow conserved.
    pub fn force_flow(&mut self, e: EdgeId, delta: i64) {
        self.edges[e].flow += delta;
        self.edges[e ^ 1].flow -= delta;
        debug_assert!(self.edges[e].flow <= self.edges[e].cap as i64);
        debug_assert!(self.edges[e ^ 1].flow <= self.edges[e ^ 1].cap as i64);
    }

    /// Zeroes all flow (turning the next [`Self::max_flow`] into a
    /// from-scratch computation).
    pub fn reset_flow(&mut self) {
        for e in &mut self.edges {
            e.flow = 0;
        }
    }

    /// Total flow currently leaving `s`.
    pub fn flow_value(&self, s: NodeId) -> u64 {
        self.adj[s]
            .iter()
            .map(|&e| self.edges[e].flow.max(0) as u64)
            .sum()
    }

    /// Starts a fresh traversal: grows the stamp buffers to the current
    /// node count and returns the new epoch.
    #[inline]
    fn bump_epoch(&mut self) -> u64 {
        let n = self.adj.len();
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.parent.resize(n, 0);
        }
        self.epoch += 1;
        self.epoch
    }

    /// Runs Edmonds–Karp **continuing from the current flow**: repeatedly
    /// finds a shortest augmenting path and saturates it. Returns the flow
    /// *added* by this call.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> u64 {
        let mut added = 0u64;
        while let Some(bottleneck) = self.augment_once(s, t) {
            added += bottleneck;
        }
        added
    }

    /// Finds one shortest augmenting path and pushes flow along it.
    /// Returns the amount pushed, or `None` if no augmenting path exists.
    pub fn augment_once(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        debug_assert!(!self.deleted[s] && !self.deleted[t]);
        let epoch = self.bump_epoch();
        self.queue.clear();
        self.queue.push(s);
        self.mark[s] = epoch;
        let mut head = 0;
        'bfs: while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            for &e in &self.adj[v] {
                let edge = self.edges[e];
                if edge.residual() == 0 || self.deleted[edge.to] || self.mark[edge.to] == epoch {
                    continue;
                }
                self.mark[edge.to] = epoch;
                self.parent[edge.to] = e;
                if edge.to == t {
                    break 'bfs;
                }
                self.queue.push(edge.to);
            }
        }
        if self.mark[t] != epoch {
            return None;
        }
        // Walk back to find the bottleneck.
        let mut bottleneck = u64::MAX;
        let mut v = t;
        while v != s {
            let e = self.parent[v];
            bottleneck = bottleneck.min(self.edges[e].residual());
            v = self.edges[e ^ 1].to;
        }
        debug_assert!(bottleneck > 0);
        // Apply.
        let mut v = t;
        while v != s {
            let e = self.parent[v];
            self.edges[e].flow += bottleneck as i64;
            self.edges[e ^ 1].flow -= bottleneck as i64;
            v = self.edges[e ^ 1].to;
        }
        Some(bottleneck)
    }

    /// Whether `target` is reachable from `s` in the residual graph —
    /// the single-node question behind a cover membership test. Early
    /// exits the moment `target` is discovered, so a query node adjacent
    /// to a reachable update node settles without scanning the rest of
    /// the graph. Allocation-free (epoch-stamped scratch).
    pub fn residual_reaches(&mut self, s: NodeId, target: NodeId) -> bool {
        if self.deleted[s] || self.deleted[target] {
            return false;
        }
        if s == target {
            return true;
        }
        let epoch = self.bump_epoch();
        self.queue.clear();
        self.queue.push(s);
        self.mark[s] = epoch;
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            for &e in &self.adj[v] {
                let edge = self.edges[e];
                if edge.residual() == 0 || self.deleted[edge.to] || self.mark[edge.to] == epoch {
                    continue;
                }
                if edge.to == target {
                    return true;
                }
                self.mark[edge.to] = epoch;
                self.queue.push(edge.to);
            }
        }
        false
    }

    /// Stamps every node reachable from `s` in the residual graph with a
    /// fresh epoch; query the result with [`Self::reached`]. This is the
    /// allocation-free form of [`Self::residual_reachable`] used by full
    /// cover extraction. The stamps stay valid until the next traversal.
    pub fn mark_residual_reachable(&mut self, s: NodeId) {
        let epoch = self.bump_epoch();
        if self.deleted[s] {
            return;
        }
        self.queue.clear();
        self.queue.push(s);
        self.mark[s] = epoch;
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            for &e in &self.adj[v] {
                let edge = self.edges[e];
                if edge.residual() > 0 && !self.deleted[edge.to] && self.mark[edge.to] != epoch {
                    self.mark[edge.to] = epoch;
                    self.queue.push(edge.to);
                }
            }
        }
    }

    /// Whether `v` was stamped by the most recent
    /// [`Self::mark_residual_reachable`] traversal.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.mark.get(v).is_some_and(|&m| m == self.epoch)
    }

    /// Nodes reachable from `s` in the residual graph (deleted nodes are
    /// never reachable). This is the min-cut side used for vertex-cover
    /// extraction. Allocates its result — tests and offline callers only;
    /// the hot path uses [`Self::mark_residual_reachable`] /
    /// [`Self::residual_reaches`].
    pub fn residual_reachable(&mut self, s: NodeId) -> Vec<bool> {
        self.mark_residual_reachable(s);
        (0..self.adj.len()).map(|v| self.reached(v)).collect()
    }

    /// Moves the reusable scratch capacity out of `old` (typically the
    /// pre-compaction network about to be dropped) so a rebuilt network
    /// starts warm instead of re-growing its buffers from zero.
    pub(crate) fn adopt_scratch(&mut self, old: &mut FlowNetwork) {
        // Stamps are only comparable against the epoch they were written
        // under; the adopted buffers come pre-invalidated because this
        // network's epoch restarts while the marks keep `old`'s values —
        // strictly larger once `old.epoch` is inherited.
        self.epoch = self.epoch.max(old.epoch);
        let mut mark = std::mem::take(&mut old.mark);
        mark.clear();
        mark.resize(self.adj.len(), 0);
        self.mark = mark;
        let mut parent = std::mem::take(&mut old.parent);
        parent.clear();
        parent.resize(self.adj.len(), 0);
        self.parent = parent;
        self.queue = std::mem::take(&mut old.queue);
        self.queue.clear();
        self.free_adj = std::mem::take(&mut old.free_adj);
    }

    /// Verifies flow conservation at every live node except `s` and `t`.
    /// Intended for tests and debug assertions.
    pub fn check_conservation(&self, s: NodeId, t: NodeId) -> Result<(), String> {
        let n = self.adj.len();
        let mut net = vec![0i64; n];
        for (i, e) in self.edges.iter().enumerate() {
            if i % 2 == 0 {
                let from = self.edges[i ^ 1].to;
                if e.flow < 0 {
                    return Err(format!("negative flow {} on forward edge {i}", e.flow));
                }
                if e.flow > e.cap as i64 {
                    return Err(format!("flow exceeds capacity on edge {i}"));
                }
                net[from] -= e.flow;
                net[e.to] += e.flow;
            }
        }
        for (v, &flow) in net.iter().enumerate() {
            if v == s || v == t || self.deleted[v] {
                continue;
            }
            if flow != 0 {
                return Err(format!("conservation violated at node {v}: net {flow}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CLRS figure network: known max flow 23.
    fn clrs_network() -> (FlowNetwork, NodeId, NodeId) {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let v1 = g.add_node();
        let v2 = g.add_node();
        let v3 = g.add_node();
        let v4 = g.add_node();
        let t = g.add_node();
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v3, 12);
        g.add_edge(v2, v1, 4);
        g.add_edge(v2, v4, 14);
        g.add_edge(v3, v2, 9);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, v3, 7);
        g.add_edge(v4, t, 4);
        (g, s, t)
    }

    #[test]
    fn clrs_max_flow() {
        let (mut g, s, t) = clrs_network();
        assert_eq!(g.max_flow(s, t), 23);
        assert_eq!(g.flow_value(s), 23);
        g.check_conservation(s, t).unwrap();
        // Converged: another call adds nothing.
        assert_eq!(g.max_flow(s, t), 0);
    }

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, 7);
        assert_eq!(g.max_flow(s, t), 7);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        let _u = g.add_node();
        assert_eq!(g.max_flow(s, t), 0);
    }

    #[test]
    fn incremental_matches_scratch() {
        // Build half the CLRS network, flow, add the rest, flow again:
        // total must equal the from-scratch value.
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let v1 = g.add_node();
        let v2 = g.add_node();
        let v3 = g.add_node();
        let v4 = g.add_node();
        let t = g.add_node();
        g.add_edge(s, v1, 16);
        g.add_edge(v1, v3, 12);
        g.add_edge(v3, t, 20);
        let f1 = g.max_flow(s, t);
        assert_eq!(f1, 12);
        g.add_edge(s, v2, 13);
        g.add_edge(v2, v1, 4);
        g.add_edge(v2, v4, 14);
        g.add_edge(v3, v2, 9);
        g.add_edge(v4, v3, 7);
        g.add_edge(v4, t, 4);
        let f2 = g.max_flow(s, t);
        assert_eq!(f1 + f2, 23);
        g.check_conservation(s, t).unwrap();
    }

    #[test]
    fn reset_flow_restores_scratch() {
        let (mut g, s, t) = clrs_network();
        g.max_flow(s, t);
        g.reset_flow();
        assert_eq!(g.flow_value(s), 0);
        assert_eq!(g.max_flow(s, t), 23);
    }

    #[test]
    fn residual_reachability_defines_min_cut() {
        let (mut g, s, t) = clrs_network();
        g.max_flow(s, t);
        let reach = g.residual_reachable(s);
        assert!(reach[s]);
        assert!(!reach[t], "t reachable => flow not maximum");
        // Cut capacity across (reach, !reach) equals the flow value.
        let mut cut = 0u64;
        for v in 0..g.node_count() {
            if !reach[v] {
                continue;
            }
            for &e in &g.adj[v] {
                if e % 2 == 0 && !reach[g.edges[e].to] {
                    cut += g.edges[e].cap;
                }
            }
        }
        assert_eq!(cut, 23);
    }

    #[test]
    fn targeted_reachability_agrees_with_full_scan() {
        let (mut g, s, t) = clrs_network();
        g.max_flow(s, t);
        let reach = g.residual_reachable(s);
        for (v, &full) in reach.iter().enumerate() {
            assert_eq!(
                g.residual_reaches(s, v),
                full,
                "early-exit disagrees at node {v}"
            );
        }
        assert!(!g.residual_reaches(s, t));
    }

    #[test]
    fn deleted_nodes_are_skipped() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let m1 = g.add_node();
        let m2 = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m1, 5);
        g.add_edge(m1, t, 5);
        g.add_edge(s, m2, 3);
        g.add_edge(m2, t, 3);
        g.delete_node(m2);
        assert_eq!(g.max_flow(s, t), 5, "only the live path should carry flow");
        assert!(!g.residual_reaches(s, m2), "deleted target is unreachable");
    }

    #[test]
    fn recycled_adjacency_starts_empty() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 3);
        g.add_edge(a, t, 3);
        assert_eq!(g.max_flow(s, t), 3);
        // Cancel and delete a, then add a fresh node: it must not inherit
        // a's edges.
        g.force_flow(0, -3);
        g.force_flow(2, -3);
        g.delete_node(a);
        let b = g.add_node();
        assert!(g.adjacency(b).is_empty());
        g.add_edge(s, b, 2);
        g.add_edge(b, t, 2);
        assert_eq!(g.max_flow(s, t), 2);
    }

    #[test]
    #[should_panic(expected = "endpoint deleted")]
    fn add_edge_to_deleted_panics() {
        let mut g = FlowNetwork::new();
        let a = g.add_node();
        let b = g.add_node();
        g.delete_node(b);
        g.add_edge(a, b, 1);
    }
}
