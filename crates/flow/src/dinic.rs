//! Dinic's blocking-flow algorithm, as an alternative max-flow solver.
//!
//! The paper's UpdateManager uses incremental Edmonds–Karp (§4) because
//! its structure — "begin with a previous flow and search for augmenting
//! paths" — is exactly what the remainder-subgraph maintenance needs.
//! Dinic's algorithm (level graph + blocking flow, `O(V²E)`, and
//! `O(E√V)` on the unit-ish bipartite networks vertex covers produce) is
//! the standard faster-from-scratch alternative; this module provides it
//! over the same [`FlowNetwork`] so the two can be cross-checked
//! property-test style and raced in the `flow_incremental` bench.
//!
//! Like [`FlowNetwork::max_flow`], [`dinic_max_flow`] *augments on top of
//! whatever flow is already present* (the level/blocking machinery only
//! ever looks at residuals), so it can also be used incrementally.

use crate::graph::{EdgeId, FlowNetwork, NodeId};

/// Reusable per-solver state for [`dinic_max_flow_with`]: the level
/// graph, per-node arc iterators, BFS queue and DFS path stack. Owning
/// one and passing it to every call keeps repeated solves (the cover
/// hot path) allocation-free after the first.
#[derive(Clone, Debug, Default)]
pub struct DinicScratch {
    level: Vec<u32>,
    it: Vec<usize>,
    queue: Vec<NodeId>,
    path: Vec<(NodeId, EdgeId)>,
}

/// Runs Dinic's algorithm from `s` to `t` on top of the existing flow and
/// returns the *additional* flow pushed. Convenience wrapper over
/// [`dinic_max_flow_with`] that allocates fresh scratch.
///
/// # Panics
/// Panics if `s == t` or either endpoint is deleted.
pub fn dinic_max_flow(net: &mut FlowNetwork, s: NodeId, t: NodeId) -> u64 {
    let mut scratch = DinicScratch::default();
    dinic_max_flow_with(net, s, t, &mut scratch)
}

/// [`dinic_max_flow`] with caller-owned scratch buffers (no allocation
/// once the buffers have grown to the network's size).
///
/// # Panics
/// Panics if `s == t` or either endpoint is deleted.
pub fn dinic_max_flow_with(
    net: &mut FlowNetwork,
    s: NodeId,
    t: NodeId,
    scratch: &mut DinicScratch,
) -> u64 {
    assert_ne!(s, t, "source and sink must differ");
    assert!(!net.is_deleted(s) && !net.is_deleted(t), "endpoint deleted");
    let n = net.node_count();
    let DinicScratch {
        level,
        it,
        queue,
        path,
    } = scratch;
    level.clear();
    level.resize(n, u32::MAX);
    it.clear();
    it.resize(n, 0);
    let mut pushed_total = 0u64;

    loop {
        // ---- BFS: build the level graph over residual edges ----
        level.iter_mut().for_each(|l| *l = u32::MAX);
        level[s] = 0;
        queue.clear();
        queue.push(s);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for &e in net.adjacency(v) {
                let edge = net.edge(e);
                if edge.residual() > 0 && !net.is_deleted(edge.to) && level[edge.to] == u32::MAX {
                    level[edge.to] = level[v] + 1;
                    queue.push(edge.to);
                }
            }
        }
        if level[t] == u32::MAX {
            return pushed_total; // no augmenting path remains
        }

        // ---- DFS: push a blocking flow along level-increasing edges ----
        it.iter_mut().for_each(|i| *i = 0);
        loop {
            let pushed = dfs_push(net, s, t, u64::MAX, level, it, path);
            if pushed == 0 {
                break;
            }
            pushed_total += pushed;
        }
    }
}

/// Iterative DFS push (explicit stack: interaction graphs can be deep).
fn dfs_push(
    net: &mut FlowNetwork,
    s: NodeId,
    t: NodeId,
    limit: u64,
    level: &[u32],
    it: &mut [usize],
    path: &mut Vec<(NodeId, EdgeId)>,
) -> u64 {
    // Stack of (node, edge taken) along the current path.
    path.clear();
    let mut v = s;
    let mut bottleneck = limit;
    loop {
        if v == t {
            // Apply the bottleneck along the recorded path.
            let pushed = bottleneck;
            for &(_, e) in path.iter() {
                net.force_flow(e, pushed as i64);
            }
            return pushed;
        }
        let mut advanced = false;
        while it[v] < net.adjacency(v).len() {
            let e = net.adjacency(v)[it[v]];
            let edge = net.edge(e);
            let to = edge.to;
            if edge.residual() > 0 && !net.is_deleted(to) && level[to] == level[v].saturating_add(1)
            {
                bottleneck = bottleneck.min(edge.residual());
                path.push((v, e));
                v = to;
                advanced = true;
                break;
            }
            it[v] += 1;
        }
        if advanced {
            continue;
        }
        // Dead end: retreat (or give up at the source).
        match path.pop() {
            None => return 0,
            Some((prev, _)) => {
                it[prev] += 1;
                v = prev;
                // Recompute the bottleneck for the shortened path.
                bottleneck = limit;
                for &(_, e) in path.iter() {
                    bottleneck = bottleneck.min(net.edge(e).residual());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::INF;

    /// The classic 6-node example: max flow 23.
    fn clrs_network() -> (FlowNetwork, NodeId, NodeId) {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let v1 = g.add_node();
        let v2 = g.add_node();
        let v3 = g.add_node();
        let v4 = g.add_node();
        let t = g.add_node();
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v3, 12);
        g.add_edge(v2, v1, 4);
        g.add_edge(v2, v4, 14);
        g.add_edge(v3, v2, 9);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, v3, 7);
        g.add_edge(v4, t, 4);
        (g, s, t)
    }

    #[test]
    fn clrs_example_flow_is_23() {
        let (mut g, s, t) = clrs_network();
        assert_eq!(dinic_max_flow(&mut g, s, t), 23);
        assert_eq!(g.flow_value(s), 23);
    }

    #[test]
    fn agrees_with_edmonds_karp() {
        let (mut a, s, t) = clrs_network();
        let (mut b, ..) = clrs_network();
        assert_eq!(dinic_max_flow(&mut a, s, t), b.max_flow(s, t));
    }

    #[test]
    fn incremental_use_tops_up_existing_flow() {
        let (mut g, s, t) = clrs_network();
        // Partially saturate with Edmonds–Karp...
        let first = g.augment_once(s, t).expect("a path exists");
        assert!(first > 0 && first < 23);
        // ...then let Dinic finish the job.
        let rest = dinic_max_flow(&mut g, s, t);
        assert_eq!(first + rest, 23);
    }

    #[test]
    fn respects_deleted_nodes() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 5);
        g.add_edge(a, t, 5);
        g.add_edge(s, b, 7);
        g.add_edge(b, t, 7);
        g.delete_node(b);
        assert_eq!(
            dinic_max_flow(&mut g, s, t),
            5,
            "only the live path carries flow"
        );
    }

    #[test]
    fn saturated_network_pushes_nothing_more() {
        let (mut g, s, t) = clrs_network();
        assert_eq!(dinic_max_flow(&mut g, s, t), 23);
        assert_eq!(dinic_max_flow(&mut g, s, t), 0, "idempotent once maximum");
    }

    #[test]
    fn infinite_capacity_edges_dont_overflow() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m, INF);
        g.add_edge(m, t, 42);
        assert_eq!(dinic_max_flow(&mut g, s, t), 42);
    }
}
