//! # delta-flow — max-flow and vertex-cover engine
//!
//! The combinatorial core of Delta's `UpdateManager` (paper §3.1/§4):
//!
//! * [`FlowNetwork`] — adjacency-list flow network with **incremental**
//!   Edmonds–Karp: `max_flow` continues from whatever feasible flow is
//!   present, so re-solving after graph growth costs only the new
//!   augmenting paths (the `O(nm²)` total-work bound of §4 versus
//!   `O(n²m²)` for repeated from-scratch runs).
//! * [`dinic_max_flow`] — Dinic's blocking-flow algorithm over the same
//!   network, cross-checked against Edmonds–Karp and raced in the
//!   benches (the standard faster-from-scratch alternative).
//! * [`CoverGraph`] — the bipartite update/query interaction graph with
//!   minimum-weight vertex cover via the max-flow reduction, node removal
//!   with closed-form flow cancellation (the paper's *remainder subgraph*),
//!   and automatic compaction.
//!
//! ```
//! use delta_flow::CoverGraph;
//!
//! let mut g = CoverGraph::new();
//! let u = g.add_update(3);   // shipping this update costs 3 units
//! let q = g.add_query(10);   // shipping this query costs 10 units
//! g.add_interaction(u, q);   // q needs u's data to be current
//! let cover = g.solve();
//! assert_eq!(cover.weight, 3);           // cheaper to ship the update
//! assert!(cover.updates.contains(&u));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cover;
pub mod dinic;
pub mod graph;

pub use cover::{brute_force_cover_weight, Cover, CoverGraph, FlowSolver, QueryNode, UpdateNode};
pub use dinic::{dinic_max_flow, dinic_max_flow_with, DinicScratch};
pub use graph::{Edge, EdgeId, FlowNetwork, NodeId, INF};
