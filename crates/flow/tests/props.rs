//! Property-based tests: the incremental cover engine against brute force
//! and against from-scratch recomputation under random mutation sequences.

use delta_flow::{
    brute_force_cover_weight, CoverGraph, FlowNetwork, FlowSolver, QueryNode, UpdateNode,
};
use proptest::prelude::*;

/// A small random bipartite instance.
#[derive(Clone, Debug)]
struct Instance {
    u_weights: Vec<u64>,
    q_weights: Vec<u64>,
    edges: Vec<(usize, usize)>,
}

fn arb_instance(max_side: usize, max_edges: usize) -> impl Strategy<Value = Instance> {
    (1..=max_side, 1..=max_side).prop_flat_map(move |(nu, nq)| {
        (
            proptest::collection::vec(1u64..100, nu),
            proptest::collection::vec(1u64..100, nq),
            proptest::collection::vec((0..nu, 0..nq), 0..=max_edges),
        )
            .prop_map(|(u_weights, q_weights, edges)| Instance {
                u_weights,
                q_weights,
                edges,
            })
    })
}

fn build(inst: &Instance) -> (CoverGraph, Vec<UpdateNode>, Vec<QueryNode>) {
    let mut g = CoverGraph::new();
    let us: Vec<_> = inst.u_weights.iter().map(|&w| g.add_update(w)).collect();
    let qs: Vec<_> = inst.q_weights.iter().map(|&w| g.add_query(w)).collect();
    for &(u, q) in &inst.edges {
        g.add_interaction(us[u], qs[q]);
    }
    (g, us, qs)
}

proptest! {
    /// Solver weight equals exhaustive minimum, and the returned sets
    /// really cover every edge.
    #[test]
    fn cover_is_optimal_and_valid(inst in arb_instance(7, 16)) {
        let (mut g, us, qs) = build(&inst);
        let c = g.solve();
        let brute = brute_force_cover_weight(&inst.u_weights, &inst.q_weights, &inst.edges);
        prop_assert_eq!(c.weight, brute);
        for &(u, q) in &inst.edges {
            prop_assert!(
                c.updates.contains(&us[u]) || c.queries.contains(&qs[q]),
                "edge uncovered"
            );
        }
        g.check().unwrap();
    }

    /// Adding nodes/edges one at a time and re-solving (incremental) ends
    /// at the same weight as solving the final graph fresh.
    #[test]
    fn incremental_equals_scratch(inst in arb_instance(8, 20)) {
        let mut g = CoverGraph::new();
        let us: Vec<_> = inst.u_weights.iter().map(|&w| g.add_update(w)).collect();
        let qs: Vec<_> = inst.q_weights.iter().map(|&w| g.add_query(w)).collect();
        for &(u, q) in &inst.edges {
            g.add_interaction(us[u], qs[q]);
            let _ = g.solve(); // solve after every mutation
        }
        let inc = g.solve().weight;
        let (mut fresh, _, _) = build(&inst);
        prop_assert_eq!(inc, fresh.solve().weight);
    }

    /// Random interleavings of removals keep the flow feasible and the
    /// cover equal to a fresh solve on the surviving subgraph.
    #[test]
    fn removals_match_fresh_subgraph(
        inst in arb_instance(8, 20),
        removals in proptest::collection::vec((proptest::bool::ANY, 0usize..8), 0..8),
    ) {
        let (mut g, us, qs) = build(&inst);
        let _ = g.solve();
        let mut dead_u = vec![false; inst.u_weights.len()];
        let mut dead_q = vec![false; inst.q_weights.len()];
        for (is_u, idx) in removals {
            if is_u {
                if idx < us.len() {
                    g.remove_update(us[idx]);
                    dead_u[idx] = true;
                }
            } else if idx < qs.len() {
                g.remove_query(qs[idx]);
                dead_q[idx] = true;
            }
            g.check().unwrap();
        }
        let inc = g.solve().weight;

        // Fresh graph over survivors.
        let su: Vec<u64> = inst.u_weights.iter().enumerate()
            .filter(|&(i, _)| !dead_u[i]).map(|(_, &w)| w).collect();
        let sq: Vec<u64> = inst.q_weights.iter().enumerate()
            .filter(|&(i, _)| !dead_q[i]).map(|(_, &w)| w).collect();
        let remap_u: Vec<usize> = {
            let mut m = vec![usize::MAX; inst.u_weights.len()];
            let mut k = 0;
            for i in 0..inst.u_weights.len() {
                if !dead_u[i] { m[i] = k; k += 1; }
            }
            m
        };
        let remap_q: Vec<usize> = {
            let mut m = vec![usize::MAX; inst.q_weights.len()];
            let mut k = 0;
            for i in 0..inst.q_weights.len() {
                if !dead_q[i] { m[i] = k; k += 1; }
            }
            m
        };
        let sedges: Vec<(usize, usize)> = inst.edges.iter()
            .filter(|&&(u, q)| !dead_u[u] && !dead_q[q])
            .map(|&(u, q)| (remap_u[u], remap_q[q]))
            .collect();
        let brute = brute_force_cover_weight(&su, &sq, &sedges);
        prop_assert_eq!(inc, brute);
    }

    /// Raw max-flow: flow value is invariant to edge insertion order.
    #[test]
    fn flow_order_invariant(
        n in 2usize..8,
        edges in proptest::collection::vec((0usize..8, 0usize..8, 1u64..50), 1..24),
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let edges: Vec<_> = edges.into_iter()
            .filter(|&(a, b, _)| a < n && b < n && a != b)
            .collect();
        let build_net = |order: &[(usize, usize, u64)]| {
            let mut g = FlowNetwork::new();
            for _ in 0..n {
                g.add_node();
            }
            for &(a, b, c) in order {
                g.add_edge(a, b, c);
            }
            g
        };
        let mut g1 = build_net(&edges);
        let f1 = g1.max_flow(0, n - 1);
        let mut shuffled = edges.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        shuffled.shuffle(&mut rng);
        let mut g2 = build_net(&shuffled);
        let f2 = g2.max_flow(0, n - 1);
        prop_assert_eq!(f1, f2);
        g1.check_conservation(0, n - 1).unwrap();
    }
}

proptest! {
    /// Dinic and Edmonds–Karp compute the same maximum flow on random
    /// bipartite cover networks (and on the raw networks they induce).
    #[test]
    fn dinic_equals_edmonds_karp(inst in arb_instance(8, 24)) {
        use delta_flow::dinic_max_flow;
        // Build the same source/update/query/sink network twice.
        let build_net = |inst: &Instance| {
            let mut net = FlowNetwork::new();
            let s = net.add_node();
            let t = net.add_node();
            let us: Vec<_> = inst.u_weights.iter().map(|&w| {
                let v = net.add_node();
                net.add_edge(s, v, w);
                v
            }).collect();
            let qs: Vec<_> = inst.q_weights.iter().map(|&w| {
                let v = net.add_node();
                net.add_edge(v, t, w);
                v
            }).collect();
            for &(u, q) in &inst.edges {
                net.add_edge(us[u], qs[q], delta_flow::INF);
            }
            (net, s, t)
        };
        let (mut ek_net, s, t) = build_net(&inst);
        let (mut di_net, ..) = build_net(&inst);
        let ek = ek_net.max_flow(s, t);
        let di = dinic_max_flow(&mut di_net, s, t);
        prop_assert_eq!(ek, di, "solver disagreement");
        prop_assert_eq!(di_net.flow_value(s), ek_net.flow_value(s));
    }

    /// Dinic run on a *partially* saturated network (some Edmonds–Karp
    /// augmentations already applied) still reaches the same maximum.
    #[test]
    fn dinic_tops_up_partial_flows(inst in arb_instance(8, 24), steps in 0usize..4) {
        use delta_flow::dinic_max_flow;
        let mut net = FlowNetwork::new();
        let s = net.add_node();
        let t = net.add_node();
        let us: Vec<_> = inst.u_weights.iter().map(|&w| {
            let v = net.add_node();
            net.add_edge(s, v, w);
            v
        }).collect();
        let qs: Vec<_> = inst.q_weights.iter().map(|&w| {
            let v = net.add_node();
            net.add_edge(v, t, w);
            v
        }).collect();
        for &(u, q) in &inst.edges {
            net.add_edge(us[u], qs[q], delta_flow::INF);
        }
        let mut reference = net.clone();
        let want = reference.max_flow(s, t);
        let mut partial = 0u64;
        for _ in 0..steps {
            match net.augment_once(s, t) {
                Some(f) => partial += f,
                None => break,
            }
        }
        let rest = dinic_max_flow(&mut net, s, t);
        prop_assert_eq!(partial + rest, want);
    }
}

const ALL_SOLVERS: [FlowSolver; 3] = [
    FlowSolver::EdmondsKarp,
    FlowSolver::Dinic,
    FlowSolver::Hybrid,
];

proptest! {
    /// The targeted membership probe agrees with the full extraction for
    /// every live query — under every solver strategy, across random
    /// mutation sequences that include removals and forced compactions.
    /// This is the fast path `UpdateManager::decide` actually takes; the
    /// full `solve()` survives only for tests and stats, so the two must
    /// never drift.
    #[test]
    fn membership_equals_full_solve(
        inst in arb_instance(8, 20),
        ops in proptest::collection::vec((proptest::bool::ANY, 0usize..8), 0..10),
        compact_at in 0usize..10,
    ) {
        for solver in ALL_SOLVERS {
            let (mut g, us, qs) = build(&inst);
            g.set_solver(solver);
            for (i, &(is_u, idx)) in ops.iter().enumerate() {
                if is_u {
                    if idx < us.len() && g.update_alive(us[idx]) {
                        g.remove_update(us[idx]);
                    }
                } else if idx < qs.len() && g.query_alive(qs[idx]) {
                    g.remove_query(qs[idx]);
                }
                if i == compact_at {
                    g.compact();
                }
                // Interleave probes with mutations so scratch epochs from
                // a previous solve never leak into the next one.
                for &qn in &qs {
                    if g.query_alive(qn) {
                        let member = g.solve_query_membership(qn);
                        let full = g.solve();
                        prop_assert_eq!(
                            member,
                            full.queries.contains(&qn),
                            "membership drifted from extraction under {:?}",
                            solver
                        );
                    }
                }
            }
            g.compact();
            let cover = g.solve();
            for &qn in &qs {
                if g.query_alive(qn) {
                    prop_assert_eq!(g.solve_query_membership(qn), cover.queries.contains(&qn));
                }
            }
            g.check().unwrap();
        }
    }

    /// All three solver strategies produce the *identical* cover — same
    /// weight, same vertex sets — because the residual-reachable set of
    /// any maximum flow is the canonical minimal source-side min cut.
    /// Byte-identical ledgers across solver choices depend on this.
    #[test]
    fn solvers_agree_on_cover(
        inst in arb_instance(8, 24),
        removals in proptest::collection::vec((proptest::bool::ANY, 0usize..8), 0..6),
    ) {
        let mut covers = Vec::new();
        for solver in ALL_SOLVERS {
            let (mut g, us, qs) = build(&inst);
            g.set_solver(solver);
            let _ = g.solve(); // saturate before mutating, like the engine
            for &(is_u, idx) in &removals {
                if is_u {
                    if idx < us.len() && g.update_alive(us[idx]) {
                        g.remove_update(us[idx]);
                    }
                } else if idx < qs.len() && g.query_alive(qs[idx]) {
                    g.remove_query(qs[idx]);
                }
            }
            covers.push(g.solve());
        }
        for c in &covers[1..] {
            prop_assert_eq!(c.weight, covers[0].weight);
            prop_assert_eq!(&c.updates, &covers[0].updates);
            prop_assert_eq!(&c.queries, &covers[0].queries);
        }
    }
}
