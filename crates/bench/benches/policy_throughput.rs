//! Replacement-policy microbenchmarks: GDS vs LRU vs LFU request
//! throughput, and the lazy-batch planner — the `A_obj` ablation for the
//! LoadManager.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use delta_policy::{lazy, GreedyDualSize, Lfu, Lru, ReplacementPolicy};
use delta_storage::ObjectId;
use std::hint::black_box;

fn drive<P: ReplacementPolicy>(p: &mut P, n: u64) -> u64 {
    let mut evictions = 0;
    for i in 0..n {
        let id = ObjectId((i * 2654435761 % 200) as u32);
        let size = 10 + id.0 as u64 % 50;
        let adm = p.request(id, size, size);
        evictions += adm.evicted.len() as u64;
    }
    evictions
}

fn bench_policies(c: &mut Criterion) {
    const N: u64 = 10_000;
    let mut g = c.benchmark_group("policy_throughput");
    g.throughput(Throughput::Elements(N));
    g.bench_function("gds_requests", |b| {
        b.iter(|| black_box(drive(&mut GreedyDualSize::new(2_000), N)))
    });
    g.bench_function("lru_requests", |b| {
        b.iter(|| black_box(drive(&mut Lru::new(2_000), N)))
    });
    g.bench_function("lfu_requests", |b| {
        b.iter(|| black_box(drive(&mut Lfu::new(2_000), N)))
    });
    g.bench_function("lazy_batch_plan", |b| {
        let candidates: Vec<(ObjectId, u64, u64)> = (0..32u32)
            .map(|i| (ObjectId(i), 50 + (i as u64 * 13) % 100, 100))
            .collect();
        b.iter(|| {
            let mut gds = GreedyDualSize::new(1_000);
            black_box(lazy::plan_batch(&mut gds, &candidates).load.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
