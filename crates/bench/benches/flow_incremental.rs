//! §4 complexity claim: incremental max-flow over a growing interaction
//! graph does the work of roughly *one* from-scratch computation, versus
//! re-running Edmonds-Karp after every arrival (O(nm^2) vs O(n^2 m^2)).
//!
//! `incremental` solves after every insertion but reuses flow;
//! `from_scratch_each_time` resets and recomputes after every insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delta_flow::{dinic_max_flow, CoverGraph, FlowNetwork, INF};
use std::hint::black_box;

/// Deterministic pseudo-random bipartite instance.
fn instance(n: usize) -> Vec<(u64, u64, Vec<usize>)> {
    // (update weight, query weight, update indices the query touches)
    let mut out = Vec::with_capacity(n);
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..n {
        let uw = next() % 90 + 10;
        let qw = next() % 90 + 10;
        let deg = (next() % 3 + 1) as usize;
        let edges = (0..deg).map(|_| (next() as usize) % (i + 1)).collect();
        out.push((uw, qw, edges));
    }
    out
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_incremental");
    g.sample_size(10);
    for n in [100usize, 400, 800] {
        let inst = instance(n);
        g.bench_with_input(BenchmarkId::new("incremental", n), &inst, |b, inst| {
            b.iter(|| {
                let mut cg = CoverGraph::new();
                let mut us = Vec::new();
                for (uw, qw, edges) in inst {
                    let u = cg.add_update(*uw);
                    us.push(u);
                    let q = cg.add_query(*qw);
                    for &e in edges {
                        cg.add_interaction(us[e], q);
                    }
                    black_box(cg.solve().weight);
                }
            })
        });
        g.bench_with_input(
            BenchmarkId::new("from_scratch_each_time", n),
            &inst,
            |b, inst| {
                b.iter(|| {
                    // Rebuild the whole graph after every arrival: the
                    // non-incremental baseline.
                    for k in 1..=inst.len() {
                        let mut cg = CoverGraph::new();
                        let mut us = Vec::new();
                        for (uw, qw, edges) in &inst[..k] {
                            let u = cg.add_update(*uw);
                            us.push(u);
                            let q = cg.add_query(*qw);
                            for &e in edges {
                                cg.add_interaction(us[e], q);
                            }
                        }
                        black_box(cg.solve().weight);
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_incremental, bench_solvers);
criterion_main!(benches);

/// From-scratch solver race on one big bipartite network: Edmonds–Karp
/// vs Dinic (the blocking-flow alternative; expected to win as instances
/// grow).
fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_solvers");
    g.sample_size(10);
    for n in [200usize, 800, 2_000] {
        let inst = instance(n);
        let build = |inst: &[(u64, u64, Vec<usize>)]| {
            let mut net = FlowNetwork::new();
            let s = net.add_node();
            let t = net.add_node();
            let mut us = Vec::new();
            let mut qs = Vec::new();
            for (uw, qw, _) in inst {
                let u = net.add_node();
                net.add_edge(s, u, *uw);
                us.push(u);
                let q = net.add_node();
                net.add_edge(q, t, *qw);
                qs.push(q);
            }
            for (i, (_, _, edges)) in inst.iter().enumerate() {
                for &e in edges {
                    net.add_edge(us[e], qs[i], INF);
                }
            }
            (net, s, t)
        };
        g.bench_with_input(BenchmarkId::new("edmonds_karp", n), &inst, |b, inst| {
            b.iter(|| {
                let (mut net, s, t) = build(inst);
                black_box(net.max_flow(s, t))
            })
        });
        g.bench_with_input(BenchmarkId::new("dinic", n), &inst, |b, inst| {
            b.iter(|| {
                let (mut net, s, t) = build(inst);
                black_box(dinic_max_flow(&mut net, s, t))
            })
        });
    }
    g.finish();
}
