//! Microbenchmark for the Theorem-1 hindsight solver: cost of building
//! and exactly solving the full-trace interaction graph as the trace
//! grows. Confirms the expected super-linear growth that motivates
//! VCover's *incremental* remainder-subgraph approach for the online
//! setting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delta_core::hindsight_decoupling;
use delta_workload::{SyntheticSurvey, WorkloadConfig};
use std::collections::HashSet;
use std::hint::black_box;

fn bench_hindsight(c: &mut Criterion) {
    let mut g = c.benchmark_group("hindsight_cover");
    g.sample_size(10);
    for n in [500usize, 1_000, 2_000, 4_000] {
        let mut cfg = WorkloadConfig::small();
        cfg.n_queries = n;
        cfg.n_updates = n;
        let s = SyntheticSurvey::generate(&cfg);
        // Cache the denser half of the catalog, as SOptimal tends to.
        let mut ids: Vec<_> = s.catalog.ids().collect();
        ids.sort_by_key(|&o| std::cmp::Reverse(s.catalog.size(o)));
        let cached: HashSet<_> = ids.into_iter().take(s.catalog.len() / 2).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| hindsight_decoupling(black_box(&s.catalog), &s.trace, &cached))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hindsight);
criterion_main!(benches);
