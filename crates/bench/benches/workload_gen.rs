//! Criterion bench for the Fig. 7(a) substrate: trace-generation
//! throughput (sky model, HTM partitioning, query/update streams).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use delta_workload::{fig7a_series, SyntheticSurvey, WorkloadConfig};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = 5_000;
    cfg.n_updates = 5_000;

    let mut g = c.benchmark_group("workload_gen");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cfg.n_events() as u64));
    g.bench_function("generate_10k_events", |b| {
        b.iter(|| black_box(SyntheticSurvey::generate(&cfg).trace.len()))
    });

    let survey = SyntheticSurvey::generate(&cfg);
    g.bench_function("fig7a_series_10k", |b| {
        b.iter(|| black_box(fig7a_series(&survey.trace, 3).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
