//! The hot-path regression fence: engine apply throughput per policy and
//! wire-codec roundtrip throughput, written to `results/BENCH_core.json`
//! so CI can diff every PR against the committed trajectory.
//!
//! Runs under `cargo bench -p delta_bench --bench core_hot_path` with
//! the workspace's mini-criterion conventions (harness = false, prints
//! one line per benchmark) but does its own timing so the measured
//! events/s can be serialized: each benchmark runs
//! [`ROUNDS`] times and keeps the best round — the quantity a regression
//! gate wants, since the best round is the least scheduler-disturbed.
//!
//! Output path: `results/BENCH_core.json` at the workspace root, or
//! `$DELTA_BENCH_JSON` when set (CI writes a candidate file next to the
//! committed baseline and diffs the two with the `bench_gate` binary).

use delta_core::{sim, Benefit, BenefitConfig, CachingPolicy, NoCache, Replica, VCover};
use delta_flow::{CoverGraph, FlowSolver, QueryNode, UpdateNode};
use delta_server::{BatchItem, Request, Response};
use delta_storage::ObjectId;
use delta_workload::{QueryEvent, QueryKind, SyntheticSurvey, UpdateEvent, WorkloadConfig};
use serde_json::{ToJson, Value};
use std::time::Instant;

/// Measured rounds per benchmark; the best round is reported. Nine
/// rounds spread each benchmark over enough wall clock that a transient
/// contention window (another process stealing the core for a few
/// hundred milliseconds) cannot depress every round at once.
const ROUNDS: usize = 9;

/// Events per engine-throughput run. Sized so one round takes tens of
/// milliseconds — long enough that a 20% regression gate measures the
/// code, not scheduler noise — while five rounds across four policies
/// still finish in a few seconds.
const ENGINE_EVENTS: usize = 200_000;

/// Roundtrips per codec run (same tens-of-milliseconds sizing).
const CODEC_ITERS: usize = 500_000;

struct Measurement {
    name: String,
    events: u64,
    elapsed_s: f64,
    events_per_sec: f64,
}

/// Runs `f` [`ROUNDS`] times; `f` returns the event count it processed.
/// Keeps the round with the best throughput.
fn measure(name: &str, mut f: impl FnMut() -> u64) -> Measurement {
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let events = f();
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let better = match best {
            Some((e, t)) => (events as f64 / elapsed) > (e as f64 / t),
            None => true,
        };
        if better {
            best = Some((events, elapsed));
        }
    }
    let (events, elapsed_s) = best.expect("ROUNDS > 0");
    let events_per_sec = events as f64 / elapsed_s;
    println!("{name:<40} {events_per_sec:>14.0} events/s  (best of {ROUNDS})");
    Measurement {
        name: name.to_string(),
        events,
        elapsed_s,
        events_per_sec,
    }
}

/// A named policy constructor for the per-policy engine benches.
type PolicyCtor<'a> = (&'a str, Box<dyn Fn() -> Box<dyn CachingPolicy>>);

fn engine_benches(out: &mut Vec<Measurement>) {
    let mut cfg = WorkloadConfig::small();
    cfg.n_queries = ENGINE_EVENTS / 2;
    cfg.n_updates = ENGINE_EVENTS - ENGINE_EVENTS / 2;
    let s = SyntheticSurvey::generate(&cfg);
    let opts = sim::SimOptions::with_cache_fraction(&s.catalog, 0.3, u64::MAX);

    let policies: Vec<PolicyCtor<'_>> = vec![
        ("NoCache", Box::new(|| Box::new(NoCache))),
        ("Replica", Box::new(|| Box::new(Replica))),
        (
            "VCover",
            Box::new(move || Box::new(VCover::new(opts.cache_bytes, 42))),
        ),
        (
            "Benefit",
            Box::new(move || Box::new(Benefit::new(opts.cache_bytes, BenefitConfig::default()))),
        ),
    ];
    for (name, build) in policies {
        out.push(measure(&format!("engine_apply/{name}"), || {
            let mut policy = build();
            let report = sim::simulate(&mut *policy, &s.catalog, &s.trace, opts);
            report.events
        }));
    }
}

/// Races the three [`FlowSolver`] strategies on the cover-graph churn
/// pattern the `UpdateManager` hot path produces: a steady population of
/// `n` live segment vertices, one membership solve per arriving query,
/// remainder-rule removals, and the compactions they trigger. Covers are
/// identical across strategies (canonical min cut); only the clock
/// differs — this is the race that picked `Hybrid` as the default.
fn flow_solve_benches(out: &mut Vec<Measurement>) {
    const SOLVERS: [(FlowSolver, &str); 3] = [
        (FlowSolver::EdmondsKarp, "ek"),
        (FlowSolver::Dinic, "dinic"),
        (FlowSolver::Hybrid, "hybrid"),
    ];
    for &n in &[64usize, 512, 4096] {
        let events = (2_000_000 / n).max(500);
        for (solver, tag) in SOLVERS {
            out.push(measure(&format!("flow_solve/{tag}_n{n}"), || {
                let mut g = CoverGraph::new();
                g.set_solver(solver);
                // Cheap deterministic weights (LCG) so every solver sees
                // the identical instance stream.
                let mut x = 0x9e3779b97f4a7c15u64;
                let mut rng = move || {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    x >> 33
                };
                let mut segments: Vec<UpdateNode> =
                    (0..n).map(|_| g.add_update(1 + rng() % 1000)).collect();
                let mut oldest = 0usize;
                let mut retained: Vec<QueryNode> = Vec::new();
                for _ in 0..events {
                    // Segment churn: the oldest vertex ships out, a fresh
                    // one materializes (keeps the live graph at size n and
                    // exercises removal + compaction).
                    let dead = segments[oldest];
                    g.remove_update(dead);
                    segments[oldest] = g.add_update(1 + rng() % 1000);
                    oldest = (oldest + 1) % n;
                    // One query arrives, touching three live segments.
                    let qn = g.add_query(1 + rng() % 1500);
                    for _ in 0..3 {
                        let pick = segments[(rng() as usize) % n];
                        if g.update_alive(pick) {
                            g.add_interaction(pick, qn);
                        }
                    }
                    if g.solve_query_membership(qn) {
                        retained.push(qn); // remainder rule: shipped queries stay
                        if retained.len() > 64 {
                            let old = retained.remove(0);
                            g.remove_query(old);
                        }
                    } else {
                        g.remove_query(qn); // answered locally
                    }
                }
                events as u64
            }));
        }
    }
}

fn codec_benches(out: &mut Vec<Measurement>) {
    let query = Request::Query(QueryEvent {
        seq: 42,
        objects: vec![ObjectId(0), ObjectId(7), ObjectId(12), ObjectId(3)],
        result_bytes: 123_456_789,
        tolerance: 500,
        kind: QueryKind::Cone,
    });
    let batch = Request::Batch(
        (0..64u64)
            .map(|i| {
                if i % 2 == 0 {
                    BatchItem::Query(QueryEvent {
                        seq: i,
                        objects: vec![ObjectId((i % 16) as u32), ObjectId((i % 5) as u32)],
                        result_bytes: 1000 + i,
                        tolerance: i % 7,
                        kind: QueryKind::Selection,
                    })
                } else {
                    BatchItem::Update(UpdateEvent {
                        seq: i,
                        object: ObjectId((i % 16) as u32),
                        bytes: 10 + i,
                    })
                }
            })
            .collect(),
    );
    let response = Response::QueryOk {
        shards_touched: 4,
        local_answers: 3,
        shipped: 1,
    };

    let mut buf = Vec::new();
    out.push(measure("codec/query_roundtrip", || {
        for _ in 0..CODEC_ITERS {
            buf.clear();
            query.encode_into(&mut buf);
            let decoded = Request::decode(&buf).expect("roundtrip");
            assert!(matches!(decoded, Request::Query(_)));
        }
        CODEC_ITERS as u64
    }));
    out.push(measure("codec/batch64_roundtrip", || {
        // Throughput counts *events* (64 per frame), matching the
        // engine benches' unit.
        for _ in 0..CODEC_ITERS / 64 {
            buf.clear();
            batch.encode_into(&mut buf);
            let decoded = Request::decode(&buf).expect("roundtrip");
            assert!(matches!(decoded, Request::Batch(_)));
        }
        (CODEC_ITERS / 64 * 64) as u64
    }));
    out.push(measure("codec/response_roundtrip", || {
        for _ in 0..CODEC_ITERS {
            buf.clear();
            response.encode_into(&mut buf);
            let decoded = Response::decode(&buf).expect("roundtrip");
            assert!(matches!(decoded, Response::QueryOk { .. }));
        }
        CODEC_ITERS as u64
    }));
}

fn main() {
    // `cargo bench` passes harness flags (e.g. `--bench`); ignore them.
    let mut measurements = Vec::new();
    engine_benches(&mut measurements);
    flow_solve_benches(&mut measurements);
    codec_benches(&mut measurements);

    let path = std::env::var("DELTA_BENCH_JSON").unwrap_or_else(|_| {
        format!(
            "{}/../../results/BENCH_core.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let doc = Value::Object(vec![
        ("suite".into(), "core_hot_path".to_string().to_json()),
        ("rounds".into(), ROUNDS.to_json()),
        (
            "benchmarks".into(),
            Value::Array(
                measurements
                    .iter()
                    .map(|m| {
                        Value::Object(vec![
                            ("name".into(), m.name.to_json()),
                            ("events".into(), m.events.to_json()),
                            ("elapsed_s".into(), m.elapsed_s.to_json()),
                            ("events_per_sec".into(), m.events_per_sec.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Some(parent) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    let mut body = doc.to_json_string_pretty();
    body.push('\n');
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
