//! Microbenchmarks for the SQL frontend: parse, analyze, and full
//! compile (footprint → B(q) + density-integrated size estimate).
//!
//! The frontend sits on the cache's query path, so per-query overhead
//! must be microseconds (parse/analyze) to at most a fraction of a
//! millisecond (compile, dominated by density integration), i.e. many
//! orders of magnitude below the WAN transfers it prices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delta_htm::Partition;
use delta_query::{analyze, parse, Compiler, Schema};
use delta_storage::SpatialMapper;
use delta_workload::SkyModel;
use std::hint::black_box;

const QUERIES: &[(&str, &str)] = &[
    (
        "cone",
        "SELECT ra, dec, g, r FROM PhotoObj \
         WHERE CONTAINS(POINT('J2000', 185.0, 15.3), CIRCLE('J2000', 185.0, 15.3, 0.25)) = 1 \
         AND g BETWEEN 17 AND 20",
    ),
    (
        "range",
        "SELECT objID, ra, dec FROM PhotoObj \
         WHERE ra BETWEEN 150 AND 190 AND dec BETWEEN -5 AND 5 AND type = 3 \
         WITH TOLERANCE 2000",
    ),
    (
        "selfjoin",
        "SELECT * FROM PhotoObj WHERE NEIGHBORS(185.2, 15.1, 0.05)",
    ),
    (
        "aggregate",
        "SELECT COUNT(*) FROM PhotoObj WHERE RECT(184, 14, 186, 16)",
    ),
];

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_parse");
    for (name, sql) in QUERIES {
        g.bench_with_input(BenchmarkId::from_parameter(name), sql, |b, sql| {
            b.iter(|| parse(black_box(sql)).expect("parses"))
        });
    }
    g.finish();
}

fn bench_analyze(c: &mut Criterion) {
    let schema = Schema::sdss();
    let mut g = c.benchmark_group("query_analyze");
    for (name, sql) in QUERIES {
        let parsed = parse(sql).expect("parses");
        g.bench_with_input(BenchmarkId::from_parameter(name), &parsed, |b, q| {
            b.iter(|| analyze(black_box(q.clone()), &schema).expect("analyzes"))
        });
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let sky = SkyModel::sdss_like(7, 12);
    let mapper = SpatialMapper::new(Partition::adaptive(|t| t.solid_angle(), 68));
    let compiler = Compiler::new(Schema::sdss(), sky, mapper);
    let mut g = c.benchmark_group("query_compile");
    for (name, sql) in QUERIES {
        g.bench_with_input(BenchmarkId::from_parameter(name), sql, |b, sql| {
            b.iter(|| compiler.compile(black_box(sql)).expect("compiles"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parse, bench_analyze, bench_compile);
criterion_main!(benches);
