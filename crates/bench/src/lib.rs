//! # delta-bench — figure regeneration harness
//!
//! One binary per figure of the paper's evaluation (§6), plus criterion
//! microbenchmarks for the algorithmic substrates. Binaries print the
//! series the paper plots and write machine-readable JSON under
//! `results/` at the repository root.
//!
//! | artifact | binary | criterion bench |
//! |---|---|---|
//! | Fig. 7(a) object-ID scatter | `fig7a` | `workload_gen` |
//! | Fig. 7(b) cumulative traffic | `fig7b` | `fig7b_cumulative` |
//! | Fig. 8(a) traffic vs #updates | `fig8a` | `fig8a_updates` |
//! | Fig. 8(b) granularity sweep | `fig8b` | `fig8b_granularity` |
//! | §6.1 cache-size & window tuning | `tuning` | — |
//! | §6 headline (half traffic at 1/5 cache) | `headline` | — |
//! | E8 preshipping (latency vs traffic, §4) | `preship` | — |
//! | E9 failure recovery overhead (§7) | `faults` | — |
//! | E10 Theorem-1 hindsight optimum | `hindsight` | `offline_cover` |
//! | E11 A_obj / admission ablations | `ablation` | `policy_throughput` |
//! | SQL frontend (§4 semantic framework) | — | `query_compile` |
//!
//! All binaries accept `--scale paper` (the full 500k-event §6.1 setup)
//! and default to a 10×-smaller `--scale small` with identical byte
//! ratios.

use delta_core::SimReport;
use std::path::PathBuf;

/// Scale of a figure run, selectable with `--scale {paper,small}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Full §6.1 scale: 250k queries + 250k updates over 800 GB.
    Paper,
    /// Seconds-not-minutes scale for CI and quick iteration.
    Small,
}

impl Scale {
    /// Parses `--scale` from argv; defaults to `Small` so casual runs are
    /// quick (pass `--scale paper` to regenerate the real figures).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" && w[1].eq_ignore_ascii_case("paper") {
                return Scale::Paper;
            }
        }
        Scale::Small
    }

    /// The workload configuration for this scale.
    pub fn config(self) -> delta_workload::WorkloadConfig {
        match self {
            Scale::Paper => delta_workload::WorkloadConfig::sdss_like(),
            Scale::Small => {
                let mut cfg = delta_workload::WorkloadConfig::sdss_like();
                // Keep the paper's byte ratios but 10x fewer events, so a
                // laptop run takes seconds. Hotspot drift scales with the
                // query count.
                cfg.n_queries = 25_000;
                cfg.n_updates = 25_000;
                cfg.drift_interval = 900;
                cfg
            }
        }
    }

    /// Label used in output files.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Small => "small",
        }
    }
}

/// Directory where binaries drop their JSON series (`results/`, created on
/// demand at the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a serializable artifact as pretty JSON under `results/`.
pub fn write_json<T: serde_json::ToJson>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    std::fs::write(&path, json).expect("write artifact");
    eprintln!("wrote {}", path.display());
}

/// Prints the standard per-policy summary table.
pub fn print_reports(title: &str, warmup_cutoff: u64, reports: &[SimReport]) {
    println!("\n=== {title} ===");
    println!(
        "{:<9} {:>12} {:>14} {:>12} {:>12} {:>12} {:>7} {:>7} {:>6} {:>6}",
        "policy",
        "total",
        "post-warmup",
        "query-ship",
        "update-ship",
        "load",
        "hit%",
        "tol-srv",
        "loads",
        "evict"
    );
    for r in reports {
        let b = &r.ledger.breakdown;
        println!(
            "{:<9} {:>12} {:>14} {:>12} {:>12} {:>12} {:>6.1}% {:>7} {:>6} {:>6}",
            r.policy,
            r.total().to_string(),
            r.cost_after(warmup_cutoff).to_string(),
            b.query_ship.to_string(),
            b.update_ship.to_string(),
            b.load.to_string(),
            r.ledger.hit_rate() * 100.0,
            r.metrics.tolerance_served,
            r.ledger.loads,
            r.ledger.evictions,
        );
    }
}

/// Ratio of two byte totals as a printable factor.
pub fn factor(a: u64, b: u64) -> f64 {
    if b == 0 {
        f64::INFINITY
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_keeps_ratios() {
        let paper = Scale::Paper.config();
        let small = Scale::Small.config();
        assert_eq!(paper.total_bytes, small.total_bytes);
        assert_eq!(paper.mean_result_bytes, small.mean_result_bytes);
        assert_eq!(small.n_queries, paper.n_queries / 10);
    }

    #[test]
    fn factor_handles_zero() {
        assert_eq!(factor(10, 0), f64::INFINITY);
        assert!((factor(10, 5) - 2.0).abs() < 1e-12);
    }
}
