//! Fig. 8(a): final traffic cost vs number of updates.
//!
//! The queries are held fixed while the update count sweeps 0.5x..1.5x of
//! the default. Expected shape (paper §6.2): NoCache flat; Replica linear
//! (3x updates → 3x cost); VCover/Benefit/SOptimal nearly flat with a
//! slight rise — they compensate by caching fewer objects.

use delta_bench::{print_reports, write_json, Scale};
use delta_core::{compare_all, SimOptions, SimReport};
use delta_workload::SyntheticSurvey;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    n_updates: usize,
    reports: Vec<SimReport>,
}

impl serde_json::ToJson for SweepPoint {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            (
                "n_updates".into(),
                serde_json::ToJson::to_json(&self.n_updates),
            ),
            ("reports".into(), serde_json::ToJson::to_json(&self.reports)),
        ])
    }
}

fn main() {
    let scale = Scale::from_args();
    let base_cfg = scale.config();
    eprintln!("generating base survey...");
    let survey = SyntheticSurvey::generate(&base_cfg);
    let opts =
        SimOptions::with_cache_fraction(&survey.catalog, 0.3, base_cfg.n_events() as u64 / 100);

    // The paper sweeps 125k..375k updates against 250k queries.
    let fractions = [0.5, 0.75, 1.0, 1.25, 1.5];
    let mut sweep = Vec::new();
    for f in fractions {
        let mut cfg = base_cfg.clone();
        cfg.n_updates = (base_cfg.n_updates as f64 * f) as usize;
        eprintln!("n_updates = {} ...", cfg.n_updates);
        let trace = survey.regenerate_trace(&cfg);
        let warmup = (trace.len() as f64 * cfg.warmup_fraction) as u64;
        let reports = compare_all(&survey.catalog, &trace, opts, cfg.seed);
        print_reports(
            &format!("Fig 8(a) point: {} updates", cfg.n_updates),
            warmup,
            &reports,
        );
        sweep.push(SweepPoint {
            n_updates: cfg.n_updates,
            reports,
        });
    }
    write_json(&format!("fig8a_{}.json", scale.label()), &sweep);

    println!("\nFig 8(a): final traffic (GB) vs number of updates");
    print!("{:>10}", "updates");
    for r in &sweep[0].reports {
        print!("{:>10}", r.policy);
    }
    println!();
    for p in &sweep {
        print!("{:>10}", p.n_updates);
        for r in &p.reports {
            print!("{:>10.1}", r.total().bytes() as f64 / 1e9);
        }
        println!();
    }

    // Shape check: Replica grows ~linearly; NoCache is exactly flat.
    let replica_lo = sweep.first().unwrap().reports[1].total().bytes() as f64;
    let replica_hi = sweep.last().unwrap().reports[1].total().bytes() as f64;
    let nocache_lo = sweep.first().unwrap().reports[0].total().bytes();
    let nocache_hi = sweep.last().unwrap().reports[0].total().bytes();
    println!("\nshape checks:");
    println!(
        "  Replica cost ratio hi/lo = {:.2} (update ratio {:.2}; paper: proportional)",
        replica_hi / replica_lo,
        fractions[fractions.len() - 1] / fractions[0]
    );
    println!(
        "  NoCache flat: {} (lo {} hi {})",
        nocache_lo == nocache_hi,
        nocache_lo,
        nocache_hi
    );
}
