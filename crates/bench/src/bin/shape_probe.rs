use std::time::Instant;
fn main() {
    let cfg = delta_workload::WorkloadConfig::sdss_like();
    let t0 = Instant::now();
    let s = delta_workload::SyntheticSurvey::generate(&cfg);
    eprintln!("gen: {:?}", t0.elapsed());
    let opts = delta_core::SimOptions::with_cache_fraction(&s.catalog, 0.3, 5000);
    let warmup = (s.trace.len() as f64 * cfg.warmup_fraction) as u64;
    let stats = delta_workload::TraceStats::compute(&s.trace, s.catalog.len());
    println!(
        "== objects={} total={:.0}GB cache={:.0}GB qbytes={:.0}GB ubytes={:.0}GB overlap={:.2}",
        s.catalog.len(),
        s.catalog.total_bytes() as f64 / 1e9,
        opts.cache_bytes as f64 / 1e9,
        s.trace.total_query_bytes() as f64 / 1e9,
        s.trace.total_update_bytes() as f64 / 1e9,
        stats.hotspot_overlap(10)
    );
    for r in delta_core::compare_all(&s.catalog, &s.trace, opts, 42) {
        let b = &r.ledger.breakdown;
        println!("{:<9} total={:>7.1}GB post={:>7.1}GB q={:>7.1} u={:>6.1} l={:>6.1} hit={:>5.1}% loads={} evict={} [{:?}]",
            r.policy, r.total().bytes() as f64/1e9, r.cost_after(warmup).bytes() as f64/1e9,
            b.query_ship.bytes() as f64/1e9, b.update_ship.bytes() as f64/1e9, b.load.bytes() as f64/1e9,
            r.ledger.hit_rate()*100.0, r.ledger.loads, r.ledger.evictions, t0.elapsed());
    }
}
