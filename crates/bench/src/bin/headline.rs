//! §6 headline claim: "Delta (using VCover) reduces the traffic by nearly
//! half even with a cache that is one-fifth the size of the server
//! repository," and "VCover outperforms Benefit by a factor that varies
//! between 2-5 under different conditions."

use delta_bench::{factor, write_json, Scale};
use delta_core::{simulate, Benefit, BenefitConfig, NoCache, SimOptions, VCover};
use delta_workload::SyntheticSurvey;
use serde::Serialize;

#[derive(Serialize)]
struct Headline {
    cache_fraction: f64,
    nocache_post_gb: f64,
    vcover_post_gb: f64,
    benefit_post_gb: f64,
    reduction_vs_nocache: f64,
    benefit_over_vcover: f64,
}

impl serde_json::ToJson for Headline {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            (
                "cache_fraction".into(),
                serde_json::ToJson::to_json(&self.cache_fraction),
            ),
            (
                "nocache_post_gb".into(),
                serde_json::ToJson::to_json(&self.nocache_post_gb),
            ),
            (
                "vcover_post_gb".into(),
                serde_json::ToJson::to_json(&self.vcover_post_gb),
            ),
            (
                "benefit_post_gb".into(),
                serde_json::ToJson::to_json(&self.benefit_post_gb),
            ),
            (
                "reduction_vs_nocache".into(),
                serde_json::ToJson::to_json(&self.reduction_vs_nocache),
            ),
            (
                "benefit_over_vcover".into(),
                serde_json::ToJson::to_json(&self.benefit_over_vcover),
            ),
        ])
    }
}

fn main() {
    let scale = Scale::from_args();
    let cfg = scale.config();
    eprintln!("generating survey...");
    let survey = SyntheticSurvey::generate(&cfg);
    let warmup = (cfg.n_events() as f64 * cfg.warmup_fraction) as u64;
    let sample = cfg.n_events() as u64 / 200;

    let mut rows = Vec::new();
    for frac in [0.2, 0.3] {
        let opts = SimOptions::with_cache_fraction(&survey.catalog, frac, sample);
        let mut nocache = NoCache;
        let rn = simulate(&mut nocache, &survey.catalog, &survey.trace, opts);
        let mut vcover = VCover::new(opts.cache_bytes, cfg.seed);
        let rv = simulate(&mut vcover, &survey.catalog, &survey.trace, opts);
        let mut benefit = Benefit::new(opts.cache_bytes, BenefitConfig::default());
        let rb = simulate(&mut benefit, &survey.catalog, &survey.trace, opts);

        let (n, v, b) = (
            rn.cost_after(warmup).bytes(),
            rv.cost_after(warmup).bytes(),
            rb.cost_after(warmup).bytes(),
        );
        let row = Headline {
            cache_fraction: frac,
            nocache_post_gb: n as f64 / 1e9,
            vcover_post_gb: v as f64 / 1e9,
            benefit_post_gb: b as f64 / 1e9,
            reduction_vs_nocache: 1.0 - factor(v, n),
            benefit_over_vcover: factor(b, v),
        };
        println!(
            "cache = {:>3.0}% of server: NoCache {:>8.1} GB | VCover {:>8.1} GB \
             (traffic reduced {:>4.1}%) | Benefit {:>8.1} GB ({:.1}x VCover)",
            frac * 100.0,
            row.nocache_post_gb,
            row.vcover_post_gb,
            row.reduction_vs_nocache * 100.0,
            row.benefit_post_gb,
            row.benefit_over_vcover
        );
        rows.push(row);
    }
    println!("\npaper: traffic cut nearly in half at one-fifth cache; VCover beats Benefit 2-5x.");
    write_json(&format!("headline_{}.json", scale.label()), &rows);
}
