//! Fig. 8(b): VCover's cumulative traffic for different data-object
//! granularities.
//!
//! The paper re-partitions the same sky at HTM-derived object counts
//! {10, 20, 68, 91, 134, 285, 532}: performance improves as objects
//! shrink (finer hotspot decoupling, less wasted cache space) until ~91,
//! then worsens as queries stop fitting inside single objects.

use delta_bench::{write_json, Scale};
use delta_core::{simulate, SimOptions, SimReport, VCover};
use delta_workload::{SyntheticSurvey, WorkloadConfig};
use serde::Serialize;

#[derive(Serialize)]
struct GranularityPoint {
    target_objects: usize,
    actual_objects: usize,
    report: SimReport,
}

impl serde_json::ToJson for GranularityPoint {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            (
                "target_objects".into(),
                serde_json::ToJson::to_json(&self.target_objects),
            ),
            (
                "actual_objects".into(),
                serde_json::ToJson::to_json(&self.actual_objects),
            ),
            ("report".into(), serde_json::ToJson::to_json(&self.report)),
        ])
    }
}

fn main() {
    let scale = Scale::from_args();
    let base_cfg = scale.config();
    let counts = [10usize, 20, 68, 91, 134, 285, 532];

    let mut points = Vec::new();
    for &target in &counts {
        let mut cfg: WorkloadConfig = base_cfg.clone();
        cfg.target_objects = target.max(8);
        eprintln!("objects ~= {target} ...");
        let survey = SyntheticSurvey::generate(&cfg);
        let opts =
            SimOptions::with_cache_fraction(&survey.catalog, 0.3, cfg.n_events() as u64 / 200);
        let mut vcover = VCover::new(opts.cache_bytes, cfg.seed);
        let report = simulate(&mut vcover, &survey.catalog, &survey.trace, opts);
        println!(
            "objects {:>4} (target {:>3}): total {:>12}  hit {:>5.1}%  loads {:>3}  evictions {:>3}",
            survey.catalog.len(),
            target,
            report.total().to_string(),
            report.ledger.hit_rate() * 100.0,
            report.ledger.loads,
            report.ledger.evictions
        );
        points.push(GranularityPoint {
            target_objects: target,
            actual_objects: survey.catalog.len(),
            report,
        });
    }
    write_json(&format!("fig8b_{}.json", scale.label()), &points);

    println!("\nFig 8(b): VCover final traffic (GB) vs object granularity");
    println!("{:>8} {:>8} {:>12}", "objects", "actual", "total GB");
    for p in &points {
        println!(
            "{:>8} {:>8} {:>12.1}",
            p.target_objects,
            p.actual_objects,
            p.report.total().bytes() as f64 / 1e9
        );
    }
    let best = points
        .iter()
        .min_by_key(|p| p.report.total().bytes())
        .expect("non-empty sweep");
    println!(
        "\nbest granularity: ~{} objects (paper: improvement until ~91, then slight worsening)",
        best.actual_objects
    );
}
