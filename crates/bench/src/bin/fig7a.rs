//! Fig. 7(a): object-IDs touched by each query (rings) and update
//! (crosses) along the event sequence — the workload characterization
//! showing distinct, drifting query and update hotspots.
//!
//! Prints an ASCII rendition of the scatter plus the extracted hotspot
//! sets, and writes `results/fig7a_<scale>.json` with the raw points.

use delta_bench::{write_json, Scale};
use delta_workload::{fig7a_series, SyntheticSurvey, TraceStats};

fn main() {
    let scale = Scale::from_args();
    let cfg = scale.config();
    eprintln!("generating survey ({} events)...", cfg.n_events());
    let survey = SyntheticSurvey::generate(&cfg);
    let n_objects = survey.catalog.len();

    let stats = TraceStats::compute(&survey.trace, n_objects);
    let points = fig7a_series(&survey.trace, cfg.n_events() / 4000 + 1);
    write_json(&format!("fig7a_{}.json", scale.label()), &points);

    // ASCII scatter: rows = object-id buckets, cols = event-sequence
    // buckets; 'o' query, 'x' update, '*' both.
    const COLS: usize = 100;
    const ROWS: usize = 34;
    let total = cfg.n_events() as f64;
    let mut grid = vec![[0u8; COLS]; ROWS];
    for p in &points {
        let r = (p.object as usize * ROWS / n_objects).min(ROWS - 1);
        let c = ((p.seq as f64 / total) * COLS as f64) as usize;
        let c = c.min(COLS - 1);
        grid[r][c] |= if p.is_update { 2 } else { 1 };
    }
    println!("Fig 7(a): object-ID (rows, 0..{n_objects}) vs event sequence (cols)");
    println!("  legend: o = queried, x = updated, * = both\n");
    for (r, row) in grid.iter().enumerate() {
        let lo = r * n_objects / ROWS;
        print!("{lo:>4} |");
        for &cell in row.iter() {
            print!(
                "{}",
                match cell {
                    1 => 'o',
                    2 => 'x',
                    3 => '*',
                    _ => ' ',
                }
            );
        }
        println!();
    }

    let qhot = stats.top_query_objects(6);
    let uhot = stats.top_update_objects(6);
    println!("\nquery hotspots (top 6 object-IDs): {qhot:?}");
    println!("update hotspots (top 6 object-IDs): {uhot:?}");
    println!(
        "hotspot overlap (Jaccard, k=6): {:.2}",
        stats.hotspot_overlap(6)
    );
    println!(
        "\npaper's observation: query hotspots (their IDs 22-24, 62-64) and update \
         hotspots (11-13, 30-32) are distinct clusters; queries evolve over time."
    );
}
