//! §6.1 parameter tuning: the cache-size and Benefit-window sweeps behind
//! the paper's defaults ("we set the cache size to 30% of server size,
//! and the window size δ in Benefit to 1000; the choices are obtained by
//! varying the parameters in the experiment").

use delta_bench::{write_json, Scale};
use delta_core::{simulate, Benefit, BenefitConfig, SimOptions, SimReport, VCover};
use delta_workload::SyntheticSurvey;
use serde::Serialize;

#[derive(Serialize)]
struct TuningResults {
    cache_sweep: Vec<(f64, SimReport)>,
    window_sweep: Vec<(u64, SimReport)>,
    alpha_sweep: Vec<(f64, SimReport)>,
}

impl serde_json::ToJson for TuningResults {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            (
                "cache_sweep".into(),
                serde_json::ToJson::to_json(&self.cache_sweep),
            ),
            (
                "window_sweep".into(),
                serde_json::ToJson::to_json(&self.window_sweep),
            ),
            (
                "alpha_sweep".into(),
                serde_json::ToJson::to_json(&self.alpha_sweep),
            ),
        ])
    }
}

fn main() {
    let scale = Scale::from_args();
    let cfg = scale.config();
    eprintln!("generating survey...");
    let survey = SyntheticSurvey::generate(&cfg);
    let sample = cfg.n_events() as u64 / 100;

    // Cache-size sweep for VCover.
    let mut cache_sweep = Vec::new();
    println!("cache-size sweep (VCover):");
    println!("{:>10} {:>12} {:>7}", "cache %", "total", "hit%");
    for frac in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let opts = SimOptions::with_cache_fraction(&survey.catalog, frac, sample);
        let mut v = VCover::new(opts.cache_bytes, cfg.seed);
        let r = simulate(&mut v, &survey.catalog, &survey.trace, opts);
        println!(
            "{:>9.0}% {:>12} {:>6.1}%",
            frac * 100.0,
            r.total().to_string(),
            r.ledger.hit_rate() * 100.0
        );
        cache_sweep.push((frac, r));
    }

    // Window sweep for Benefit at the default cache size.
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, sample);
    let mut window_sweep = Vec::new();
    println!("\nwindow sweep (Benefit, alpha = 0.3):");
    println!("{:>10} {:>12} {:>7}", "window", "total", "hit%");
    for window in [250u64, 500, 1000, 2000, 4000] {
        let mut b = Benefit::new(opts.cache_bytes, BenefitConfig { window, alpha: 0.3 });
        let r = simulate(&mut b, &survey.catalog, &survey.trace, opts);
        println!(
            "{:>10} {:>12} {:>6.1}%",
            window,
            r.total().to_string(),
            r.ledger.hit_rate() * 100.0
        );
        window_sweep.push((window, r));
    }

    // Alpha sweep for Benefit.
    let mut alpha_sweep = Vec::new();
    println!("\nalpha sweep (Benefit, window = 1000):");
    println!("{:>10} {:>12} {:>7}", "alpha", "total", "hit%");
    for alpha in [0.1, 0.3, 0.5, 0.8, 1.0] {
        let mut b = Benefit::new(
            opts.cache_bytes,
            BenefitConfig {
                window: 1000,
                alpha,
            },
        );
        let r = simulate(&mut b, &survey.catalog, &survey.trace, opts);
        println!(
            "{:>10.1} {:>12} {:>6.1}%",
            alpha,
            r.total().to_string(),
            r.ledger.hit_rate() * 100.0
        );
        alpha_sweep.push((alpha, r));
    }

    write_json(
        &format!("tuning_{}.json", scale.label()),
        &TuningResults {
            cache_sweep,
            window_sweep,
            alpha_sweep,
        },
    );
}
