//! Extension experiment (paper §4 discussion / tech report \[26\]):
//! preshipping updates to hot cached objects.
//!
//! VCover minimizes traffic but can delay queries that must wait for
//! outstanding updates to ship on their critical path. Preshipping sends
//! updates for *hot* resident objects proactively, at update-arrival
//! time. Expected shape: response-time tail (p95/p99) drops for
//! Preship(VCover) versus plain VCover, at a small traffic premium;
//! NoCache pays the full WAN round-trip on every query either way.

use delta_bench::{write_json, Scale};
use delta_core::yardstick::NoCache;
use delta_core::{simulate, Preship, PreshipConfig, SimOptions, SimReport, VCover};
use delta_net::LinkModel;
use delta_workload::SyntheticSurvey;

fn main() {
    let scale = Scale::from_args();
    let cfg = scale.config();
    eprintln!("generating survey ({} events)...", cfg.n_events());
    let survey = SyntheticSurvey::generate(&cfg);
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, cfg.n_events() as u64 / 200)
        .with_link(LinkModel::wan());

    eprintln!("running NoCache, VCover, Preship(VCover)...");
    let mut reports: Vec<SimReport> = Vec::new();
    let mut nocache = NoCache;
    reports.push(simulate(&mut nocache, &survey.catalog, &survey.trace, opts));
    let mut vcover = VCover::new(opts.cache_bytes, cfg.seed);
    reports.push(simulate(&mut vcover, &survey.catalog, &survey.trace, opts));
    let mut preship = Preship::new(
        VCover::new(opts.cache_bytes, cfg.seed),
        PreshipConfig::default(),
    );
    reports.push(simulate(&mut preship, &survey.catalog, &survey.trace, opts));
    let (pre_ranges, pre_bytes) = preship.preshipped();

    write_json(&format!("preship_{}.json", scale.label()), &reports);

    println!("\n=== Preshipping: traffic vs response time (WAN link) ===");
    println!(
        "{:<17} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "policy", "traffic", "hit%", "mean", "p50", "p95", "p99"
    );
    for r in &reports {
        let l = r.latency.expect("link was configured");
        println!(
            "{:<17} {:>12} {:>7.1}% {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.0}ms",
            r.policy,
            r.total().to_string(),
            r.ledger.hit_rate() * 100.0,
            l.mean_secs * 1e3,
            l.p50_secs * 1e3,
            l.p95_secs * 1e3,
            l.p99_secs * 1e3,
        );
    }
    println!(
        "\npreshipped: {pre_ranges} update ranges, {:.2} GB",
        pre_bytes as f64 / 1e9
    );

    let vc = &reports[1];
    let ps = &reports[2];
    let (vl, pl) = (vc.latency.unwrap(), ps.latency.unwrap());
    println!("\nshape checks:");
    println!(
        "  p99 Preship / p99 VCover       = {:.2}  (expected: < 1, tail shrinks)",
        pl.p99_secs / vl.p99_secs.max(1e-12)
    );
    println!(
        "  traffic Preship / traffic VCover = {:.3}  (expected: >= 1, small premium)",
        ps.total().bytes() as f64 / vc.total().bytes().max(1) as f64
    );
}
