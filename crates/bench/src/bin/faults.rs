//! Extension experiment (paper §7): failure recovery overhead.
//!
//! Sweeps cache crash counts and recovery modes over a fixed trace and
//! reports the traffic premium each scenario pays relative to a
//! fault-free run. Expected shape: warm restarts (store survives, mirror
//! resynced from the server's metadata log) cost little; cold restarts
//! re-pay load costs and trend the run toward NoCache as the crash rate
//! grows.

use delta_bench::{write_json, Scale};
use delta_core::deploy::{run_deployed_faulty, FaultPlan, RecoveryMode};
use delta_core::{simulate, CachingPolicy, SimOptions, VCover};
use delta_workload::SyntheticSurvey;

fn main() {
    let scale = Scale::from_args();
    let cfg = scale.config();
    eprintln!("generating survey ({} events)...", cfg.n_events());
    let survey = SyntheticSurvey::generate(&cfg);
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, cfg.n_events() as u64 / 100);
    let n = survey.trace.len() as u64;
    let seed = cfg.seed;

    let mut clean_policy = VCover::new(opts.cache_bytes, seed);
    let clean = simulate(&mut clean_policy, &survey.catalog, &survey.trace, opts);
    println!("\n=== Failure recovery overhead (VCover, cache = 30%) ===");
    println!("fault-free traffic: {}\n", clean.total());
    println!(
        "{:<24} {:>12} {:>9} {:>8} {:>10} {:>10}",
        "scenario", "traffic", "overhead", "crashes", "lost-objs", "log-replay"
    );

    let mut rows = Vec::new();
    for (label, crashes, mode) in [
        ("1 warm crash", 1u64, RecoveryMode::Warm),
        ("1 cold crash", 1, RecoveryMode::Cold),
        ("4 warm crashes", 4, RecoveryMode::Warm),
        ("4 cold crashes", 4, RecoveryMode::Cold),
        ("16 cold crashes", 16, RecoveryMode::Cold),
    ] {
        let plan = FaultPlan {
            crashes: (1..=crashes)
                .map(|i| (i * n / (crashes + 1), mode))
                .collect(),
        };
        let mut factory = move || -> Box<dyn CachingPolicy + Send> {
            Box::new(VCover::new(opts.cache_bytes, seed))
        };
        let (report, wan, rec) =
            run_deployed_faulty(&mut factory, &survey.catalog, &survey.trace, opts, &plan);
        assert_eq!(
            report.total().bytes(),
            wan.charged_total(),
            "ledger/meter reconcile"
        );
        let overhead = report.total().bytes() as f64 / clean.total().bytes().max(1) as f64 - 1.0;
        println!(
            "{:<24} {:>12} {:>8.1}% {:>8} {:>10} {:>10}",
            label,
            report.total().to_string(),
            overhead * 100.0,
            rec.crashes,
            rec.objects_lost,
            rec.log_entries_replayed,
        );
        rows.push(serde_json::json!({
            "label": label,
            "traffic": report.total().bytes(),
            "overhead": overhead,
            "crashes": rec.crashes,
            "objects_lost": rec.objects_lost,
            "stale_on_recovery": rec.objects_stale_on_recovery,
        }));
    }
    write_json(
        &format!("faults_{}.json", scale.label()),
        &serde_json::json!({ "clean": clean.total().bytes(), "scenarios": rows }),
    );
}
