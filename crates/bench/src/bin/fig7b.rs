//! Fig. 7(b): cumulative network traffic of the five policies along the
//! post-warm-up event sequence.
//!
//! Expected shape (paper §6.2): VCover closely tracks SOptimal (ending
//! within ~tens of %), beats Benefit by ≥2x, Replica by ~1.5x and NoCache
//! by ~2x; Benefit is barely better than NoCache.

use delta_bench::{factor, print_reports, write_json, Scale};
use delta_core::{compare_all, SimOptions};
use delta_workload::SyntheticSurvey;

fn main() {
    let scale = Scale::from_args();
    let cfg = scale.config();
    eprintln!("generating survey ({} events)...", cfg.n_events());
    let survey = SyntheticSurvey::generate(&cfg);
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, cfg.n_events() as u64 / 200);
    let warmup = (cfg.n_events() as f64 * cfg.warmup_fraction) as u64;

    eprintln!("running five policies...");
    let reports = compare_all(&survey.catalog, &survey.trace, opts, cfg.seed);
    write_json(&format!("fig7b_{}.json", scale.label()), &reports);

    print_reports(
        "Fig 7(b): cumulative traffic, cache = 30% of server",
        warmup,
        &reports,
    );

    // Cumulative curve (post-warm-up), sampled at 10 checkpoints.
    println!("\npost-warm-up cumulative traffic (GB):");
    print!("{:>12}", "event");
    for r in &reports {
        print!("{:>10}", r.policy);
    }
    println!();
    let last = survey.trace.events.last().map(|e| e.seq()).unwrap_or(0);
    for i in 1..=10u64 {
        let at = warmup + (last - warmup) * i / 10;
        print!("{at:>12}");
        for r in &reports {
            let v = r.cumulative_at(at).saturating_sub(r.cumulative_at(warmup));
            print!("{:>10.1}", v.bytes() as f64 / 1e9);
        }
        println!();
    }

    let get = |name: &str| {
        reports
            .iter()
            .find(|r| r.policy == name)
            .map(|r| r.cost_after(warmup).bytes())
            .unwrap_or(0)
    };
    let (nocache, replica, benefit, vcover, soptimal) = (
        get("NoCache"),
        get("Replica"),
        get("Benefit"),
        get("VCover"),
        get("SOptimal"),
    );
    println!("\nshape checks (post-warm-up):");
    println!(
        "  NoCache / VCover  = {:.2}  (paper: ~2)",
        factor(nocache, vcover)
    );
    println!(
        "  Benefit / VCover  = {:.2}  (paper: >=2)",
        factor(benefit, vcover)
    );
    println!(
        "  Replica / VCover  = {:.2}  (paper: ~1.5)",
        factor(replica, vcover)
    );
    println!(
        "  VCover / SOptimal = {:.2}  (paper: ~1.4 at trace end)",
        factor(vcover, soptimal)
    );
}
