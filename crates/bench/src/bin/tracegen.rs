//! Trace tooling: generate a synthetic SDSS-like survey trace and write
//! it as a self-contained JSONL artifact, or inspect an existing one.
//!
//! ```sh
//! # generate (defaults: small scale, results/trace_small.jsonl)
//! cargo run --release -p delta-bench --bin tracegen -- --scale paper --out results/trace_paper.jsonl
//!
//! # inspect any trace file (stats + Fig 7(a)-style hotspots)
//! cargo run --release -p delta-bench --bin tracegen -- --inspect results/trace_paper.jsonl
//! ```
//!
//! Written traces replay byte-identically through the simulator, so any
//! figure can be regenerated from the artifact without re-running the
//! generator — the reproduction's equivalent of publishing the trace.

use delta_bench::{results_dir, Scale};
use delta_workload::{read_jsonl_with_header, write_jsonl, MixStats, SyntheticSurvey, TraceStats};
use std::path::PathBuf;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = arg_value("--inspect") {
        return inspect(PathBuf::from(path));
    }

    let scale = Scale::from_args();
    let cfg = scale.config();
    let out = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join(format!("trace_{}.jsonl", scale.label())));

    eprintln!("generating survey ({} events)...", cfg.n_events());
    let survey = SyntheticSurvey::generate(&cfg);
    write_jsonl(
        &out,
        &survey.catalog,
        &survey.trace,
        &format!(
            "SDSS-like synthetic survey, scale={}, seed={}, {} objects",
            scale.label(),
            cfg.seed,
            survey.catalog.len()
        ),
    )?;
    println!(
        "wrote {} ({} events, {} objects, {:.1} GB queries / {:.1} GB updates)",
        out.display(),
        survey.trace.len(),
        survey.catalog.len(),
        survey.trace.total_query_bytes() as f64 / 1e9,
        survey.trace.total_update_bytes() as f64 / 1e9,
    );
    Ok(())
}

fn inspect(path: PathBuf) -> Result<(), Box<dyn std::error::Error>> {
    let (catalog, trace, header) = read_jsonl_with_header(&path)?;
    println!("trace: {}", path.display());
    println!("  description : {}", header.description);
    println!("  objects     : {}", catalog.len());
    println!(
        "  events      : {} ({} queries, {} updates)",
        trace.len(),
        trace.n_queries(),
        trace.n_updates()
    );
    println!(
        "  query bytes : {:.2} GB (NoCache cost)",
        trace.total_query_bytes() as f64 / 1e9
    );
    println!(
        "  update bytes: {:.2} GB (Replica cost)",
        trace.total_update_bytes() as f64 / 1e9
    );

    let stats = TraceStats::compute(&trace, catalog.len());
    println!(
        "  query hotspots (top 6 object-IDs) : {:?}",
        stats.top_query_objects(6)
    );
    println!(
        "  update hotspots (top 6 object-IDs): {:?}",
        stats.top_update_objects(6)
    );
    println!(
        "  hotspot overlap (Jaccard, k=6)    : {:.2}",
        stats.hotspot_overlap(6)
    );
    let mix = MixStats::compute(&trace);
    println!(
        "  query mix (cone/range/join/agg/scan/sel): {:?}",
        mix.kind_counts
    );
    println!(
        "  result sizes: p50 {:.1} KB, p90 {:.1} KB, p99 {:.1} MB, max {:.1} MB (tail p99/p50 = {:.0}x)",
        mix.result_p50 as f64 / 1e3,
        mix.result_p90 as f64 / 1e3,
        mix.result_p99 as f64 / 1e6,
        mix.result_max as f64 / 1e6,
        mix.tail_ratio(),
    );
    println!(
        "  mean B(q) fan-out: {:.2} objects; zero-tolerance queries: {:.0}%",
        mix.mean_fanout,
        mix.zero_tolerance_frac * 100.0
    );
    Ok(())
}
