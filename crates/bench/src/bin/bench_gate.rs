//! `bench_gate` — the throughput regression fence over the committed
//! `results/BENCH_*.json` trajectories.
//!
//! ```text
//! bench_gate --baseline results/BENCH_core.json \
//!            --candidate results/BENCH_core.new.json \
//!            [--tolerance 0.20]
//! ```
//!
//! Compares each benchmark's `events_per_sec` in the candidate run
//! against the committed baseline and exits non-zero when any benchmark
//! regressed by more than the tolerance (default 20%). Two document
//! shapes are understood: the `benchmarks` array `core_hot_path` writes
//! (`BENCH_core.json`) and the `modes` array `delta-loadgen --bench-json`
//! writes (`BENCH_server.json` — lockstep/batch/pipeline events/s), so
//! the same gate fences both the engine hot path and the wire protocol.
//! Benchmarks that exist on only one side are reported but do not fail
//! the gate (adding a benchmark must not require regenerating the
//! baseline in the same PR). Improvements are reported too — commit the
//! refreshed baseline when they are real, so the fence ratchets forward.
//!
//! When both documents carry client-observed latency (`latency_ns.p99`
//! per mode, written by `delta-loadgen --bench-json`), p99 regressions
//! are reported **warn-only**: tail latency on shared CI runners is too
//! noisy to gate hard, but the trajectory should be visible in every
//! run's log.

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --baseline FILE --candidate FILE [--tolerance FRACTION (default 0.20)]"
    );
    exit(2);
}

fn read_rates(path: &str) -> BTreeMap<String, f64> {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        exit(2);
    });
    let doc = serde_json::from_str_value(&body).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot parse {path}: {e}");
        exit(2);
    });
    // `benchmarks` is the core-bench shape; `modes` is the loadgen
    // (server protocol) shape — both carry (name, events_per_sec).
    let benches = doc
        .get("benchmarks")
        .and_then(Value::as_array)
        .or_else(|| doc.get("modes").and_then(Value::as_array))
        .unwrap_or_else(|| {
            eprintln!("bench_gate: {path} has neither a `benchmarks` nor a `modes` array");
            exit(2);
        });
    benches
        .iter()
        .filter_map(|b| {
            let name = b.get("name")?.as_str()?.to_string();
            let rate = b.get("events_per_sec")?.as_f64()?;
            Some((name, rate))
        })
        .collect()
}

/// Client-observed p99 RTT per benchmark, when the document carries it
/// (`latency_ns.p99`, the loadgen shape). Absent entries are fine —
/// older baselines predate the field.
fn read_p99s(path: &str) -> BTreeMap<String, f64> {
    let body = match std::fs::read_to_string(path) {
        Ok(body) => body,
        Err(_) => return BTreeMap::new(),
    };
    let Ok(doc) = serde_json::from_str_value(&body) else {
        return BTreeMap::new();
    };
    let benches = doc
        .get("benchmarks")
        .and_then(Value::as_array)
        .or_else(|| doc.get("modes").and_then(Value::as_array));
    benches
        .into_iter()
        .flatten()
        .filter_map(|b| {
            let name = b.get("name")?.as_str()?.to_string();
            let p99 = b.get("latency_ns")?.get("p99")?.as_f64()?;
            Some((name, p99))
        })
        .collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mut baseline, mut candidate, mut tolerance) = (None, None, 0.20f64);
    let mut i = 0;
    while i < argv.len() {
        let value = || argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--baseline" => baseline = Some(value()),
            "--candidate" => candidate = Some(value()),
            "--tolerance" => tolerance = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }
    let (Some(baseline), Some(candidate)) = (baseline, candidate) else {
        usage();
    };
    let base = read_rates(&baseline);
    let cand = read_rates(&candidate);

    let mut failures = 0usize;
    for (name, base_rate) in &base {
        match cand.get(name) {
            None => println!("{name:<40} MISSING in candidate (not gated)"),
            Some(cand_rate) => {
                let ratio = cand_rate / base_rate;
                let verdict = if ratio < 1.0 - tolerance {
                    failures += 1;
                    "REGRESSED"
                } else if ratio > 1.0 + tolerance {
                    "improved (refresh the baseline)"
                } else {
                    "ok"
                };
                println!(
                    "{name:<40} base {base_rate:>13.0} ev/s  cand {cand_rate:>13.0} ev/s  \
                     {:>+6.1}%  {verdict}",
                    (ratio - 1.0) * 100.0
                );
            }
        }
    }
    for name in cand.keys().filter(|n| !base.contains_key(*n)) {
        println!("{name:<40} NEW (not gated; commit a refreshed baseline)");
    }

    // Client-observed p99 RTT: warn-only. Tail latency on shared CI
    // hardware is too noisy to fail a build on, but a creeping p99
    // should be visible in every run's log.
    let base_p99 = read_p99s(&baseline);
    let cand_p99 = read_p99s(&candidate);
    for (name, b) in &base_p99 {
        let Some(c) = cand_p99.get(name) else {
            continue;
        };
        if *b <= 0.0 {
            continue;
        }
        let ratio = c / b;
        let verdict = if ratio > 1.0 + tolerance {
            "p99 REGRESSED (warn-only)"
        } else if ratio < 1.0 - tolerance {
            "p99 improved"
        } else {
            "p99 ok"
        };
        println!(
            "{name:<40} base p99 {:>9.1}µs  cand p99 {:>9.1}µs  {:>+6.1}%  {verdict}",
            b / 1_000.0,
            c / 1_000.0,
            (ratio - 1.0) * 100.0
        );
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} benchmark(s) regressed more than {:.0}% against {baseline}",
            tolerance * 100.0
        );
        exit(1);
    }
    println!(
        "bench_gate: all {} shared benchmarks within {:.0}% of {baseline}",
        base.len(),
        tolerance * 100.0
    );
}
