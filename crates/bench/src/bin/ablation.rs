//! Ablation study for VCover's design choices:
//!
//! 1. **A_obj choice** — GDS (the paper's) vs LRU / LFU / GDSF / FIFO
//!    inside the LoadManager;
//! 2. **admission gate** — the paper's randomized bypass admission vs
//!    the deterministic per-object-counter rule of \[24\] it replaces
//!    (same expectation, more metadata) vs load-on-first-touch, "the
//!    web-proxy default" the paper explicitly rejects (§4: "an object is
//!    loaded as soon as it is requested. Such a loading policy can cause
//!    too much network traffic").

use delta_bench::{print_reports, write_json, Scale};
use delta_core::{simulate, AdmissionMode, SimOptions, SimReport, VCover};
use delta_policy::{Fifo, Gdsf, GreedyDualSize, Lfu, Lru};
use delta_workload::SyntheticSurvey;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    variant: String,
    report: SimReport,
}

impl serde_json::ToJson for AblationRow {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("variant".into(), serde_json::ToJson::to_json(&self.variant)),
            ("report".into(), serde_json::ToJson::to_json(&self.report)),
        ])
    }
}

fn main() {
    let scale = Scale::from_args();
    let cfg = scale.config();
    eprintln!("generating survey...");
    let survey = SyntheticSurvey::generate(&cfg);
    // A tight cache (2% of the server instead of the default 30%) so the
    // eviction policy actually gets exercised — with room to spare, the
    // bypass gate admits so few objects that every A_obj behaves
    // identically and the ablation shows nothing.
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.02, cfg.n_events() as u64 / 100);
    let warmup = (cfg.n_events() as f64 * cfg.warmup_fraction) as u64;

    let mut rows: Vec<AblationRow> = Vec::new();
    {
        let mut v = VCover::new(opts.cache_bytes, cfg.seed);
        let report = simulate(&mut v, &survey.catalog, &survey.trace, opts);
        rows.push(AblationRow {
            variant: "bypass + GDS (paper)".into(),
            report,
        });
    }
    {
        let mut v = VCover::with_policy(Lru::new(opts.cache_bytes), cfg.seed);
        let report = simulate(&mut v, &survey.catalog, &survey.trace, opts);
        rows.push(AblationRow {
            variant: "bypass + LRU".into(),
            report,
        });
    }
    {
        let mut v = VCover::with_policy(Lfu::new(opts.cache_bytes), cfg.seed);
        let report = simulate(&mut v, &survey.catalog, &survey.trace, opts);
        rows.push(AblationRow {
            variant: "bypass + LFU".into(),
            report,
        });
    }
    {
        let mut v = VCover::with_policy(Gdsf::new(opts.cache_bytes), cfg.seed);
        let report = simulate(&mut v, &survey.catalog, &survey.trace, opts);
        rows.push(AblationRow {
            variant: "bypass + GDSF".into(),
            report,
        });
    }
    {
        let mut v = VCover::with_policy(Fifo::new(opts.cache_bytes), cfg.seed);
        let report = simulate(&mut v, &survey.catalog, &survey.trace, opts);
        rows.push(AblationRow {
            variant: "bypass + FIFO".into(),
            report,
        });
    }
    {
        let mut v = VCover::with_policy_and_mode(
            GreedyDualSize::new(opts.cache_bytes),
            cfg.seed,
            AdmissionMode::Counter,
        );
        let report = simulate(&mut v, &survey.catalog, &survey.trace, opts);
        rows.push(AblationRow {
            variant: "counter + GDS".into(),
            report,
        });
    }
    {
        let mut v = VCover::with_policy_and_mode(
            GreedyDualSize::new(opts.cache_bytes),
            cfg.seed,
            AdmissionMode::FirstTouch,
        );
        let report = simulate(&mut v, &survey.catalog, &survey.trace, opts);
        rows.push(AblationRow {
            variant: "first-touch + GDS".into(),
            report,
        });
    }

    print_reports(
        "VCover ablation (cache = 2% of server)",
        warmup,
        &rows.iter().map(|r| r.report.clone()).collect::<Vec<_>>(),
    );
    println!();
    for row in &rows {
        println!(
            "{:<22} total {:>12}  post-warm-up {:>12}  loads {:>5}  evictions {:>5}",
            row.variant,
            row.report.total().to_string(),
            row.report.cost_after(warmup).to_string(),
            row.report.ledger.loads,
            row.report.ledger.evictions
        );
    }
    println!(
        "\nexpected: first-touch loading thrashes (the §4 argument for bypass \
         admission); GDS ≳ LRU ≳ LFU for A_obj; the deterministic counter \
         gate tracks bypass in expectation (it trades away the randomized \
         rule's variance for per-object metadata, which is why the paper \
         randomizes)."
    );
    write_json(&format!("ablation_{}.json", scale.label()), &rows);
}
