//! Extension experiment: the Theorem-1 hindsight optimum.
//!
//! §3.1's Theorem 1 says the cheapest ship-query/ship-update mix over a
//! known sequence is a minimum-weight vertex cover of the interaction
//! graph. SOptimal (§6.1) picks the best *static set* in hindsight but
//! then ships **every** update for cached objects. This bin quantifies
//! what Theorem 1 adds: on SOptimal's own set, how much cheaper is the
//! exact MWVC shipping plan — and how close does online VCover get to
//! both?

use delta_bench::{factor, write_json, Scale};
use delta_core::yardstick::SOptimal;
use delta_core::{hindsight_decoupling, simulate, SimOptions, VCover};
use delta_workload::SyntheticSurvey;

fn main() {
    let scale = Scale::from_args();
    let cfg = scale.config();
    eprintln!("generating survey ({} events)...", cfg.n_events());
    let survey = SyntheticSurvey::generate(&cfg);
    let opts = SimOptions::with_cache_fraction(&survey.catalog, 0.3, cfg.n_events() as u64 / 200);

    eprintln!("planning SOptimal set and simulating...");
    let mut sopt = SOptimal::plan(&survey.catalog, &survey.trace, opts.cache_bytes);
    let chosen = sopt.chosen().clone();
    let sopt_run = simulate(&mut sopt, &survey.catalog, &survey.trace, opts);

    eprintln!(
        "solving the hindsight vertex cover ({} cached objects)...",
        chosen.len()
    );
    let hind = hindsight_decoupling(&survey.catalog, &survey.trace, &chosen);

    eprintln!("running online VCover...");
    let mut vcover = VCover::new(opts.cache_bytes, cfg.seed);
    let vc_run = simulate(&mut vcover, &survey.catalog, &survey.trace, opts);

    let (un, qn, en) = hind.graph_size;
    println!(
        "\n=== Theorem 1 in hindsight (static set = SOptimal's, {} objects) ===",
        chosen.len()
    );
    println!("interaction graph solved: {un} update nodes, {qn} query nodes, {en} edges");
    println!(
        "\n{:<22} {:>12} {:>14} {:>14} {:>12}",
        "plan", "total", "query-ship", "update-ship", "load"
    );
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>12}",
        "SOptimal (simulated)",
        sopt_run.total().to_string(),
        sopt_run.ledger.breakdown.query_ship.to_string(),
        sopt_run.ledger.breakdown.update_ship.to_string(),
        sopt_run.ledger.breakdown.load.to_string(),
    );
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>12}",
        "Hindsight MWVC",
        hind.total().to_string(),
        (hind.forced_query + hind.cover_query).to_string(),
        hind.cover_update.to_string(),
        hind.load.to_string(),
    );
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>12}",
        "VCover (online)",
        vc_run.total().to_string(),
        vc_run.ledger.breakdown.query_ship.to_string(),
        vc_run.ledger.breakdown.update_ship.to_string(),
        vc_run.ledger.breakdown.load.to_string(),
    );

    write_json(
        &format!("hindsight_{}.json", scale.label()),
        &serde_json::json!({
            "soptimal_total": sopt_run.total().bytes(),
            "hindsight_total": hind.total().bytes(),
            "vcover_total": vc_run.total().bytes(),
            "graph": { "updates": un, "queries": qn, "edges": en },
        }),
    );

    println!("\nshape checks:");
    println!(
        "  SOptimal / Hindsight = {:.3}  (expected: >= 1; Theorem 1 can only help)",
        factor(sopt_run.total().bytes(), hind.total().bytes())
    );
    println!(
        "  VCover / Hindsight   = {:.2}  (the online algorithm's true competitive gap)",
        factor(vc_run.total().bytes(), hind.total().bytes())
    );
    assert!(
        hind.total().bytes() <= sopt_run.total().bytes(),
        "Theorem 1 violated: hindsight cover costs more than ship-every-update"
    );
}
