//! Raw Linux `epoll` FFI: the one place in the workspace that talks to
//! the kernel directly. Everything here is `pub(crate)`; the safe
//! wrappers live in [`crate::poll`].
//!
//! The symbols come from the C library the Rust standard library already
//! links, so no external crate is needed — the workspace stays fully
//! vendored.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::c_int;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it (no padding
/// between the 32-bit event mask and the 64-bit data word); other
/// architectures use natural alignment — mirror glibc exactly or the
/// kernel scribbles into the wrong offsets.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

pub(crate) const EPOLL_CTL_ADD: c_int = 1;
pub(crate) const EPOLL_CTL_DEL: c_int = 2;
pub(crate) const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0o2000000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// An owned epoll instance fd, closed on drop.
pub(crate) struct EpollFd(c_int);

impl EpollFd {
    pub(crate) fn new() -> io::Result<EpollFd> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the only failure mode and is checked below.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollFd(fd))
    }

    pub(crate) fn ctl(&self, op: c_int, fd: c_int, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
        let ptr = if event.is_some() {
            &mut ev as *mut EpollEvent
        } else {
            std::ptr::null_mut()
        };
        // SAFETY: `ptr` is either null (EPOLL_CTL_DEL ignores it on any
        // post-2.6.9 kernel) or points at a live stack-owned EpollEvent
        // for the duration of the call.
        let rc = unsafe { epoll_ctl(self.0, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits for readiness, writing into `buf` and returning how many
    /// entries the kernel filled. `timeout_ms < 0` blocks indefinitely.
    pub(crate) fn wait(&self, buf: &mut Vec<EpollEvent>, timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: the pointer/capacity pair describes exactly the
        // allocation `buf` owns; the kernel writes at most `capacity`
        // entries and returns the count, which set_len trusts only
        // after the bounds check.
        let rc = unsafe {
            epoll_wait(
                self.0,
                buf.as_mut_ptr(),
                buf.capacity() as c_int,
                timeout_ms,
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            // A signal landing mid-wait is routine (e.g. under a test
            // harness); surface it as zero events, not a failure.
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        let n = rc as usize;
        debug_assert!(n <= buf.capacity());
        // SAFETY: the kernel initialized the first `n` entries and `n`
        // is bounded by the capacity passed to epoll_wait.
        unsafe { buf.set_len(n.min(buf.capacity())) };
        Ok(n)
    }
}

impl Drop for EpollFd {
    fn drop(&mut self) {
        // SAFETY: self.0 is a live fd owned exclusively by this struct.
        unsafe { close(self.0) };
    }
}
