//! # delta_reactor — hand-rolled epoll primitives for the wire tier
//!
//! The building blocks of a nonblocking, mio-style event loop, vendored
//! like the rest of the workspace instead of pulled from crates.io:
//!
//! * [`Poller`] — a thin, safe wrapper over Linux `epoll`: register a
//!   file descriptor under a caller-chosen `usize` token with an
//!   [`Interest`] (readable/writable), then [`Poller::wait`] for
//!   readiness. Level-triggered, so a handler that leaves bytes behind
//!   is re-notified on the next wait — the forgiving mode; the caller
//!   manages interest instead of draining contracts.
//! * [`Slab`] — the token allocator: connections live in a dense slab
//!   whose keys double as epoll tokens, so a readiness event maps back
//!   to its connection with one bounds-checked index, no hashing.
//! * [`TimerWheel`] — coarse hashed-wheel deadlines (mid-frame stall
//!   limits, shutdown grace periods): O(1) insert/cancel, expiry by
//!   cursor advance. Deadlines fire within one wheel tick of their
//!   nominal instant, which is exactly the tolerance a multi-second
//!   reap limit wants.
//!
//! All unsafe code (the raw `epoll_*` syscalls and the one `epoll_event`
//! buffer epoll writes into) is confined to the private `sys` module;
//! the public surface is safe. The crate is Linux-only by construction —
//! the workspace's serving stack targets the same.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod poll;
mod slab;
mod sys;
mod timer;

pub use poll::{Event, Events, Interest, Poller};
pub use slab::Slab;
pub use timer::{TimerKey, TimerWheel};
