//! A coarse hashed timer wheel for connection deadlines.

use crate::slab::Slab;
use std::time::{Duration, Instant};

/// Handle to a pending deadline, used to cancel or re-arm it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerKey(usize);

struct Entry {
    /// The caller's token (e.g. the connection's slab key).
    token: usize,
    /// The exact deadline; the wheel slot is only a coarse bucket, so
    /// expiry re-checks this before firing.
    deadline: Instant,
}

/// A hashed timer wheel: deadlines land in `now..now+span` buckets of
/// `tick` width; [`TimerWheel::poll`] advances a cursor and fires every
/// entry whose exact deadline has passed.
///
/// Insert and cancel are O(1); poll is O(slots advanced + entries
/// scanned). Deadlines further out than one wheel revolution park in the
/// bucket one revolution short and are re-bucketed when the cursor
/// reaches them — correct for any horizon, efficient for the short
/// (seconds-scale) stall limits the wire tier uses.
pub struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<usize>>,
    entries: Slab<Entry>,
    cursor: usize,
    /// The instant slot `cursor` covers the start of.
    cursor_time: Instant,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `tick` wide, starting at `now`.
    pub fn new(tick: Duration, slots: usize, now: Instant) -> TimerWheel {
        assert!(slots >= 2, "a wheel needs at least two slots");
        assert!(tick > Duration::ZERO, "a wheel needs a nonzero tick");
        TimerWheel {
            tick,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            entries: Slab::new(),
            cursor: 0,
            cursor_time: now,
        }
    }

    /// The tick width this wheel rounds deadlines to.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Number of armed deadlines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no deadline is armed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn slot_for(&self, deadline: Instant) -> usize {
        let ticks = if deadline <= self.cursor_time {
            0
        } else {
            // Integer division truncates, so an entry never lands in a
            // slot the cursor passes before its deadline.
            (deadline - self.cursor_time).as_nanos() / self.tick.as_nanos().max(1)
        };
        // Far deadlines park one revolution out and re-bucket on pass.
        let ticks = (ticks as usize).min(self.slots.len() - 1);
        (self.cursor + ticks) % self.slots.len()
    }

    /// Arms a deadline for `token`, returning a key for [`cancel`].
    ///
    /// [`cancel`]: TimerWheel::cancel
    pub fn insert(&mut self, deadline: Instant, token: usize) -> TimerKey {
        let key = self.entries.insert(Entry { token, deadline });
        let slot = self.slot_for(deadline);
        self.slots[slot].push(key);
        TimerKey(key)
    }

    /// Disarms a deadline. Stale keys (already fired or cancelled) are a
    /// no-op; the slot-list entry is dropped lazily when its bucket is
    /// next scanned.
    pub fn cancel(&mut self, key: TimerKey) {
        self.entries.remove(key.0);
    }

    /// Advances the wheel to `now`, appending the tokens of every fired
    /// deadline to `expired`. Returns how many fired.
    pub fn poll(&mut self, now: Instant, expired: &mut Vec<usize>) -> usize {
        let fired_at_start = expired.len();
        // Advance slot by slot, never past `now`, and never more than
        // one full revolution per poll (beyond that the scan restarts at
        // the same buckets anyway).
        let mut advanced = 0;
        while advanced <= self.slots.len() {
            let mut i = 0;
            // Scan the current bucket: fire due entries, keep the rest
            // (parked far-deadline entries re-bucket here).
            while i < self.slots[self.cursor].len() {
                let key = self.slots[self.cursor][i];
                match self.entries.get(key) {
                    None => {
                        // Cancelled: lazy removal.
                        self.slots[self.cursor].swap_remove(i);
                    }
                    Some(e) if e.deadline <= now => {
                        expired.push(e.token);
                        self.entries.remove(key);
                        self.slots[self.cursor].swap_remove(i);
                    }
                    Some(e) => {
                        let target = self.slot_for(e.deadline);
                        if target != self.cursor {
                            // Parked from a previous revolution; move it
                            // toward its real bucket.
                            self.slots[self.cursor].swap_remove(i);
                            self.slots[target].push(key);
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            // Step the cursor forward one tick if `now` has cleared it.
            let next_time = self.cursor_time + self.tick;
            if next_time <= now {
                self.cursor = (self.cursor + 1) % self.slots.len();
                self.cursor_time = next_time;
                advanced += 1;
            } else {
                break;
            }
        }
        expired.len() - fired_at_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel(now: Instant) -> TimerWheel {
        TimerWheel::new(Duration::from_millis(10), 32, now)
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let t0 = Instant::now();
        let mut w = wheel(t0);
        w.insert(t0 + Duration::from_millis(25), 7);
        let mut out = Vec::new();
        assert_eq!(w.poll(t0 + Duration::from_millis(20), &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(w.poll(t0 + Duration::from_millis(30), &mut out), 1);
        assert_eq!(out, vec![7]);
        // Fired entries don't fire twice.
        assert_eq!(w.poll(t0 + Duration::from_millis(60), &mut out), 0);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_suppresses_fire() {
        let t0 = Instant::now();
        let mut w = wheel(t0);
        let k = w.insert(t0 + Duration::from_millis(15), 1);
        w.insert(t0 + Duration::from_millis(15), 2);
        w.cancel(k);
        let mut out = Vec::new();
        assert_eq!(w.poll(t0 + Duration::from_millis(40), &mut out), 1);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let t0 = Instant::now();
        let mut w = wheel(t0 + Duration::from_millis(100));
        w.insert(t0, 3);
        let mut out = Vec::new();
        assert_eq!(w.poll(t0 + Duration::from_millis(100), &mut out), 1);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn deadline_beyond_one_revolution() {
        let t0 = Instant::now();
        let mut w = wheel(t0); // 32 slots × 10ms = 320ms span
        w.insert(t0 + Duration::from_millis(700), 9);
        let mut out = Vec::new();
        // Sweep forward in coarse steps; the entry must survive the
        // parking revolutions and fire only once its instant passes.
        for ms in (0..700).step_by(50) {
            assert_eq!(
                w.poll(t0 + Duration::from_millis(ms), &mut out),
                0,
                "at {ms}ms"
            );
        }
        assert_eq!(w.poll(t0 + Duration::from_millis(710), &mut out), 1);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn rearm_pattern() {
        // The reactor re-arms by cancel + insert on progress.
        let t0 = Instant::now();
        let mut w = wheel(t0);
        let mut key = w.insert(t0 + Duration::from_millis(30), 5);
        let mut out = Vec::new();
        for step in 1..=4 {
            let now = t0 + Duration::from_millis(step * 10);
            assert_eq!(w.poll(now, &mut out), 0, "progress keeps it alive");
            w.cancel(key);
            key = w.insert(now + Duration::from_millis(30), 5);
        }
        // Then the client goes quiet.
        assert_eq!(w.poll(t0 + Duration::from_millis(90), &mut out), 1);
        assert_eq!(out, vec![5]);
        assert!(w.is_empty());
    }

    #[test]
    fn many_tokens_same_slot() {
        let t0 = Instant::now();
        let mut w = wheel(t0);
        for tok in 0..100 {
            w.insert(t0 + Duration::from_millis(15), tok);
        }
        let mut out = Vec::new();
        assert_eq!(w.poll(t0 + Duration::from_millis(20), &mut out), 100);
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
