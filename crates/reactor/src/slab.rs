//! A dense free-list slab: stable `usize` keys that double as epoll
//! tokens.

/// One slab slot: occupied, or a link in the free list.
enum Slot<T> {
    Occupied(T),
    /// Next free slot index, or `usize::MAX` for end-of-list.
    Free(usize),
}

/// A vector-backed arena with O(1) insert/remove and stable keys.
///
/// Keys are reused after removal (lowest-index-last-freed first), which
/// is exactly what a reactor wants: the token space stays as dense as
/// the live connection set, so a readiness event resolves with one
/// bounds-checked index.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: usize,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free_head: usize::MAX,
            len: 0,
        }
    }

    /// Stores `value`, returning its key.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        if self.free_head != usize::MAX {
            let key = self.free_head;
            match self.slots[key] {
                Slot::Free(next) => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.slots[key] = Slot::Occupied(value);
            key
        } else {
            self.slots.push(Slot::Occupied(value));
            self.slots.len() - 1
        }
    }

    /// Removes and returns the value under `key`, or `None` if the key
    /// is stale or out of range.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        match self.slots.get_mut(key) {
            Some(slot @ Slot::Occupied(_)) => {
                let old = std::mem::replace(slot, Slot::Free(self.free_head));
                self.free_head = key;
                self.len -= 1;
                match old {
                    Slot::Occupied(v) => Some(v),
                    Slot::Free(_) => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Shared access to the value under `key`.
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.slots.get(key) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Exclusive access to the value under `key`.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        match self.slots.get_mut(key) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The keys of all live entries, lowest first. Collected rather than
    /// borrowed so the caller can mutate/remove while walking.
    pub fn keys(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Occupied(_) => Some(i),
                Slot::Free(_) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuse() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(slab.len(), 3);

        assert_eq!(slab.remove(b), Some("b"));
        assert_eq!(slab.remove(b), None, "double remove is a no-op");
        assert_eq!(slab.len(), 2);

        // The freed key is reused before the slab grows.
        let d = slab.insert("d");
        assert_eq!(d, b);
        assert_eq!(slab.get(d), Some(&"d"));
        assert_eq!(slab.len(), 3);

        // LIFO reuse across several frees.
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(c), Some("c"));
        let e = slab.insert("e");
        let f = slab.insert("f");
        assert_eq!((e, f), (c, a));
    }

    #[test]
    fn get_mut_and_keys() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        *slab.get_mut(a).unwrap() += 1;
        assert_eq!(slab.get(a), Some(&11));
        assert_eq!(slab.get(usize::MAX), None);
        assert_eq!(slab.keys(), vec![a, b]);
        slab.remove(a);
        assert_eq!(slab.keys(), vec![b]);
        assert!(!slab.is_empty());
        slab.remove(b);
        assert!(slab.is_empty());
    }
}
