//! The safe epoll wrapper: token-addressed interest management plus a
//! readiness wait.

use crate::sys;
use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// What a registration wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable — a connection with a pending flush.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Writable only — flush backlog with input paused (backpressure).
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if self.readable {
            m |= sys::EPOLLIN;
        }
        if self.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One readiness notification, resolved back to the caller's token.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// Readable (data, EOF, or peer half-close).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup — the next read/write will surface the cause.
    pub error: bool,
}

/// Reusable readiness buffer for [`Poller::wait`].
pub struct Events {
    buf: Vec<sys::EpollEvent>,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: Vec::with_capacity(capacity.max(1)),
        }
    }

    /// The events the last [`Poller::wait`] filled in.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf.iter().map(|e| {
            // Copy out of the (possibly packed) FFI struct before
            // touching the fields.
            let (events, data) = (e.events, e.data);
            Event {
                token: data as usize,
                readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                error: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            }
        })
    }

    /// How many events the last wait returned.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the last wait returned nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A level-triggered epoll instance with token-addressed registrations.
///
/// Tokens are plain `usize`s chosen by the caller (the reactor uses slab
/// keys); re-registering an fd replaces its token and interest.
pub struct Poller {
    epfd: sys::EpollFd,
}

impl Poller {
    /// Creates a fresh epoll instance (`CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::EpollFd::new()?,
        })
    }

    fn event(token: usize, interest: Interest) -> sys::EpollEvent {
        sys::EpollEvent {
            events: interest.mask(),
            data: token as u64,
        }
    }

    /// Registers `fd` under `token` with `interest`.
    pub fn add(&self, fd: &impl AsRawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.epfd.ctl(
            sys::EPOLL_CTL_ADD,
            fd.as_raw_fd(),
            Some(Self::event(token, interest)),
        )
    }

    /// Updates an existing registration's token and interest.
    pub fn modify(&self, fd: &impl AsRawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.epfd.ctl(
            sys::EPOLL_CTL_MOD,
            fd.as_raw_fd(),
            Some(Self::event(token, interest)),
        )
    }

    /// Removes a registration. Closing the fd removes it implicitly, but
    /// an explicit delete keeps the registration set equal to the live
    /// connection set even when fds are duplicated.
    pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.epfd.ctl(sys::EPOLL_CTL_DEL, fd.as_raw_fd(), None)
    }

    /// Raw-fd variant of [`Poller::add`], for callers juggling cloned
    /// handles.
    pub fn add_raw(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.epfd
            .ctl(sys::EPOLL_CTL_ADD, fd, Some(Self::event(token, interest)))
    }

    /// Waits up to `timeout` (forever when `None`) for readiness,
    /// filling `events`. Returns the number of ready registrations;
    /// zero means the timeout elapsed (or a signal interrupted the
    /// wait).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // Round up so a 1ns timeout polls for 1ms instead of
            // busy-spinning at 0.
            Some(d) => {
                i32::try_from(d.as_millis().max(1).min(i32::MAX as u128)).unwrap_or(i32::MAX)
            }
            None => -1,
        };
        events.buf.clear();
        self.epfd.wait(&mut events.buf, timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    /// A connected local socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_when_bytes_arrive() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, 7, Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing yet: the wait times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        a.write_all(b"hello").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);

        // Level-triggered: unread bytes re-notify.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 16];
        let got = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"hello");
    }

    #[test]
    fn writable_interest_and_modify() {
        let (_a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, 3, Interest::READ).unwrap();
        let mut events = Events::with_capacity(8);
        // Not readable, and writable isn't registered: timeout.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        // An empty socket buffer is immediately writable once asked.
        poller.modify(&b, 3, Interest::READ_WRITE).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable);
        poller.delete(&b).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn peer_close_is_readable() {
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, 1, Interest::READ).unwrap();
        drop(a);
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.readable, "peer close must wake the read side");
        let mut buf = [0u8; 4];
        assert_eq!((&b).read(&mut buf).unwrap(), 0, "and read sees EOF");
    }
}
