//! Metered duplex links built on crossbeam channels.
//!
//! A [`Link`] joins two endpoints (e.g. the middleware cache and the
//! repository server) with unbounded channels in both directions and a
//! shared [`TrafficMeter`] that records every message's wire bytes. This
//! is the substrate for the threaded deployment: each endpoint runs in its
//! own thread and exchanges [`NetMessage`]s, and at the end of a run the
//! meter must reconcile with the simulator's cost ledger byte-for-byte.

use crate::message::NetMessage;
use crate::meter::{TrafficMeter, TrafficSnapshot};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Errors on a link operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// The peer endpoint has been dropped.
    Disconnected,
    /// A receive timed out.
    Timeout,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Disconnected => write!(f, "peer disconnected"),
            LinkError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for LinkError {}

/// One side of a metered duplex link.
#[derive(Debug)]
pub struct Endpoint {
    tx: Sender<NetMessage>,
    rx: Receiver<NetMessage>,
    meter: Arc<TrafficMeter>,
}

impl Endpoint {
    /// Sends a message, charging its wire bytes to the link meter.
    pub fn send(&self, msg: NetMessage) -> Result<(), LinkError> {
        self.meter.record(msg.class(), msg.wire_bytes());
        self.tx.send(msg).map_err(|_| LinkError::Disconnected)
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<NetMessage, LinkError> {
        self.rx.recv().map_err(|_| LinkError::Disconnected)
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, d: Duration) -> Result<NetMessage, LinkError> {
        self.rx.recv_timeout(d).map_err(|e| match e {
            RecvTimeoutError::Timeout => LinkError::Timeout,
            RecvTimeoutError::Disconnected => LinkError::Disconnected,
        })
    }

    /// Non-blocking receive; `None` when no message is waiting.
    pub fn try_recv(&self) -> Option<NetMessage> {
        self.rx.try_recv().ok()
    }

    /// Snapshot of the shared link meter.
    pub fn meter(&self) -> TrafficSnapshot {
        self.meter.snapshot()
    }

    /// The raw inbound channel, for callers that must `select!` across
    /// this link and other event sources (e.g. a server listening to both
    /// the WAN and its local data pipeline). Receiving through it bypasses
    /// nothing: metering happens on send.
    pub fn receiver(&self) -> &Receiver<NetMessage> {
        &self.rx
    }
}

/// A metered duplex link between two endpoints.
#[derive(Debug)]
pub struct Link;

impl Link {
    /// Creates a link, returning its two endpoints and a handle to the
    /// shared meter.
    pub fn pair() -> (Endpoint, Endpoint, Arc<TrafficMeter>) {
        let meter = Arc::new(TrafficMeter::new());
        let (atx, brx) = unbounded();
        let (btx, arx) = unbounded();
        let a = Endpoint {
            tx: atx,
            rx: arx,
            meter: Arc::clone(&meter),
        };
        let b = Endpoint {
            tx: btx,
            rx: brx,
            meter: Arc::clone(&meter),
        };
        (a, b, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::TrafficClass;

    #[test]
    fn round_trip_and_metering() {
        let (cache, server, meter) = Link::pair();
        cache
            .send(NetMessage::QueryShip {
                query_seq: 1,
                result_bytes: 500,
            })
            .unwrap();
        let got = server.recv().unwrap();
        assert_eq!(
            got,
            NetMessage::QueryShip {
                query_seq: 1,
                result_bytes: 500
            }
        );
        server
            .send(NetMessage::UpdateShip {
                object: 2,
                from_version: 0,
                to_version: 1,
                bytes: 70,
            })
            .unwrap();
        let _ = cache.recv().unwrap();
        let s = meter.snapshot();
        assert_eq!(s.bytes_for(TrafficClass::QueryShip), 500);
        assert_eq!(s.bytes_for(TrafficClass::UpdateShip), 70);
        assert_eq!(s.charged_total(), 570);
    }

    #[test]
    fn disconnect_detected() {
        let (a, b, _) = Link::pair();
        drop(b);
        assert_eq!(a.send(NetMessage::Shutdown), Err(LinkError::Disconnected));
        assert_eq!(a.recv(), Err(LinkError::Disconnected));
    }

    #[test]
    fn timeout_vs_data() {
        let (a, b, _) = Link::pair();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(LinkError::Timeout)
        );
        b.send(NetMessage::Shutdown).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(100)),
            Ok(NetMessage::Shutdown)
        );
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn threaded_echo_accounts_everything() {
        let (cache, server, meter) = Link::pair();
        let h = std::thread::spawn(move || {
            // Server: echo loads for every query until shutdown.
            let mut served = 0u64;
            loop {
                match server.recv().unwrap() {
                    NetMessage::QueryShip {
                        query_seq,
                        result_bytes,
                    } => {
                        served += 1;
                        server
                            .send(NetMessage::ObjectLoad {
                                object: query_seq as u32,
                                version: 0,
                                bytes: result_bytes * 2,
                            })
                            .unwrap();
                    }
                    NetMessage::Shutdown => return served,
                    _ => {}
                }
            }
        });
        let mut sent = 0u64;
        for i in 0..100 {
            cache
                .send(NetMessage::QueryShip {
                    query_seq: i,
                    result_bytes: 10,
                })
                .unwrap();
            sent += 10;
            let reply = cache.recv().unwrap();
            assert!(matches!(reply, NetMessage::ObjectLoad { .. }));
        }
        cache.send(NetMessage::Shutdown).unwrap();
        assert_eq!(h.join().unwrap(), 100);
        let s = meter.snapshot();
        assert_eq!(s.bytes_for(TrafficClass::QueryShip), sent);
        assert_eq!(s.bytes_for(TrafficClass::ObjectLoad), sent * 2);
    }
}
