//! Link fault injection: lossy transfers with TCP-style retransmission.
//!
//! The paper assumes a reliable, size-proportional transport (§3). A real
//! WAN occasionally drops segments; TCP retransmits and delivers anyway —
//! the *charged* cost model is unchanged, but real bytes on the wire grow
//! by the retransmitted fraction. [`LossyEndpoint`] wraps an
//! [`Endpoint`] with a deterministic per-message loss process: each data
//! message is "transmitted" one or more times until a send succeeds; the
//! failed attempts are metered under [`TrafficClass::Retransmit`] so
//! overhead is visible and auditable, while delivery semantics stay
//! exactly-once (no protocol-level reordering or deadlock).

use crate::link::{Endpoint, LinkError};
use crate::message::NetMessage;
use crate::meter::{TrafficClass, TrafficMeter, TrafficSnapshot};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// A deterministic message-loss process.
#[derive(Debug)]
pub struct LossModel {
    loss_probability: f64,
    rng: StdRng,
    drops: u64,
}

impl LossModel {
    /// Creates a loss process dropping each transmission attempt with
    /// `loss_probability`, seeded for reproducibility.
    ///
    /// # Panics
    /// Panics unless `0.0 <= loss_probability < 1.0` (a probability of 1
    /// would never deliver anything).
    pub fn new(loss_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_probability),
            "loss probability must be in [0, 1), got {loss_probability}"
        );
        Self {
            loss_probability,
            rng: StdRng::seed_from_u64(seed),
            drops: 0,
        }
    }

    /// A loss-free process (wrapping with this is a no-op).
    pub fn reliable() -> Self {
        Self::new(0.0, 0)
    }

    /// Whether the next transmission attempt is lost.
    fn attempt_lost(&mut self) -> bool {
        let lost = self.loss_probability > 0.0 && self.rng.random_bool(self.loss_probability);
        if lost {
            self.drops += 1;
        }
        lost
    }

    /// Transmission attempts lost so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// An endpoint whose sends traverse a lossy wire with retransmission.
#[derive(Debug)]
pub struct LossyEndpoint {
    inner: Endpoint,
    loss: LossModel,
    meter: Arc<TrafficMeter>,
}

impl LossyEndpoint {
    /// Wraps `inner`. Retransmitted bytes are recorded on `meter` (pass
    /// the link's shared meter so snapshots show everything in one
    /// place).
    pub fn new(inner: Endpoint, loss: LossModel, meter: Arc<TrafficMeter>) -> Self {
        Self { inner, loss, meter }
    }

    /// Sends `msg`, retransmitting through losses until it is delivered.
    /// Every lost attempt's wire bytes are metered as
    /// [`TrafficClass::Retransmit`]; the successful attempt is metered
    /// normally by the underlying endpoint.
    ///
    /// # Errors
    /// Returns [`LinkError::Disconnected`] if the peer is gone.
    pub fn send(&mut self, msg: NetMessage) -> Result<(), LinkError> {
        while self.loss.attempt_lost() {
            self.meter
                .record(TrafficClass::Retransmit, msg.wire_bytes());
        }
        self.inner.send(msg)
    }

    /// Blocking receive (reception is reliable: loss is modeled at the
    /// sender, where TCP's retransmission bookkeeping lives).
    ///
    /// # Errors
    /// Returns [`LinkError::Disconnected`] if the peer is gone.
    pub fn recv(&self) -> Result<NetMessage, LinkError> {
        self.inner.recv()
    }

    /// Snapshot of the link meter.
    pub fn meter(&self) -> TrafficSnapshot {
        self.inner.meter()
    }

    /// Transmission attempts lost so far.
    pub fn drops(&self) -> u64 {
        self.loss.drops()
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &Endpoint {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    #[test]
    fn reliable_model_never_drops() {
        let (a, b, meter) = Link::pair();
        let mut lossy = LossyEndpoint::new(a, LossModel::reliable(), Arc::clone(&meter));
        for i in 0..100 {
            lossy
                .send(NetMessage::QueryShip {
                    query_seq: i,
                    result_bytes: 10,
                })
                .unwrap();
        }
        drop(lossy);
        for _ in 0..100 {
            b.recv().unwrap();
        }
        let s = meter.snapshot();
        assert_eq!(s.bytes_for(TrafficClass::Retransmit), 0);
        assert_eq!(s.bytes_for(TrafficClass::QueryShip), 1000);
    }

    #[test]
    fn lossy_link_still_delivers_everything_once() {
        let (a, b, meter) = Link::pair();
        let mut lossy = LossyEndpoint::new(a, LossModel::new(0.3, 42), Arc::clone(&meter));
        for i in 0..500 {
            lossy
                .send(NetMessage::QueryShip {
                    query_seq: i,
                    result_bytes: 10,
                })
                .unwrap();
        }
        let drops = lossy.drops();
        assert!(drops > 0, "30% loss over 500 sends must drop something");
        // Exactly-once delivery in order.
        for i in 0..500 {
            match b.recv().unwrap() {
                NetMessage::QueryShip { query_seq, .. } => assert_eq!(query_seq, i),
                other => panic!("unexpected {other:?}"),
            }
        }
        let s = meter.snapshot();
        assert_eq!(
            s.bytes_for(TrafficClass::QueryShip),
            5000,
            "charged bytes unchanged"
        );
        assert_eq!(
            s.bytes_for(TrafficClass::Retransmit),
            drops * 10,
            "every lost attempt metered"
        );
    }

    #[test]
    fn loss_process_is_deterministic() {
        let run = || {
            let mut m = LossModel::new(0.25, 7);
            (0..1000).filter(|_| m.attempt_lost()).count()
        };
        assert_eq!(run(), run());
        let c = run();
        assert!(
            (150..350).contains(&c),
            "got {c} losses out of 1000 at p=0.25"
        );
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn certain_loss_rejected() {
        let _ = LossModel::new(1.0, 0);
    }
}
