//! Traffic accounting.
//!
//! The paper's sole figure of merit is network traffic in bytes (§3:
//! "network traffic costs are assumed proportional to the size of the data
//! being communicated"). A [`TrafficMeter`] sits on a link and counts every
//! byte by message class, so simulator-reported costs can be *audited*
//! against bytes that actually crossed the link.

use std::sync::atomic::{AtomicU64, Ordering};

/// Classes of traffic on the cache↔server link, mirroring the paper's
/// three communication mechanisms plus result return.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// A query shipped from cache to server (the query text itself is
    /// negligible; the *result* bytes dominate and are what ν(q) charges).
    QueryShip,
    /// Update content shipped from server to cache.
    UpdateShip,
    /// A whole object bulk-copied to the cache.
    ObjectLoad,
    /// Anything else (control, acks); not charged by the paper's model.
    Control,
    /// Bytes lost in flight and sent again (fault injection). Real
    /// overhead on the wire, but not part of the paper's charged cost
    /// model, which assumes reliable transport.
    Retransmit,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::QueryShip,
        TrafficClass::UpdateShip,
        TrafficClass::ObjectLoad,
        TrafficClass::Control,
        TrafficClass::Retransmit,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::QueryShip => 0,
            TrafficClass::UpdateShip => 1,
            TrafficClass::ObjectLoad => 2,
            TrafficClass::Control => 3,
            TrafficClass::Retransmit => 4,
        }
    }
}

/// Thread-safe byte counters per traffic class.
#[derive(Debug, Default)]
pub struct TrafficMeter {
    bytes: [AtomicU64; 5],
    messages: [AtomicU64; 5],
}

/// A point-in-time copy of a meter's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Bytes per class, indexed as [`TrafficClass::ALL`].
    pub bytes: [u64; 5],
    /// Message counts per class.
    pub messages: [u64; 5],
}

impl TrafficSnapshot {
    /// Bytes recorded for one class.
    pub fn bytes_for(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total bytes across query shipping, update shipping and object
    /// loading — the paper's network traffic cost.
    pub fn charged_total(&self) -> u64 {
        self.bytes[0] + self.bytes[1] + self.bytes[2]
    }

    /// Total bytes including control traffic.
    pub fn grand_total(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

impl TrafficMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` of traffic in `class`.
    pub fn record(&self, class: TrafficClass, bytes: u64) {
        let i = class.index();
        self.bytes[i].fetch_add(bytes, Ordering::Relaxed);
        self.messages[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let mut s = TrafficSnapshot::default();
        for i in 0..5 {
            s.bytes[i] = self.bytes[i].load(Ordering::Relaxed);
            s.messages[i] = self.messages[i].load(Ordering::Relaxed);
        }
        s
    }

    /// Total charged bytes (query + update + load).
    pub fn charged_total(&self) -> u64 {
        self.snapshot().charged_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_by_class() {
        let m = TrafficMeter::new();
        m.record(TrafficClass::QueryShip, 100);
        m.record(TrafficClass::QueryShip, 50);
        m.record(TrafficClass::UpdateShip, 7);
        m.record(TrafficClass::Control, 1);
        let s = m.snapshot();
        assert_eq!(s.bytes_for(TrafficClass::QueryShip), 150);
        assert_eq!(s.messages[0], 2);
        assert_eq!(s.charged_total(), 157);
        assert_eq!(s.grand_total(), 158);
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let m = Arc::new(TrafficMeter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    m.record(TrafficClass::ObjectLoad, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            m.snapshot().bytes_for(TrafficClass::ObjectLoad),
            8 * 10_000 * 3
        );
    }
}
