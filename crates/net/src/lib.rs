//! # delta-net — simulated network substrate
//!
//! Replaces the paper's physical deployment (MS SQL replication links
//! between a server and a middleware cache, §6.1) with metered in-process
//! links:
//!
//! * [`TrafficMeter`] / [`TrafficClass`] — byte counters per communication
//!   mechanism (query shipping, update shipping, object loading — the
//!   paper's three, §3 — plus uncharged control traffic).
//! * [`NetMessage`] — logical wire messages carrying byte counts instead of
//!   real payloads, preserving the size-proportional cost model.
//! * [`Link`] / [`Endpoint`] — metered duplex crossbeam channels for the
//!   threaded client/cache/server deployment; meters reconcile with the
//!   simulator's cost ledger byte-for-byte.
//!
//! ```
//! use delta_net::{Link, NetMessage, TrafficClass};
//!
//! let (cache, server, meter) = Link::pair();
//! cache.send(NetMessage::QueryShip { query_seq: 7, result_bytes: 1024 }).unwrap();
//! assert!(matches!(server.recv().unwrap(), NetMessage::QueryShip { .. }));
//! assert_eq!(meter.snapshot().bytes_for(TrafficClass::QueryShip), 1024);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod latency;
pub mod link;
pub mod message;
pub mod meter;

pub use fault::{LossModel, LossyEndpoint};
pub use latency::LinkModel;
pub use link::{Endpoint, Link, LinkError};
pub use message::{NetMessage, ObjectLog};
pub use meter::{TrafficClass, TrafficMeter, TrafficSnapshot};
