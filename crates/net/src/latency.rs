//! Link latency model: turning bytes moved into seconds waited.
//!
//! The paper optimizes network *traffic* and discusses response time
//! qualitatively (§4: "queries for which updates need to be applied may
//! be delayed … some updates can be preshipped"). To study that tradeoff
//! we price each synchronous transfer with the classic first-order WAN
//! model: one round-trip of setup latency plus bytes over bandwidth.
//! This is consistent with the paper's cost assumption — TCP transfer
//! cost scales linearly with size once transfers are much larger than a
//! frame (§3, citing Stevens).

use serde::{Deserialize, Serialize};

/// A point-to-point link with fixed bandwidth and round-trip time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Round-trip time in seconds, charged once per synchronous message
    /// exchange.
    pub rtt_secs: f64,
}

impl LinkModel {
    /// A wide-area research link: ~1 Gb/s usable, 50 ms RTT — the
    /// cache-to-repository path of the paper's architecture (the cache is
    /// "far" from the repository, §3).
    pub fn wan() -> Self {
        Self {
            bandwidth_bytes_per_sec: 125e6,
            rtt_secs: 0.050,
        }
    }

    /// A local-area link: 10 Gb/s, 0.5 ms RTT — clients sit next to the
    /// cache.
    pub fn lan() -> Self {
        Self {
            bandwidth_bytes_per_sec: 1.25e9,
            rtt_secs: 0.0005,
        }
    }

    /// Seconds to complete one synchronous exchange moving `bytes`.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.rtt_secs + bytes as f64 / self.bandwidth_bytes_per_sec.max(f64::MIN_POSITIVE)
    }

    /// Seconds for `messages` synchronous exchanges moving `bytes` in
    /// total (each message pays the RTT; the payload pays bandwidth
    /// once).
    pub fn exchange_secs(&self, messages: u32, bytes: u64) -> f64 {
        self.rtt_secs * messages as f64
            + bytes as f64 / self.bandwidth_bytes_per_sec.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_rtt_plus_serialization() {
        let l = LinkModel {
            bandwidth_bytes_per_sec: 1000.0,
            rtt_secs: 0.1,
        };
        assert!((l.transfer_secs(500) - 0.6).abs() < 1e-12);
        assert!((l.transfer_secs(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn exchanges_pay_rtt_per_message() {
        let l = LinkModel {
            bandwidth_bytes_per_sec: 1000.0,
            rtt_secs: 0.1,
        };
        assert!((l.exchange_secs(3, 1000) - (0.3 + 1.0)).abs() < 1e-12);
        assert_eq!(l.exchange_secs(0, 0), 0.0);
    }

    #[test]
    fn wan_is_slower_than_lan() {
        assert!(
            LinkModel::wan().transfer_secs(1_000_000) > LinkModel::lan().transfer_secs(1_000_000)
        );
    }

    #[test]
    fn larger_transfers_take_longer() {
        let l = LinkModel::wan();
        assert!(l.transfer_secs(2_000_000) > l.transfer_secs(1_000_000));
    }
}
