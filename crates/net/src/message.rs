//! Wire messages between the middleware cache and the repository server.
//!
//! Payloads are *logical*: a message carries the byte count of the data it
//! represents rather than gigabytes of synthetic content. Links charge
//! meters by [`NetMessage::wire_bytes`], which preserves the paper's
//! size-proportional cost model exactly while keeping simulation memory
//! flat.

use crate::meter::TrafficClass;
use serde::{Deserialize, Serialize};

/// Identifier types shared with `delta-storage` (kept as raw integers here
/// so the net crate stays dependency-light).
pub type ObjectNo = u32;

/// A message on the cache↔server WAN link.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetMessage {
    /// Cache forwards a query for server-side execution. `result_bytes` is
    /// the size of the result the server will return to the client.
    QueryShip {
        /// Query sequence number.
        query_seq: u64,
        /// Result size in bytes — the ν(q) network charge.
        result_bytes: u64,
    },
    /// Server ships a range of updates for one object.
    UpdateShip {
        /// Target object.
        object: ObjectNo,
        /// Version range `(from, to]` being shipped.
        from_version: u64,
        /// End of the version range.
        to_version: u64,
        /// Update content size — the ν(u) charge for the range.
        bytes: u64,
    },
    /// Server bulk-copies a whole object to the cache.
    ObjectLoad {
        /// Object being loaded.
        object: ObjectNo,
        /// Version the copy is current to.
        version: u64,
        /// Object size including all updates so far — the load charge ν(o).
        bytes: u64,
    },
    /// Cache tells the server it dropped an object (so the server stops
    /// propagating its invalidations). Control-plane; not charged.
    EvictNotice {
        /// Object evicted.
        object: ObjectNo,
    },
    /// Cache asks the server to ship an update range. Control-plane; the
    /// charged bytes travel back in the [`NetMessage::UpdateShip`] reply.
    UpdateFetch {
        /// Target object.
        object: ObjectNo,
        /// First version wanted (exclusive of already-applied).
        from_version: u64,
        /// Last version wanted.
        to_version: u64,
    },
    /// Cache asks the server to bulk-copy an object. Control-plane; the
    /// charged bytes travel back in the [`NetMessage::ObjectLoad`] reply.
    LoadRequest {
        /// Object wanted.
        object: ObjectNo,
    },
    /// Server notifies the cache that an object got a new update and its
    /// cached copy is stale (§3 invalidation). Carries the update's
    /// metadata (size, arrival time) so the cache's catalog mirror stays
    /// exact. Control-plane; not charged — the update *content* only moves
    /// via [`NetMessage::UpdateShip`].
    Invalidation {
        /// Object invalidated.
        object: ObjectNo,
        /// New server-side version.
        version: u64,
        /// Size of the update's content (metadata).
        bytes: u64,
        /// Global sequence number of the update's arrival.
        seq: u64,
    },
    /// A recovering cache asks the server for the full metadata history
    /// needed to rebuild its repository mirror (failure recovery).
    /// Control-plane; not charged.
    SyncRequest,
    /// Server's answer to [`NetMessage::SyncRequest`]: per-object update
    /// logs (sizes and arrival times only — metadata, not content).
    /// Control-plane; a real system would pay a few bytes per entry,
    /// which the paper's cost model does not charge.
    SyncReply {
        /// One log per object that has received updates.
        logs: Vec<ObjectLog>,
    },
    /// End-of-stream marker for orderly shutdown of threaded deployments.
    Shutdown,
}

/// The update history of one object, as carried by
/// [`NetMessage::SyncReply`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectLog {
    /// The object.
    pub object: ObjectNo,
    /// `(bytes, seq)` of each update, in application order; replaying
    /// them through a fresh repository reproduces the server's version
    /// numbering exactly.
    pub updates: Vec<(u64, u64)>,
}

impl NetMessage {
    /// The bytes this message occupies on the wire under the paper's
    /// size-proportional model.
    pub fn wire_bytes(&self) -> u64 {
        match *self {
            NetMessage::QueryShip { result_bytes, .. } => result_bytes,
            NetMessage::UpdateShip { bytes, .. } => bytes,
            NetMessage::ObjectLoad { bytes, .. } => bytes,
            // Control messages are a few dozen bytes; the paper does not
            // charge them and neither do we.
            NetMessage::EvictNotice { .. }
            | NetMessage::UpdateFetch { .. }
            | NetMessage::LoadRequest { .. }
            | NetMessage::Invalidation { .. }
            | NetMessage::SyncRequest
            | NetMessage::SyncReply { .. }
            | NetMessage::Shutdown => 0,
        }
    }

    /// The traffic class this message is metered under.
    pub fn class(&self) -> TrafficClass {
        match self {
            NetMessage::QueryShip { .. } => TrafficClass::QueryShip,
            NetMessage::UpdateShip { .. } => TrafficClass::UpdateShip,
            NetMessage::ObjectLoad { .. } => TrafficClass::ObjectLoad,
            _ => TrafficClass::Control,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_follow_payload() {
        assert_eq!(
            NetMessage::QueryShip {
                query_seq: 1,
                result_bytes: 42
            }
            .wire_bytes(),
            42
        );
        assert_eq!(
            NetMessage::UpdateShip {
                object: 1,
                from_version: 0,
                to_version: 2,
                bytes: 9
            }
            .wire_bytes(),
            9
        );
        assert_eq!(
            NetMessage::ObjectLoad {
                object: 1,
                version: 5,
                bytes: 100
            }
            .wire_bytes(),
            100
        );
        assert_eq!(
            NetMessage::Invalidation {
                object: 1,
                version: 1,
                bytes: 9,
                seq: 3
            }
            .wire_bytes(),
            0,
            "invalidations carry metadata only"
        );
        assert_eq!(
            NetMessage::UpdateFetch {
                object: 1,
                from_version: 0,
                to_version: 2
            }
            .wire_bytes(),
            0
        );
        assert_eq!(NetMessage::LoadRequest { object: 1 }.wire_bytes(), 0);
        assert_eq!(NetMessage::Shutdown.wire_bytes(), 0);
    }

    #[test]
    fn classes_map_to_mechanisms() {
        assert_eq!(
            NetMessage::QueryShip {
                query_seq: 0,
                result_bytes: 0
            }
            .class(),
            TrafficClass::QueryShip
        );
        assert_eq!(
            NetMessage::EvictNotice { object: 3 }.class(),
            TrafficClass::Control
        );
    }
}
