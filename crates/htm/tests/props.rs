//! Property-based tests for the HTM substrate.

use delta_htm::{mesh, Partition, Region, Trixel, TrixelId, Vec3};
use proptest::prelude::*;

fn arb_radec() -> impl Strategy<Value = (f64, f64)> {
    (0.0..360.0f64, -89.9..89.9f64)
}

proptest! {
    /// Point lookup always yields a trixel that contains the point, at any
    /// level, and levels are consistent (nested).
    #[test]
    fn lookup_contains_and_nests((ra, dec) in arb_radec(), level in 0u8..8) {
        let p = Vec3::from_radec_deg(ra, dec);
        let id = mesh::lookup(p, level);
        prop_assert_eq!(id.level(), level);
        prop_assert!(Trixel::from_id(id).contains(p));
        if level > 0 {
            let coarse = mesh::lookup(p, level - 1);
            prop_assert!(id.is_descendant_of(coarse));
        }
    }

    /// Raw-id round trip for ids built by random descent.
    #[test]
    fn id_raw_round_trip(base in 0u8..8, path in proptest::collection::vec(0u8..4, 0..10)) {
        let mut id = TrixelId::base(base);
        for c in path {
            id = id.child(c);
        }
        prop_assert_eq!(TrixelId::from_raw(id.raw()), Some(id));
    }

    /// A cone region's trixel cover contains the trixel of every point
    /// sampled inside the cone.
    #[test]
    fn cone_cover_is_sound(
        (ra, dec) in arb_radec(),
        radius_deg in 0.1..20.0f64,
        (dra, ddec) in (-1.0..1.0f64, -1.0..1.0f64),
        level in 2u8..5,
    ) {
        let region = Region::cone_deg(ra, dec, radius_deg);
        let ids = mesh::cover(&region, level);
        // A point guaranteed inside: offset center by < radius.
        let f = radius_deg / 3.0;
        let p = Vec3::from_radec_deg(ra + dra * f, (dec + ddec * f).clamp(-89.9, 89.9));
        if region.contains(p) {
            prop_assert!(ids.contains(&mesh::lookup(p, level)));
        }
    }

    /// Adaptive partitions: locate() result always covers the point, and
    /// region covers always include the located object.
    #[test]
    fn partition_locate_cover_consistent(
        (ra, dec) in arb_radec(),
        target in 8usize..150,
        radius_deg in 0.1..10.0f64,
    ) {
        let part = Partition::adaptive(|t| t.solid_angle(), target);
        prop_assert!(part.len() >= target);
        let p = Vec3::from_radec_deg(ra, dec);
        let idx = part.locate(p);
        prop_assert!(part.leaves()[idx].contains(p));
        let objs = part.objects_for_region(&Region::cone_deg(ra, dec, radius_deg));
        prop_assert!(objs.contains(&idx));
        // Indices are in range and strictly sorted (deduped).
        prop_assert!(objs.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(objs.iter().all(|&o| o < part.len()));
    }

    /// Solid angles of any subdivision sum to the parent's.
    #[test]
    fn subdivision_preserves_area(base in 0u8..8, path in proptest::collection::vec(0u8..4, 0..4)) {
        let mut t = Trixel::base(base);
        for c in path {
            t = t.subdivide()[c as usize];
        }
        let sum: f64 = t.subdivide().iter().map(|k| k.solid_angle()).sum();
        prop_assert!((sum - t.solid_angle()).abs() < 1e-9);
    }
}
