//! Trixels: the spherical triangles of the Hierarchical Triangular Mesh.
//!
//! The HTM divides the sphere into 8 base triangles (4 northern, 4 southern)
//! and refines each by recursive 4-way midpoint subdivision, exactly as in
//! Kunszt, Szalay & Thakar, *The Hierarchical Triangular Mesh* (2001) — the
//! index the SDSS `PhotoObj` table is partitioned by in the Delta paper.
//!
//! IDs use the standard sentinel encoding: a level-0 trixel has id `8 + b`
//! for base index `b` (so the binary representation starts with `1`), and a
//! child id is `parent * 4 + child_index`. The bit length therefore encodes
//! the depth.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Identifier of a trixel at any subdivision level.
///
/// The all-important property: `id.level()` and the full ancestor path are
/// recoverable from the integer alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TrixelId(u64);

impl TrixelId {
    /// Maximum supported subdivision level (keeps ids in 64 bits with slack).
    pub const MAX_LEVEL: u8 = 25;

    /// The id of base trixel `b` (0..8) at level 0.
    ///
    /// # Panics
    /// Panics if `b >= 8`.
    pub fn base(b: u8) -> Self {
        assert!(b < 8, "base trixel index must be in 0..8, got {b}");
        TrixelId(8 + u64::from(b))
    }

    /// All eight level-0 ids, in base order `S0..S3, N0..N3`.
    pub fn all_bases() -> [TrixelId; 8] {
        [
            Self::base(0),
            Self::base(1),
            Self::base(2),
            Self::base(3),
            Self::base(4),
            Self::base(5),
            Self::base(6),
            Self::base(7),
        ]
    }

    /// Raw integer value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an id from its raw value.
    ///
    /// Returns `None` if the value is not a valid sentinel-encoded trixel id
    /// (too small, too deep, or with a malformed bit length).
    pub fn from_raw(v: u64) -> Option<Self> {
        if v < 8 {
            return None;
        }
        let bits = 64 - v.leading_zeros();
        // Valid ids have bit length 4 + 2*level.
        if !(bits - 4).is_multiple_of(2) {
            return None;
        }
        let level = (bits - 4) / 2;
        if level > u32::from(Self::MAX_LEVEL) {
            return None;
        }
        Some(TrixelId(v))
    }

    /// Subdivision depth: 0 for the eight base trixels.
    #[inline]
    pub fn level(self) -> u8 {
        let bits = 64 - self.0.leading_zeros();
        ((bits - 4) / 2) as u8
    }

    /// The `c`-th child (0..4) one level deeper.
    ///
    /// # Panics
    /// Panics if `c >= 4` or the id is already at [`Self::MAX_LEVEL`].
    pub fn child(self, c: u8) -> Self {
        assert!(c < 4, "child index must be in 0..4, got {c}");
        assert!(
            self.level() < Self::MAX_LEVEL,
            "cannot subdivide below MAX_LEVEL"
        );
        TrixelId(self.0 * 4 + u64::from(c))
    }

    /// The four children in order.
    pub fn children(self) -> [TrixelId; 4] {
        [self.child(0), self.child(1), self.child(2), self.child(3)]
    }

    /// Parent id, or `None` for a base trixel.
    pub fn parent(self) -> Option<Self> {
        if self.level() == 0 {
            None
        } else {
            Some(TrixelId(self.0 / 4))
        }
    }

    /// Index of this trixel within its parent (0..4); base index for level 0.
    pub fn child_index(self) -> u8 {
        if self.level() == 0 {
            (self.0 - 8) as u8
        } else {
            (self.0 % 4) as u8
        }
    }

    /// Whether `self` is `other` or a descendant of `other`.
    pub fn is_descendant_of(self, other: TrixelId) -> bool {
        let (mut id, target) = (self.0, other.0);
        while id > target {
            id /= 4;
        }
        id == target
    }
}

impl std::fmt::Display for TrixelId {
    /// Formats as the conventional HTM name, e.g. `N2013` or `S31`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let level = self.level();
        let mut digits = Vec::with_capacity(level as usize);
        let mut v = self.0;
        for _ in 0..level {
            digits.push((v % 4) as u8);
            v /= 4;
        }
        let base = (v - 8) as u8;
        let (hemi, b) = if base < 4 {
            ('S', base)
        } else {
            ('N', base - 4)
        };
        write!(f, "{hemi}{b}")?;
        for d in digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// A trixel with materialized corner vertices (unit vectors, CCW as seen
/// from outside the sphere).
#[derive(Clone, Copy, Debug)]
pub struct Trixel {
    /// Identifier encoding level and ancestry.
    pub id: TrixelId,
    /// Corner vertices, counterclockwise.
    pub v: [Vec3; 3],
}

/// The six vertices of the octahedron the HTM starts from.
const V0: Vec3 = Vec3::new(0.0, 0.0, 1.0); // north pole
const V1: Vec3 = Vec3::new(1.0, 0.0, 0.0);
const V2: Vec3 = Vec3::new(0.0, 1.0, 0.0);
const V3: Vec3 = Vec3::new(-1.0, 0.0, 0.0);
const V4: Vec3 = Vec3::new(0.0, -1.0, 0.0);
const V5: Vec3 = Vec3::new(0.0, 0.0, -1.0); // south pole

impl Trixel {
    /// The eight base trixels `S0..S3, N0..N3` (standard HTM orientation).
    pub fn bases() -> [Trixel; 8] {
        let mk = |b: u8, a: Vec3, c: Vec3, d: Vec3| Trixel {
            id: TrixelId::base(b),
            v: [a, c, d],
        };
        [
            mk(0, V1, V5, V2), // S0
            mk(1, V2, V5, V3), // S1
            mk(2, V3, V5, V4), // S2
            mk(3, V4, V5, V1), // S3
            mk(4, V1, V0, V4), // N0
            mk(5, V4, V0, V3), // N1
            mk(6, V3, V0, V2), // N2
            mk(7, V2, V0, V1), // N3
        ]
    }

    /// The base trixel with index `b` (0..8).
    pub fn base(b: u8) -> Trixel {
        Self::bases()[b as usize]
    }

    /// Midpoint 4-way subdivision, in the standard HTM child order:
    /// child 0 keeps `v0`, child 1 keeps `v1`, child 2 keeps `v2`,
    /// child 3 is the central triangle.
    pub fn subdivide(&self) -> [Trixel; 4] {
        let w0 = self.v[1].midpoint(self.v[2]);
        let w1 = self.v[0].midpoint(self.v[2]);
        let w2 = self.v[0].midpoint(self.v[1]);
        [
            Trixel {
                id: self.id.child(0),
                v: [self.v[0], w2, w1],
            },
            Trixel {
                id: self.id.child(1),
                v: [self.v[1], w0, w2],
            },
            Trixel {
                id: self.id.child(2),
                v: [self.v[2], w1, w0],
            },
            Trixel {
                id: self.id.child(3),
                v: [w0, w1, w2],
            },
        ]
    }

    /// Whether the unit vector `p` lies inside (or on the edge of) this
    /// spherical triangle.
    pub fn contains(&self, p: Vec3) -> bool {
        // p is inside iff it is on the non-negative side of all three edge
        // planes. A small negative epsilon keeps shared edges owned by both
        // candidates so descent never gets stuck on boundary points.
        const EPS: f64 = -1e-12;
        self.v[0].cross(self.v[1]).dot(p) >= EPS
            && self.v[1].cross(self.v[2]).dot(p) >= EPS
            && self.v[2].cross(self.v[0]).dot(p) >= EPS
    }

    /// Centroid direction of the triangle (normalized vertex mean).
    pub fn center(&self) -> Vec3 {
        (self.v[0] + self.v[1] + self.v[2]).normalized()
    }

    /// Bounding cone: `(center, angular_radius)` covering the whole trixel.
    pub fn bounding_cone(&self) -> (Vec3, f64) {
        let c = self.center();
        let r = self
            .v
            .iter()
            .map(|&vv| c.angular_distance(vv))
            .fold(0.0_f64, f64::max);
        (c, r)
    }

    /// Solid angle of the spherical triangle in steradians (Girard's
    /// theorem: spherical excess).
    pub fn solid_angle(&self) -> f64 {
        let ang = |a: Vec3, b: Vec3, c: Vec3| {
            // Angle at vertex a between arcs ab and ac.
            let ab = a.cross(b);
            let ac = a.cross(c);
            ab.cross(ac).norm().atan2(ab.dot(ac)).abs()
        };
        let a0 = ang(self.v[0], self.v[1], self.v[2]);
        let a1 = ang(self.v[1], self.v[2], self.v[0]);
        let a2 = ang(self.v[2], self.v[0], self.v[1]);
        (a0 + a1 + a2 - std::f64::consts::PI).max(0.0)
    }

    /// Minimum angular distance (radians) from a unit vector to any point
    /// of this trixel: 0 if the point is inside, else the distance to the
    /// nearest edge arc.
    pub fn min_distance_to(&self, p: Vec3) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        let mut d = f64::INFINITY;
        for i in 0..3 {
            d = d.min(arc_distance(p, self.v[i], self.v[(i + 1) % 3]));
        }
        d
    }

    /// Maximum angular distance (radians) from a unit vector to any point
    /// of this trixel. For a convex spherical triangle the maximum is at a
    /// vertex unless the antipode lies inside.
    pub fn max_distance_to(&self, p: Vec3) -> f64 {
        let anti = Vec3::new(-p.x, -p.y, -p.z);
        if self.contains(anti) {
            return std::f64::consts::PI;
        }
        self.v
            .iter()
            .map(|&v| p.angular_distance(v))
            .fold(0.0_f64, f64::max)
    }

    /// Reconstructs the trixel for an arbitrary id by descending from its
    /// base ancestor.
    pub fn from_id(id: TrixelId) -> Trixel {
        let level = id.level();
        // Collect the child path from the id (most-significant first).
        let mut path = [0u8; TrixelId::MAX_LEVEL as usize];
        let mut v = id.raw();
        for i in (0..level).rev() {
            path[i as usize] = (v % 4) as u8;
            v /= 4;
        }
        let mut t = Trixel::base((v - 8) as u8);
        for &c in &path[..level as usize] {
            t = t.subdivide()[c as usize];
        }
        t
    }
}

/// Angular distance from `p` to the great-circle arc from `a` to `b`
/// (all unit vectors). Exact: projects `p` onto the arc's circle and
/// clamps to the segment.
pub fn arc_distance(p: Vec3, a: Vec3, b: Vec3) -> f64 {
    let n = a.cross(b);
    let n_norm = n.norm();
    if n_norm < 1e-15 {
        // Degenerate arc (a == b): distance to the point.
        return p.angular_distance(a);
    }
    let n = Vec3::new(n.x / n_norm, n.y / n_norm, n.z / n_norm);
    // Projection of p onto the circle's plane, renormalized to the sphere.
    let proj = Vec3::new(
        p.x - n.x * p.dot(n),
        p.y - n.y * p.dot(n),
        p.z - n.z * p.dot(n),
    );
    if proj.norm() > 1e-15 {
        let c = proj.normalized();
        // c lies on the arc iff it is on the a-side of b and b-side of a.
        let on_arc = a.cross(c).dot(n) >= -1e-12 && c.cross(b).dot(n) >= -1e-12;
        if on_arc {
            return p.angular_distance(c);
        }
    }
    p.angular_distance(a).min(p.angular_distance(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_distance_basics() {
        let a = Vec3::from_radec_deg(0.0, 0.0);
        let b = Vec3::from_radec_deg(90.0, 0.0);
        // Point above the middle of the equatorial arc.
        let p = Vec3::from_radec_deg(45.0, 10.0);
        assert!((arc_distance(p, a, b) - 10.0f64.to_radians()).abs() < 1e-9);
        // Point beyond the endpoint: distance to the endpoint.
        let p2 = Vec3::from_radec_deg(120.0, 0.0);
        assert!((arc_distance(p2, a, b) - 30.0f64.to_radians()).abs() < 1e-9);
        // Point on the arc: zero.
        let p3 = Vec3::from_radec_deg(30.0, 0.0);
        assert!(arc_distance(p3, a, b) < 1e-12);
    }

    #[test]
    fn min_distance_zero_inside_positive_outside() {
        let t = Trixel::base(4); // N0
        let inside = t.center();
        assert_eq!(t.min_distance_to(inside), 0.0);
        let (ra, dec) = t.center().to_radec_deg();
        let outside = Vec3::from_radec_deg((ra + 180.0) % 360.0, -dec);
        let d = t.min_distance_to(outside);
        assert!(d > 0.5, "antipodal point must be far: {d}");
        // Consistency: min <= distance to every vertex.
        for &v in &t.v {
            assert!(d <= outside.angular_distance(v) + 1e-12);
        }
    }

    #[test]
    fn max_distance_is_pi_when_antipode_inside() {
        let t = Trixel::base(0);
        let p = Vec3::new(-t.center().x, -t.center().y, -t.center().z);
        assert!((t.max_distance_to(p) - std::f64::consts::PI).abs() < 1e-12);
        // And bounded by pi in general.
        let q = Vec3::from_radec_deg(10.0, 10.0);
        assert!(t.max_distance_to(q) <= std::f64::consts::PI);
        assert!(t.max_distance_to(q) >= t.min_distance_to(q));
    }

    #[test]
    fn base_ids_and_levels() {
        for b in 0..8 {
            let id = TrixelId::base(b);
            assert_eq!(id.level(), 0);
            assert_eq!(id.child_index(), b);
            assert_eq!(id.parent(), None);
        }
    }

    #[test]
    fn child_parent_round_trip() {
        let id = TrixelId::base(5).child(2).child(0).child(3);
        assert_eq!(id.level(), 3);
        assert_eq!(id.child_index(), 3);
        assert_eq!(
            id.parent().unwrap().parent().unwrap().parent().unwrap(),
            TrixelId::base(5)
        );
        assert!(id.is_descendant_of(TrixelId::base(5)));
        assert!(!id.is_descendant_of(TrixelId::base(4)));
    }

    #[test]
    fn from_raw_validation() {
        assert_eq!(TrixelId::from_raw(7), None);
        assert_eq!(TrixelId::from_raw(8), Some(TrixelId::base(0)));
        // bit length 5 is malformed (between level 0 and level 1)
        assert_eq!(TrixelId::from_raw(16), None);
        assert_eq!(TrixelId::from_raw(32), Some(TrixelId::base(0).child(0)));
    }

    #[test]
    fn display_names() {
        assert_eq!(TrixelId::base(0).to_string(), "S0");
        assert_eq!(TrixelId::base(7).to_string(), "N3");
        assert_eq!(TrixelId::base(6).child(1).child(3).to_string(), "N213");
    }

    #[test]
    fn bases_cover_sphere() {
        // Every direction must be inside at least one base trixel.
        let bases = Trixel::bases();
        for i in 0..100 {
            for j in 0..50 {
                let ra = i as f64 * 3.6;
                let dec = -89.0 + j as f64 * 3.6;
                let p = Vec3::from_radec_deg(ra, dec);
                assert!(
                    bases.iter().any(|t| t.contains(p)),
                    "point ({ra},{dec}) not covered"
                );
            }
        }
    }

    #[test]
    fn children_partition_parent() {
        let t = Trixel::base(2);
        let kids = t.subdivide();
        // Sample points in parent: each must be in >=1 child; points outside
        // the parent must not be claimed by its children.
        for i in 0..200 {
            let ra = (i as f64 * 17.77) % 360.0;
            let dec = ((i as f64 * 7.31) % 180.0) - 90.0;
            let p = Vec3::from_radec_deg(ra, dec);
            let in_parent = t.contains(p);
            let in_children = kids.iter().filter(|k| k.contains(p)).count();
            if in_parent {
                assert!(in_children >= 1, "interior point missing from children");
            } else {
                // strictly exterior points (away from the shared boundary)
                let (c, r) = t.bounding_cone();
                if c.angular_distance(p) > r + 0.05 {
                    assert_eq!(in_children, 0, "exterior point claimed by child");
                }
            }
        }
    }

    #[test]
    fn solid_angles_sum_to_sphere() {
        let total: f64 = Trixel::bases().iter().map(|t| t.solid_angle()).sum();
        assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-9);
        // and one more level
        let total2: f64 = Trixel::bases()
            .iter()
            .flat_map(|t| t.subdivide())
            .map(|t| t.solid_angle())
            .sum();
        assert!((total2 - 4.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn from_id_matches_descent() {
        let base = Trixel::base(3);
        let k = base.subdivide()[1].subdivide()[3];
        let rebuilt = Trixel::from_id(k.id);
        for i in 0..3 {
            assert!(k.v[i].approx_eq(rebuilt.v[i], 1e-15));
        }
    }

    #[test]
    fn bounding_cone_contains_all_vertices() {
        let t = Trixel::base(1).subdivide()[3];
        let (c, r) = t.bounding_cone();
        for &v in &t.v {
            assert!(c.angular_distance(v) <= r + 1e-12);
        }
    }
}
