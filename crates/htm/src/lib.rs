//! # delta-htm — Hierarchical Triangular Mesh
//!
//! The spatial substrate of the Delta reproduction: the HTM index of
//! Kunszt, Szalay & Thakar (2001) that the SDSS uses to partition the sky,
//! and which the Delta paper (§6.1) uses to define its cacheable *data
//! objects*.
//!
//! Provides:
//!
//! * [`Vec3`] — unit-sphere geometry (RA/Dec ↔ Cartesian).
//! * [`Trixel`] / [`TrixelId`] — the recursive spherical triangles with the
//!   standard sentinel id encoding (`N0..`, `S0..` naming).
//! * [`mesh`] — point location and region covers at uniform levels.
//! * [`Region`] — query footprints (cones, RA/Dec rectangles, great-circle
//!   scan bands, all-sky) with conservative trixel intersection.
//! * [`Partition`] — density-adaptive partitions with arbitrary leaf
//!   counts, reproducing the 10–532 object sets of Fig. 8(b).
//!
//! ```
//! use delta_htm::{mesh, Partition, Region, Vec3};
//!
//! // Locate a position at HTM level 5.
//! let p = Vec3::from_radec_deg(185.0, 15.3);
//! let id = mesh::lookup(p, 5);
//! assert_eq!(id.level(), 5);
//!
//! // Partition the sky into ~68 equi-area objects and map a cone query.
//! let part = Partition::adaptive(|t| t.solid_angle(), 68);
//! let objs = part.objects_for_region(&Region::cone_deg(185.0, 15.3, 1.0));
//! assert!(objs.contains(&part.locate(p)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mesh;
pub mod partition;
pub mod region;
pub mod trixel;
pub mod vec3;

pub use partition::Partition;
pub use region::Region;
pub use trixel::{Trixel, TrixelId};
pub use vec3::Vec3;
