//! Point location and region covers on the uniform HTM.
//!
//! These are the classic HTM operations: find the level-`l` trixel holding a
//! direction, and compute the set of level-`l` trixels a region overlaps.

use crate::region::Region;
use crate::trixel::{Trixel, TrixelId};
use crate::vec3::Vec3;

/// Number of trixels at a uniform subdivision level: `8 * 4^level`.
pub fn trixel_count(level: u8) -> u64 {
    8u64 << (2 * u32::from(level))
}

/// Locates the level-`level` trixel containing the unit vector `p`.
///
/// # Panics
/// Panics if `level > TrixelId::MAX_LEVEL`.
pub fn lookup(p: Vec3, level: u8) -> TrixelId {
    assert!(level <= TrixelId::MAX_LEVEL, "level too deep");
    let mut cur = *Trixel::bases()
        .iter()
        .find(|t| t.contains(p))
        .expect("base trixels cover the sphere");
    for _ in 0..level {
        let kids = cur.subdivide();
        // With the epsilon in `contains`, a boundary point may sit in two
        // children; taking the first keeps lookup deterministic.
        cur = *kids
            .iter()
            .find(|k| k.contains(p))
            .expect("children cover parent");
    }
    cur.id
}

/// Computes the set of level-`level` trixels that (conservatively) overlap
/// `region`, by recursive descent with pruning.
pub fn cover(region: &Region, level: u8) -> Vec<TrixelId> {
    assert!(level <= TrixelId::MAX_LEVEL, "level too deep");
    let mut out = Vec::new();
    let mut stack: Vec<Trixel> = Trixel::bases().to_vec();
    while let Some(t) = stack.pop() {
        if !region.intersects(&t) {
            continue;
        }
        if t.id.level() == level {
            out.push(t.id);
        } else {
            stack.extend(t.subdivide());
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(trixel_count(0), 8);
        assert_eq!(trixel_count(1), 32);
        assert_eq!(trixel_count(3), 512);
    }

    #[test]
    fn lookup_is_contained() {
        for i in 0..300 {
            let ra = (i as f64 * 13.7) % 360.0;
            let dec = ((i as f64 * 3.91) % 180.0) - 90.0;
            let p = Vec3::from_radec_deg(ra, dec);
            for level in [0u8, 1, 2, 4] {
                let id = lookup(p, level);
                assert_eq!(id.level(), level);
                assert!(Trixel::from_id(id).contains(p));
            }
        }
    }

    #[test]
    fn lookup_nested_across_levels() {
        // The level-k trixel must be a descendant of the level-(k-1) one.
        for i in 0..100 {
            let p = Vec3::from_radec_deg(
                (i as f64 * 37.3) % 360.0,
                ((i as f64 * 11.9) % 170.0) - 85.0,
            );
            let a = lookup(p, 2);
            let b = lookup(p, 3);
            assert!(b.is_descendant_of(a));
        }
    }

    #[test]
    fn cover_includes_lookup_trixel() {
        let region = Region::cone_deg(200.0, -30.0, 2.0);
        let ids = cover(&region, 3);
        let center = Vec3::from_radec_deg(200.0, -30.0);
        assert!(ids.contains(&lookup(center, 3)));
        // A small cone should cover far fewer trixels than the whole level.
        assert!(ids.len() < trixel_count(3) as usize / 4);
    }

    #[test]
    fn cover_all_is_whole_level() {
        assert_eq!(cover(&Region::All, 2).len(), trixel_count(2) as usize);
    }

    #[test]
    fn cover_band_wraps_sky() {
        let band = Region::GreatCircleBand {
            pole: Vec3::new(0.0, 0.0, 1.0),
            half_width_rad: 0.02,
        };
        let ids = cover(&band, 3);
        // Must touch all 8 base regions' descendants near the equator.
        let bases: std::collections::HashSet<u8> = ids
            .iter()
            .map(|id| {
                let mut v = id.raw();
                while v >= 32 {
                    v /= 4;
                }
                (v - 8) as u8
            })
            .collect();
        assert_eq!(
            bases.len(),
            8,
            "equatorial band must cross every base trixel"
        );
    }
}
