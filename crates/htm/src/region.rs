//! Sky regions: the spatial footprints of queries.
//!
//! SDSS-style queries specify a region of sky (a cone around a position, an
//! RA/Dec rectangle, a great-circle stripe scanned by the telescope, or the
//! whole sky). Delta maps each query to the set of data objects (trixels)
//! it touches; this module supplies the conservative region/trixel
//! intersection tests used for that mapping.
//!
//! The tests are *conservative*: they may report an intersection where there
//! is none (by using bounding cones), but never miss a real one. For cache
//! decisions over-approximation is semantically safe — a query is simply
//! associated with a superset of objects.

use crate::trixel::Trixel;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A region on the celestial sphere.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Region {
    /// All directions within `radius_rad` of `center` (a spherical cap).
    Cone {
        /// Cap axis (unit vector).
        center: Vec3,
        /// Angular radius in radians, in `[0, pi]`.
        radius_rad: f64,
    },
    /// An RA/Dec aligned rectangle. `ra_min` may exceed `ra_max`, meaning
    /// the range wraps through RA = 0.
    RaDecRect {
        /// Western edge, degrees in `[0, 360)`.
        ra_min: f64,
        /// Eastern edge, degrees in `[0, 360)`.
        ra_max: f64,
        /// Southern edge, degrees in `[-90, 90]`.
        dec_min: f64,
        /// Northern edge, degrees in `[-90, 90]`.
        dec_max: f64,
    },
    /// A band of width `half_width_rad` around a great circle with the given
    /// pole — the footprint of a telescope scan along the circle.
    GreatCircleBand {
        /// Pole of the great circle (unit vector).
        pole: Vec3,
        /// Half-width of the band in radians.
        half_width_rad: f64,
    },
    /// The entire sphere.
    All,
}

impl Region {
    /// A cone from RA/Dec degrees and a radius in degrees.
    pub fn cone_deg(ra_deg: f64, dec_deg: f64, radius_deg: f64) -> Self {
        Region::Cone {
            center: Vec3::from_radec_deg(ra_deg, dec_deg),
            radius_rad: radius_deg.to_radians(),
        }
    }

    /// Whether the region contains the unit vector `p`.
    pub fn contains(&self, p: Vec3) -> bool {
        match *self {
            Region::Cone { center, radius_rad } => center.angular_distance(p) <= radius_rad,
            Region::RaDecRect {
                ra_min,
                ra_max,
                dec_min,
                dec_max,
            } => {
                let (ra, dec) = p.to_radec_deg();
                let ra_ok = if ra_min <= ra_max {
                    ra >= ra_min && ra <= ra_max
                } else {
                    ra >= ra_min || ra <= ra_max
                };
                ra_ok && dec >= dec_min && dec <= dec_max
            }
            Region::GreatCircleBand {
                pole,
                half_width_rad,
            } => (std::f64::consts::FRAC_PI_2 - pole.angular_distance(p)).abs() <= half_width_rad,
            Region::All => true,
        }
    }

    /// A bounding cone `(center, radius)` that contains the whole region.
    ///
    /// For bands and the full sphere the radius is `pi` (everything).
    pub fn bounding_cone(&self) -> (Vec3, f64) {
        match *self {
            Region::Cone { center, radius_rad } => (center, radius_rad),
            Region::RaDecRect {
                ra_min,
                ra_max,
                dec_min,
                dec_max,
            } => {
                let span = if ra_min <= ra_max {
                    ra_max - ra_min
                } else {
                    360.0 - ra_min + ra_max
                };
                let mid_ra = (ra_min + span / 2.0) % 360.0;
                let mid_dec = (dec_min + dec_max) / 2.0;
                let c = Vec3::from_radec_deg(mid_ra, mid_dec);
                // Radius: max distance to the four corners (sufficient for
                // rectangles below hemispheric size; clamp to pi otherwise).
                let mut r: f64 = 0.0;
                for &ra in &[ra_min, ra_max] {
                    for &dec in &[dec_min, dec_max] {
                        r = r.max(c.angular_distance(Vec3::from_radec_deg(ra, dec)));
                    }
                }
                // Guard: if the rect spans a pole, include it.
                if dec_max >= 89.999 {
                    r = r.max(c.angular_distance(Vec3::new(0.0, 0.0, 1.0)));
                }
                if dec_min <= -89.999 {
                    r = r.max(c.angular_distance(Vec3::new(0.0, 0.0, -1.0)));
                }
                if span >= 180.0 {
                    r = std::f64::consts::PI;
                }
                (c, r.min(std::f64::consts::PI))
            }
            Region::GreatCircleBand { pole, .. } => (pole, std::f64::consts::PI),
            Region::All => (Vec3::new(0.0, 0.0, 1.0), std::f64::consts::PI),
        }
    }

    /// Intersection test against a trixel.
    ///
    /// Exact for cones and great-circle bands (point-to-arc geometry);
    /// tightly conservative for RA/Dec rectangles (the rectangle is
    /// replaced by its bounding cone, which over-covers only by the
    /// corner-vs-cap sliver). Guaranteed to return `true` whenever a real
    /// overlap exists.
    pub fn intersects(&self, t: &Trixel) -> bool {
        match *self {
            Region::All => true,
            Region::Cone { center, radius_rad } => t.min_distance_to(center) <= radius_rad,
            Region::RaDecRect { .. } => {
                // Tight conservative: exact cone-vs-trixel on the
                // rectangle's bounding cone.
                let (rc, rr) = self.bounding_cone();
                t.min_distance_to(rc) <= rr
            }
            Region::GreatCircleBand {
                pole,
                half_width_rad,
            } => {
                // The band is the locus of points at distance
                // [pi/2 - w, pi/2 + w] from the pole; the trixel spans
                // distances [min, max] from the pole. Intersect iff the
                // intervals overlap.
                let min_d = t.min_distance_to(pole);
                let max_d = t.max_distance_to(pole);
                let lo = std::f64::consts::FRAC_PI_2 - half_width_rad;
                let hi = std::f64::consts::FRAC_PI_2 + half_width_rad;
                min_d <= hi && max_d >= lo
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cone_contains_center() {
        let r = Region::cone_deg(45.0, 30.0, 1.0);
        assert!(r.contains(Vec3::from_radec_deg(45.0, 30.0)));
        assert!(r.contains(Vec3::from_radec_deg(45.5, 30.0)));
        assert!(!r.contains(Vec3::from_radec_deg(50.0, 30.0)));
    }

    #[test]
    fn rect_wrapping_ra() {
        let r = Region::RaDecRect {
            ra_min: 350.0,
            ra_max: 10.0,
            dec_min: -5.0,
            dec_max: 5.0,
        };
        assert!(r.contains(Vec3::from_radec_deg(355.0, 0.0)));
        assert!(r.contains(Vec3::from_radec_deg(5.0, 0.0)));
        assert!(!r.contains(Vec3::from_radec_deg(180.0, 0.0)));
    }

    #[test]
    fn band_contains_equator_points() {
        let band = Region::GreatCircleBand {
            pole: Vec3::new(0.0, 0.0, 1.0),
            half_width_rad: 0.05,
        };
        assert!(band.contains(Vec3::from_radec_deg(123.0, 0.0)));
        assert!(band.contains(Vec3::from_radec_deg(10.0, 2.0)));
        assert!(!band.contains(Vec3::from_radec_deg(10.0, 10.0)));
    }

    #[test]
    fn intersects_never_misses_contained_point() {
        // If a region contains a point, the trixel holding that point must
        // intersect the region.
        let regions = [
            Region::cone_deg(120.0, 40.0, 3.0),
            Region::RaDecRect {
                ra_min: 10.0,
                ra_max: 30.0,
                dec_min: -20.0,
                dec_max: 20.0,
            },
            Region::GreatCircleBand {
                pole: Vec3::from_radec_deg(0.0, 60.0),
                half_width_rad: 0.1,
            },
            Region::All,
        ];
        for region in &regions {
            for i in 0..400 {
                let ra = (i as f64 * 11.31) % 360.0;
                let dec = ((i as f64 * 5.17) % 180.0) - 90.0;
                let p = Vec3::from_radec_deg(ra, dec);
                if region.contains(p) {
                    let t = crate::mesh::lookup(p, 3);
                    let trix = Trixel::from_id(t);
                    assert!(
                        region.intersects(&trix),
                        "region {region:?} contains ({ra},{dec}) but reports no \
                         intersection with its trixel"
                    );
                }
            }
        }
    }

    #[test]
    fn all_region_intersects_everything() {
        for t in Trixel::bases() {
            assert!(Region::All.intersects(&t));
        }
    }
}
