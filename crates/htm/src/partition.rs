//! Density-adaptive partitioning of the sky into data objects.
//!
//! The Delta paper partitions the SDSS `PhotoObj` table with the HTM index
//! at a chosen level and treats each spatial partition as one cacheable
//! *data object* ("roughly equi-area data objects", §6.1). Varying the
//! level yields the object-set sizes of Fig. 8(b): 10, 20, 68, 91, 134,
//! 285, 532 objects.
//!
//! Because the sky's data density is not uniform, the paper's object counts
//! are not powers of `8·4^l`; they come from subdividing dense regions
//! further and ignoring partitions with no data. [`Partition`] reproduces
//! this: starting from the 8 base trixels it repeatedly splits the
//! heaviest leaf (by a caller-supplied density functional) until the number
//! of *non-empty* leaves reaches a target.

use crate::region::Region;
use crate::trixel::{Trixel, TrixelId};
use crate::vec3::Vec3;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A partition of the sphere into leaf trixels, each a cacheable object.
///
/// Leaves are assigned dense indices `0..len()` in trixel-id order, which
/// downstream crates use as object ids.
#[derive(Clone, Debug)]
pub struct Partition {
    leaves: Vec<Trixel>,
    index_of: HashMap<TrixelId, usize>,
    split: HashSet<TrixelId>,
    weights: Vec<f64>,
}

/// Heap entry ordering split candidates by weight.
struct Candidate {
    weight: f64,
    trixel: Trixel,
}

impl PartialEq for Candidate {
    fn eq(&self, o: &Self) -> bool {
        self.weight == o.weight && self.trixel.id == o.trixel.id
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Candidate {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // Max-heap by weight; tie-break on id for determinism.
        self.weight
            .total_cmp(&o.weight)
            .then_with(|| self.trixel.id.cmp(&o.trixel.id))
    }
}

impl Partition {
    /// The uniform partition at a fixed HTM level (`8·4^level` leaves).
    pub fn uniform(level: u8) -> Self {
        let mut leaves = Vec::new();
        let mut split = HashSet::new();
        let mut stack: Vec<Trixel> = Trixel::bases().to_vec();
        while let Some(t) = stack.pop() {
            if t.id.level() == level {
                leaves.push(t);
            } else {
                split.insert(t.id);
                stack.extend(t.subdivide());
            }
        }
        Self::finish(leaves, split, |_| 1.0)
    }

    /// Builds a density-adaptive partition with (at least) `target` leaves
    /// carrying non-negligible weight.
    ///
    /// `weight` maps a trixel to its data mass (e.g. integrated sky
    /// density); it need not be normalized. Splitting stops once the number
    /// of leaves with weight above `1e-9 ×` the total reaches `target`, or
    /// when no leaf can be split further.
    ///
    /// # Panics
    /// Panics if `target < 8` (the base trixels cannot be merged).
    pub fn adaptive(weight: impl Fn(&Trixel) -> f64, target: usize) -> Self {
        assert!(target >= 8, "target must be at least the 8 base trixels");
        let mut heap: BinaryHeap<Candidate> = Trixel::bases()
            .iter()
            .map(|&t| Candidate {
                weight: weight(&t).max(0.0),
                trixel: t,
            })
            .collect();
        let total: f64 = heap.iter().map(|c| c.weight).sum();
        let negligible = total * 1e-9;
        let mut split = HashSet::new();
        let mut done: Vec<Candidate> = Vec::new();

        let live = |heap: &BinaryHeap<Candidate>, done: &Vec<Candidate>| {
            heap.iter()
                .chain(done.iter())
                .filter(|c| c.weight > negligible)
                .count()
        };

        while live(&heap, &done) < target {
            let Some(top) = heap.pop() else { break };
            if top.trixel.id.level() >= TrixelId::MAX_LEVEL {
                done.push(top);
                continue;
            }
            if top.weight <= negligible {
                // Heaviest leaf is negligible: no further split can create
                // live leaves; stop.
                heap.push(top);
                break;
            }
            split.insert(top.trixel.id);
            for k in top.trixel.subdivide() {
                let w = weight(&k).max(0.0);
                heap.push(Candidate {
                    weight: w,
                    trixel: k,
                });
            }
        }

        let leaves: Vec<Trixel> = heap.into_iter().chain(done).map(|c| c.trixel).collect();
        Self::finish(leaves, split, |t| weight(t).max(0.0))
    }

    fn finish(
        mut leaves: Vec<Trixel>,
        split: HashSet<TrixelId>,
        weight: impl Fn(&Trixel) -> f64,
    ) -> Self {
        leaves.sort_unstable_by_key(|t| t.id);
        let index_of = leaves.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        let weights = leaves.iter().map(&weight).collect();
        Self {
            leaves,
            index_of,
            split,
            weights,
        }
    }

    /// Number of leaf objects.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the partition has no leaves (never true for a valid build).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The leaf trixels in object-index order.
    pub fn leaves(&self) -> &[Trixel] {
        &self.leaves
    }

    /// The weight assigned to each leaf at build time, in index order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Replaces the per-leaf weights with a new functional — e.g. split
    /// the sky by *area* (the paper's "roughly equi-area data objects")
    /// but then weight each leaf by its data *mass*, which is what object
    /// sizes and update densities derive from.
    pub fn reweight(&mut self, weight: impl Fn(&Trixel) -> f64) {
        self.weights = self.leaves.iter().map(|t| weight(t).max(0.0)).collect();
    }

    /// Number of leaves whose weight exceeds `threshold`.
    pub fn live_count(&self, threshold: f64) -> usize {
        self.weights.iter().filter(|&&w| w > threshold).count()
    }

    /// Object index of the leaf containing the unit vector `p`.
    pub fn locate(&self, p: Vec3) -> usize {
        let mut cur = *Trixel::bases()
            .iter()
            .find(|t| t.contains(p))
            .expect("base trixels cover the sphere");
        while self.split.contains(&cur.id) {
            cur = *cur
                .subdivide()
                .iter()
                .find(|k| k.contains(p))
                .expect("children cover parent");
        }
        *self
            .index_of
            .get(&cur.id)
            .expect("descent must end at a leaf")
    }

    /// Object indices of all leaves the region (conservatively) overlaps,
    /// sorted ascending.
    pub fn objects_for_region(&self, region: &Region) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack: Vec<Trixel> = Trixel::bases().to_vec();
        while let Some(t) = stack.pop() {
            if !region.intersects(&t) {
                continue;
            }
            if self.split.contains(&t.id) {
                stack.extend(t.subdivide());
            } else {
                out.push(self.index_of[&t.id]);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A lumpy test density: two Gaussian blobs.
    fn density(t: &Trixel) -> f64 {
        let c = t.center();
        let b1 = Vec3::from_radec_deg(30.0, 10.0);
        let b2 = Vec3::from_radec_deg(210.0, -40.0);
        let g = |b: Vec3| (-(c.angular_distance(b).powi(2)) / 0.08).exp();
        t.solid_angle() * (0.05 + g(b1) + 0.6 * g(b2))
    }

    #[test]
    fn uniform_partition_counts() {
        assert_eq!(Partition::uniform(0).len(), 8);
        assert_eq!(Partition::uniform(2).len(), 128);
    }

    #[test]
    fn adaptive_reaches_target() {
        for target in [10usize, 20, 68, 91, 134] {
            let p = Partition::adaptive(density, target);
            assert!(
                p.len() >= target,
                "target {target}: got only {} leaves",
                p.len()
            );
            // Overshoot is at most 3 (one split).
            assert!(p.len() <= target + 3, "target {target}: {} leaves", p.len());
        }
    }

    #[test]
    fn locate_agrees_with_leaf_containment() {
        let p = Partition::adaptive(density, 68);
        for i in 0..500 {
            let ra = (i as f64 * 7.39) % 360.0;
            let dec = ((i as f64 * 3.17) % 180.0) - 90.0;
            let v = Vec3::from_radec_deg(ra, dec);
            let idx = p.locate(v);
            assert!(p.leaves()[idx].contains(v), "({ra},{dec}) not in its leaf");
        }
    }

    #[test]
    fn leaves_tile_sphere() {
        // Total solid angle of leaves equals the sphere.
        let p = Partition::adaptive(density, 91);
        let total: f64 = p.leaves().iter().map(|t| t.solid_angle()).sum();
        assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn region_cover_includes_located_object() {
        let p = Partition::adaptive(density, 68);
        let region = Region::cone_deg(30.0, 10.0, 2.0);
        let objs = p.objects_for_region(&region);
        let idx = p.locate(Vec3::from_radec_deg(30.0, 10.0));
        assert!(objs.contains(&idx));
        assert!(!objs.is_empty() && objs.len() < p.len());
    }

    #[test]
    fn dense_regions_get_smaller_leaves() {
        let p = Partition::adaptive(density, 134);
        // The leaf at the dense blob should be deeper (smaller) than the
        // leaf at an empty spot.
        let dense = p.locate(Vec3::from_radec_deg(30.0, 10.0));
        let sparse = p.locate(Vec3::from_radec_deg(120.0, 60.0));
        assert!(
            p.leaves()[dense].id.level() > p.leaves()[sparse].id.level(),
            "dense leaf level {} vs sparse {}",
            p.leaves()[dense].id.level(),
            p.leaves()[sparse].id.level()
        );
    }

    #[test]
    #[should_panic(expected = "at least the 8")]
    fn adaptive_rejects_tiny_target() {
        Partition::adaptive(density, 4);
    }
}
