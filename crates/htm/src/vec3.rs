//! Minimal 3-vector geometry on the unit sphere.
//!
//! All positions on the celestial sphere are represented as unit vectors.
//! Right ascension / declination are accepted in degrees at the boundary and
//! converted once; all internal math is Cartesian, which keeps the trixel
//! side tests (`cross` + `dot`) cheap and branch-free.

use serde::{Deserialize, Serialize};

/// A point (or direction) in 3-space. For sphere work it is kept normalized.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (towards RA=0, Dec=0).
    pub x: f64,
    /// Y component (towards RA=90°, Dec=0).
    pub y: f64,
    /// Z component (towards the north celestial pole).
    pub z: f64,
}

impl Vec3 {
    /// Creates a vector from raw components (not normalized).
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Unit vector for the given right ascension and declination, in degrees.
    ///
    /// RA may be any real number (wrapped mod 360); Dec is clamped to ±90°.
    pub fn from_radec_deg(ra_deg: f64, dec_deg: f64) -> Self {
        let ra = ra_deg.to_radians();
        let dec = dec_deg.clamp(-90.0, 90.0).to_radians();
        let (sra, cra) = ra.sin_cos();
        let (sdec, cdec) = dec.sin_cos();
        Self::new(cdec * cra, cdec * sra, sdec)
    }

    /// Recovers `(ra_deg, dec_deg)` with RA in `[0, 360)`.
    pub fn to_radec_deg(self) -> (f64, f64) {
        let ra = self.y.atan2(self.x).to_degrees();
        let ra = if ra < 0.0 { ra + 360.0 } else { ra };
        let dec = self.z.clamp(-1.0, 1.0).asin().to_degrees();
        (ra, dec)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Self) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Self) -> Self {
        Self::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns this vector scaled to unit length.
    ///
    /// # Panics
    /// Panics if the vector is (numerically) zero — a zero direction is
    /// always a logic error in sphere code.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalize zero vector");
        Self::new(self.x / n, self.y / n, self.z / n)
    }

    /// Normalized midpoint of two unit vectors (the spherical midpoint).
    #[inline]
    pub fn midpoint(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z).normalized()
    }

    /// Angular separation between two unit vectors, in radians.
    pub fn angular_distance(self, o: Self) -> f64 {
        // atan2 form is accurate for both tiny and near-pi angles,
        // unlike acos(dot) which loses precision near 0 and pi.
        self.cross(o).norm().atan2(self.dot(o))
    }

    /// Component-wise approximate equality with absolute tolerance `eps`.
    pub fn approx_eq(self, o: Self, eps: f64) -> bool {
        (self.x - o.x).abs() <= eps && (self.y - o.y).abs() <= eps && (self.z - o.z).abs() <= eps
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn radec_round_trip() {
        for &(ra, dec) in &[(0.0, 0.0), (123.4, 45.6), (359.9, -89.0), (180.0, 90.0)] {
            let v = Vec3::from_radec_deg(ra, dec);
            assert!((v.norm() - 1.0).abs() < EPS);
            let (ra2, dec2) = v.to_radec_deg();
            if dec.abs() < 89.999 {
                assert!((ra - ra2).abs() < 1e-9, "ra {ra} vs {ra2}");
            }
            assert!((dec - dec2).abs() < 1e-9, "dec {dec} vs {dec2}");
        }
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::from_radec_deg(10.0, 20.0);
        let b = Vec3::from_radec_deg(80.0, -40.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < EPS);
        assert!(c.dot(b).abs() < EPS);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Vec3::from_radec_deg(0.0, 0.0);
        let b = Vec3::from_radec_deg(90.0, 0.0);
        let m = a.midpoint(b);
        assert!((m.angular_distance(a) - m.angular_distance(b)).abs() < EPS);
        assert!((m.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn angular_distance_basics() {
        let a = Vec3::from_radec_deg(0.0, 0.0);
        let b = Vec3::from_radec_deg(90.0, 0.0);
        let c = Vec3::from_radec_deg(180.0, 0.0);
        assert!((a.angular_distance(b) - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((a.angular_distance(c) - std::f64::consts::PI).abs() < EPS);
        assert!(a.angular_distance(a) < EPS);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        Vec3::new(0.0, 0.0, 0.0).normalized();
    }
}
