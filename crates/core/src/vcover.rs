//! VCover — Delta's core online algorithm (paper §4, Fig. 3).
//!
//! ```text
//! on query q:
//!     if every object in B(q) is cached:
//!         UpdateManager(q)            // ship q xor ship its updates
//!     else:
//!         ship q to the server
//!         LoadManager(q)              // maybe load missing objects
//! on update u:
//!     nothing is shipped              // design choice A of §1: updates
//!                                     // move only on query demand
//! ```

use crate::context::SimContext;
use crate::load_manager::{LoadManager, LoadManagerStats};
use crate::policy_trait::CachingPolicy;
use crate::update_manager::{UpdateManager, UpdateManagerStats};
use delta_policy::{GreedyDualSize, ReplacementPolicy};
use delta_workload::{QueryEvent, UpdateEvent};

/// The VCover policy: incremental vertex-cover decisions plus randomized
/// lazy loading through a replacement policy (`A_obj`), Greedy-Dual-Size
/// by default as in the paper.
#[derive(Debug)]
pub struct VCover<P: ReplacementPolicy = GreedyDualSize> {
    um: UpdateManager,
    lm: LoadManager<P>,
    /// Reusable scratch for the all-cached probe: each object's applied
    /// version, collected once and handed to the UpdateManager so the
    /// hit path probes the cache exactly once per object.
    probe_scratch: Vec<(delta_storage::ObjectId, u64)>,
}

impl VCover<GreedyDualSize> {
    /// Creates a VCover instance for a cache of `capacity` bytes. The seed
    /// drives the LoadManager's randomized admission and cost-attribution
    /// order.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Self::with_policy(GreedyDualSize::new(capacity), seed)
    }
}

impl<P: ReplacementPolicy> VCover<P> {
    /// Creates a VCover instance with a custom `A_obj` (for the ablation
    /// benchmarks: LRU, LFU, ...).
    pub fn with_policy(policy: P, seed: u64) -> Self {
        Self {
            um: UpdateManager::new(),
            lm: LoadManager::with_policy(policy, seed),
            probe_scratch: Vec::new(),
        }
    }

    /// Creates a VCover variant with an explicit admission mode —
    /// `AdmissionMode::FirstTouch` reproduces the web-proxy loading the
    /// paper rejects, for ablation benchmarks.
    pub fn with_policy_and_mode(
        policy: P,
        seed: u64,
        mode: crate::load_manager::AdmissionMode,
    ) -> Self {
        Self {
            um: UpdateManager::new(),
            lm: LoadManager::with_policy_and_mode(policy, seed, mode),
            probe_scratch: Vec::new(),
        }
    }

    /// UpdateManager statistics.
    pub fn update_manager_stats(&self) -> UpdateManagerStats {
        self.um.stats()
    }

    /// LoadManager statistics.
    pub fn load_manager_stats(&self) -> LoadManagerStats {
        self.lm.stats()
    }
}

impl<P: ReplacementPolicy> CachingPolicy for VCover<P> {
    fn name(&self) -> &str {
        "VCover"
    }

    fn on_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) {
        // One probe per object decides the all-cached question AND
        // collects the applied versions the UpdateManager needs — no
        // second `contains`/`get` pass over the same ids.
        let mut probe = std::mem::take(&mut self.probe_scratch);
        probe.clear();
        let mut all_cached = true;
        for &o in &q.objects {
            match ctx.cache.applied_version(o) {
                Some(v) => probe.push((o, v)),
                None => {
                    all_cached = false;
                    break;
                }
            }
        }
        if all_cached {
            // Cache hit path: refresh usage, then decide ship-query vs
            // ship-updates via the incremental vertex cover.
            self.lm.touch_residents(q, ctx);
            self.um.handle_query_resident(q, &probe, ctx);
            // Shipped updates grow resident objects; shed if over.
            if ctx.over_capacity() {
                self.lm.rebalance(ctx, &mut self.um);
            }
        } else {
            // Miss path: ship the query, then (in background) consider
            // loading the missing objects.
            ctx.ship_query(q);
            self.lm.consider(q, ctx, &mut self.um);
        }
        self.probe_scratch = probe;
    }

    fn on_update(&mut self, _u: &UpdateEvent, _ctx: &mut SimContext<'_>) {
        // Deliberately nothing: "unless a query demands, no new data
        // addition to the repository is propagated to the cache" (§1).
        // The simulator has already recorded the update at the repository
        // and invalidated any cached copy; interaction-graph vertices are
        // created lazily when a query actually needs the update.
    }

    fn attach_instruments(&mut self, instruments: crate::policy_trait::PolicyInstruments) {
        self.um.attach_instruments(instruments);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostLedger;
    use delta_storage::{CacheStore, ObjectCatalog, ObjectId, Repository};
    use delta_workload::QueryKind;

    fn q(seq: u64, objects: Vec<u32>, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Cone,
        }
    }

    #[test]
    fn miss_ships_query_and_may_load() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100]));
        let mut cache = CacheStore::new(1000);
        let mut ledger = CostLedger::default();
        let mut v = VCover::new(1000, 1);
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 1);
        v.on_query(&q(1, vec![0], 500), &mut ctx);
        // Query shipped (500) and, since 500 >= 100, the object loaded.
        assert_eq!(ledger.breakdown.query_ship.bytes(), 500);
        assert_eq!(ledger.breakdown.load.bytes(), 100);
        assert!(cache.contains(ObjectId(0)));
    }

    #[test]
    fn hit_answers_locally() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100]));
        let mut cache = CacheStore::new(1000);
        let mut ledger = CostLedger::default();
        let mut v = VCover::new(1000, 1);
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 1);
            v.on_query(&q(1, vec![0], 500), &mut ctx);
        }
        let before = ledger.total();
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 2);
        v.on_query(&q(2, vec![0], 800), &mut ctx);
        assert_eq!(ledger.total(), before, "hit on fresh object is free");
        assert_eq!(ledger.local_answers, 1);
    }

    #[test]
    fn update_arrival_ships_nothing() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100]));
        let mut cache = CacheStore::new(1000);
        let mut ledger = CostLedger::default();
        let mut v = VCover::new(1000, 1);
        // Simulate the simulator's update handling, then the policy's.
        repo.apply_update(ObjectId(0), 10, 1);
        cache.invalidate(ObjectId(0));
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 1);
        v.on_update(
            &delta_workload::UpdateEvent {
                seq: 1,
                object: ObjectId(0),
                bytes: 10,
            },
            &mut ctx,
        );
        assert_eq!(ledger.total().bytes(), 0);
    }

    #[test]
    fn end_to_end_decoupling_beats_naive_choices() {
        // A query-hot object (o0) and an update-hot object (o1). VCover
        // should cache o0 (cheap: few updates) and leave o1 at the server
        // (queries on it ship).
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[1_000, 1_000]));
        let mut cache = CacheStore::new(1_200);
        let mut ledger = CostLedger::default();
        let mut v = VCover::new(1_200, 3);
        let mut seq = 0u64;
        for round in 0..200 {
            // Update storm on o1.
            repo.apply_update(ObjectId(1), 400, seq);
            cache.invalidate(ObjectId(1));
            {
                let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
                v.on_update(
                    &delta_workload::UpdateEvent {
                        seq,
                        object: ObjectId(1),
                        bytes: 400,
                    },
                    &mut ctx,
                );
            }
            seq += 1;
            // Query on o0 every round, on o1 occasionally.
            let target = if round % 10 == 0 { 1 } else { 0 };
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            v.on_query(&q(seq, vec![target], 300), &mut ctx);
            seq += 1;
        }
        // o0 cached and serving hits.
        assert!(
            cache.contains(ObjectId(0)),
            "query-hot object should be cached"
        );
        assert!(
            ledger.local_answers > 100,
            "most o0 queries answered locally"
        );
        // Total far below NoCache (200 × 300 = 60000).
        assert!(
            ledger.total().bytes() < 30_000,
            "VCover total {} not clearly below NoCache 60000",
            ledger.total().bytes()
        );
    }
}
