//! [`ObjCache`] — the classic web-proxy object cache, as a
//! [`CachingPolicy`].
//!
//! The paper positions its decoupling framework against plain object
//! caching: admit objects on access through a replacement policy
//! (`A_obj`), answer from the cache when everything needed is resident,
//! fetch the missing pieces otherwise. `delta_policy` has long shipped
//! the replacement policies themselves — [`delta_policy::GreedyDualSize`],
//! [`delta_policy::Gdsf`], [`delta_policy::Lru`] — but nothing drove them
//! end-to-end, so `--policy` could never exercise them. This adapter
//! closes that gap:
//!
//! * **Hit path** — when every object of `B(q)` is resident, freshen each
//!   one to the query's currency horizon by shipping its missing update
//!   range (the cheapest legal way to answer locally), then answer from
//!   the cache. Update growth can push the cache over budget; the policy
//!   sheds victims until it fits again.
//! * **Miss path** — ship the query, then ask the replacement policy to
//!   admit each missing object at its current size (an eager, first-touch
//!   load: exactly the web-proxy behaviour the paper's randomized
//!   LoadManager improves on — which is why these make good ablation
//!   baselines for the bench tables).
//! * **Updates** — nothing is shipped on arrival (design choice A of §1);
//!   the engine has already invalidated the cached copy, and the next
//!   query pays the freshening cost.
//!
//! Unlike VCover there is no vertex-cover decision and no randomized
//! admission — the replacement policy alone decides residency.

use crate::context::SimContext;
use crate::policy_trait::CachingPolicy;
use delta_policy::ReplacementPolicy;
use delta_workload::{QueryEvent, UpdateEvent};

/// A pure object-cache policy driving a [`ReplacementPolicy`] as its
/// `A_obj`. Construct via [`ObjCache::new`] with the name the policy
/// should report (stats frames and snapshot headers key on it).
#[derive(Debug)]
pub struct ObjCache<P: ReplacementPolicy> {
    name: &'static str,
    policy: P,
}

impl<P: ReplacementPolicy> ObjCache<P> {
    /// Wraps `policy` under `name`.
    pub fn new(name: &'static str, policy: P) -> Self {
        ObjCache { name, policy }
    }

    /// Sheds residents until the physical cache fits its budget again
    /// (update shipping grows resident objects; the replacement policy
    /// only sees logical sizes).
    fn shed(&mut self, ctx: &mut SimContext<'_>) {
        while ctx.over_capacity() {
            let victim = self
                .policy
                .victim()
                // The policy can run dry while physical residents remain
                // (logical/physical size drift); fall back to evicting
                // any resident rather than looping forever.
                .or_else(|| ctx.cache.iter().map(|(o, _)| o).next());
            match victim {
                Some(v) => {
                    self.policy.forget(v);
                    if ctx.cache.get(v).is_some() {
                        ctx.evict_object(v);
                    }
                }
                None => break,
            }
        }
    }
}

impl<P: ReplacementPolicy> CachingPolicy for ObjCache<P> {
    fn name(&self) -> &str {
        self.name
    }

    fn on_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) {
        let all_resident = q.objects.iter().all(|&o| ctx.cache.get(o).is_some());
        if all_resident {
            // Freshen every accessed object to the currency horizon the
            // contract demands, then the local answer is legal.
            for &o in &q.objects {
                let required = ctx.repo.version_at_horizon(o, ctx.now, q.tolerance);
                if ctx.cache.applied_version(o).unwrap_or(0) < required {
                    ctx.ship_updates_to(o, required);
                }
                self.policy.touch(o);
            }
            ctx.answer_local(q);
            self.shed(ctx);
            return;
        }
        // Miss: the client's answer comes from the server; loading
        // happens on the side, gated by the replacement policy.
        ctx.ship_query(q);
        for &o in &q.objects {
            if ctx.cache.get(o).is_some() {
                self.policy.touch(o);
                continue;
            }
            let size = ctx.repo.current_size(o);
            let admission = self.policy.request(o, size, size);
            for v in admission.evicted {
                if ctx.cache.get(v).is_some() {
                    ctx.evict_object(v);
                }
            }
            if admission.admitted && ctx.load_object(o).is_err() {
                // The physical cache disagreed (size drift); keep the
                // logical and physical views consistent.
                self.policy.forget(o);
            }
        }
        self.shed(ctx);
    }

    fn on_update(&mut self, _u: &UpdateEvent, _ctx: &mut SimContext<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineMetrics};
    use delta_policy::{Gdsf, GreedyDualSize, Lru};
    use delta_storage::ObjectCatalog;
    use delta_workload::{Event, SyntheticSurvey, WorkloadConfig};

    fn survey(n: usize) -> SyntheticSurvey {
        let mut cfg = WorkloadConfig::small();
        cfg.n_queries = n;
        cfg.n_updates = n;
        SyntheticSurvey::generate(&cfg)
    }

    fn run(
        name: &'static str,
        catalog: &ObjectCatalog,
        events: &[Event],
        cache: u64,
    ) -> EngineMetrics {
        let policy: Box<dyn CachingPolicy> = match name {
            "Gds" => Box::new(ObjCache::new("Gds", GreedyDualSize::new(cache))),
            "Gdsf" => Box::new(ObjCache::new("Gdsf", Gdsf::new(cache))),
            _ => Box::new(ObjCache::new("Lru", Lru::new(cache))),
        };
        let mut e = Engine::new(policy, catalog, cache);
        e.init(None);
        for event in events {
            e.apply(event).expect("contract upheld");
        }
        e.metrics()
    }

    #[test]
    fn obj_cache_satisfies_every_query_and_is_deterministic() {
        let s = survey(600);
        let cache = (s.catalog.total_bytes() as f64 * 0.3) as u64;
        for name in ["Gds", "Gdsf", "Lru"] {
            let a = run(name, &s.catalog, &s.trace.events, cache);
            let b = run(name, &s.catalog, &s.trace.events, cache);
            assert_eq!(a, b, "{name}: replay must be deterministic");
            assert_eq!(
                a.ledger.shipped_queries + a.ledger.local_answers,
                s.trace.n_queries() as u64,
                "{name}: every query satisfied exactly once"
            );
            assert_eq!(a.updates, s.trace.n_updates() as u64);
            assert!(
                a.cache_used <= a.cache_capacity,
                "{name}: cache left over budget ({} > {})",
                a.cache_used,
                a.cache_capacity
            );
        }
    }

    #[test]
    fn obj_cache_actually_caches() {
        let s = survey(600);
        let cache = (s.catalog.total_bytes() as f64 * 0.5) as u64;
        let m = run("Gds", &s.catalog, &s.trace.events, cache);
        assert!(
            m.ledger.local_answers > 0,
            "a half-repository cache must produce some hits"
        );
        assert!(m.ledger.loads > 0, "misses must trigger loads");
    }
}
