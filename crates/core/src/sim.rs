//! The event simulator: replays a trace against a policy and produces the
//! cost series the paper's figures plot.
//!
//! Since the engine extraction this module is a thin *driver*: the
//! update/query loop, the satisfaction contract and all cost accounting
//! live in [`crate::engine::Engine`]; the simulator supplies events from
//! a trace, samples the cumulative-cost curve, and prices response times
//! against an optional link model.

use crate::cost::{Cost, CostLedger};
use crate::engine::{BorrowedPolicy, Engine, EngineError, EngineMetrics, EngineOutcome};
use crate::latency::{LatencyCollector, LatencyStats};
use crate::policy_trait::CachingPolicy;
use delta_net::LinkModel;
use delta_storage::ObjectCatalog;
use delta_workload::Trace;
use serde::{Deserialize, Serialize};

/// Simulation options.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Cache capacity in bytes (the paper's default is 30 % of the
    /// server; the headline claim uses 20 %).
    pub cache_bytes: u64,
    /// Record a cumulative-cost sample every this many events.
    pub sample_every: u64,
    /// When set, per-query response times are priced against this link
    /// and summarized in [`SimReport::latency`].
    pub link: Option<LinkModel>,
}

impl SimOptions {
    /// Options with the cache sized as a fraction of the repository.
    pub fn with_cache_fraction(catalog: &ObjectCatalog, fraction: f64, sample_every: u64) -> Self {
        SimOptions {
            cache_bytes: (catalog.total_bytes() as f64 * fraction) as u64,
            sample_every: sample_every.max(1),
            link: None,
        }
    }

    /// Enables response-time accounting against `link`.
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = Some(link);
        self
    }
}

/// One sample of the cumulative-cost curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Event sequence number.
    pub seq: u64,
    /// Cumulative charged bytes up to and including this event.
    pub cumulative_bytes: u64,
}

/// The result of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy name.
    pub policy: String,
    /// Cache capacity used.
    pub cache_bytes: u64,
    /// Final cost account.
    pub ledger: CostLedger,
    /// Sampled cumulative-cost curve (always includes the final event).
    pub series: Vec<SeriesPoint>,
    /// Number of events replayed.
    pub events: u64,
    /// Response-time summary, present when [`SimOptions::link`] was set.
    pub latency: Option<LatencyStats>,
    /// The engine's uniform operational counters (the `ledger` above is
    /// a copy of `metrics.ledger`, kept as a first-class field because
    /// the cost account *is* the experiment's result).
    pub metrics: EngineMetrics,
}

impl SimReport {
    /// Final total network traffic.
    pub fn total(&self) -> Cost {
        self.ledger.total()
    }

    /// Cumulative cost at the first sample with `seq >= at` (or the final
    /// total if none) — used to window out the warm-up period like the
    /// paper's figures do.
    pub fn cumulative_at(&self, at: u64) -> Cost {
        self.series
            .iter()
            .find(|p| p.seq >= at)
            .map(|p| Cost(p.cumulative_bytes))
            .unwrap_or_else(|| self.total())
    }

    /// Cost incurred after event `at` (post-warm-up traffic).
    pub fn cost_after(&self, at: u64) -> Cost {
        self.total().saturating_sub(self.cumulative_at(at))
    }
}

impl serde_json::ToJson for SeriesPoint {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("seq".into(), self.seq.to_json()),
            ("cumulative_bytes".into(), self.cumulative_bytes.to_json()),
        ])
    }
}

impl serde_json::ToJson for SimReport {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("policy".into(), self.policy.to_json()),
            ("cache_bytes".into(), self.cache_bytes.to_json()),
            ("ledger".into(), self.ledger.to_json()),
            ("series".into(), self.series.to_json()),
            ("events".into(), self.events.to_json()),
            (
                "latency".into(),
                self.latency
                    .as_ref()
                    .map(|l| l.to_json())
                    .unwrap_or(serde_json::Value::Null),
            ),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = &self.ledger.breakdown;
        write!(
            f,
            "{:<9} total {:>12} (queries {:>12}, updates {:>12}, loads {:>12}) \
             hit-rate {:>5.1}% loads {} evictions {}",
            self.policy,
            self.total().to_string(),
            b.query_ship.to_string(),
            b.update_ship.to_string(),
            b.load.to_string(),
            self.ledger.hit_rate() * 100.0,
            self.ledger.loads,
            self.ledger.evictions,
        )
    }
}

/// Replays `trace` against `policy` over a fresh repository built from
/// `catalog`. An unsatisfied query surfaces as the engine's typed
/// [`EngineError::ContractViolated`] instead of a panic.
pub fn try_simulate(
    policy: &mut dyn CachingPolicy,
    catalog: &ObjectCatalog,
    trace: &Trace,
    opts: SimOptions,
) -> Result<SimReport, EngineError> {
    let mut engine = Engine::new(Box::new(BorrowedPolicy(policy)), catalog, opts.cache_bytes);
    engine.init(None);

    let mut series = Vec::new();
    let mut latencies = opts.link.map(|_| LatencyCollector::new());
    let mut count = 0u64;
    for event in trace.iter() {
        let outcome = engine.apply(event)?;
        if let (
            EngineOutcome::Query {
                sync_messages,
                sync_bytes,
                ..
            },
            Some(link),
            Some(lat),
        ) = (outcome, &opts.link, latencies.as_mut())
        {
            lat.record_exchanges(link, sync_messages, sync_bytes);
        }
        count += 1;
        if count.is_multiple_of(opts.sample_every) {
            series.push(SeriesPoint {
                seq: event.seq(),
                cumulative_bytes: engine.ledger().total().bytes(),
            });
        }
    }
    // Always close the curve.
    let last_seq = trace.events.last().map(|e| e.seq()).unwrap_or(0);
    if series.last().map(|p| p.seq) != Some(last_seq) {
        series.push(SeriesPoint {
            seq: last_seq,
            cumulative_bytes: engine.ledger().total().bytes(),
        });
    }

    let metrics = engine.metrics();
    Ok(SimReport {
        policy: engine.policy_name().to_string(),
        cache_bytes: engine.cache().capacity(),
        ledger: metrics.ledger.clone(),
        series,
        events: count,
        latency: latencies.map(|l| l.summarize()),
        metrics,
    })
}

/// Replays `trace` against `policy`, enforcing the satisfaction contract
/// for every query.
///
/// # Panics
/// Panics if the policy violates the contract — a policy bug, never a
/// legal outcome. Use [`try_simulate`] to handle it as a typed error.
pub fn simulate(
    policy: &mut dyn CachingPolicy,
    catalog: &ObjectCatalog,
    trace: &Trace,
    opts: SimOptions,
) -> SimReport {
    try_simulate(policy, catalog, trace, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Convenience: run the full five-way comparison of §6 (VCover, Benefit,
/// NoCache, Replica, SOptimal) on one trace.
pub fn compare_all(
    catalog: &ObjectCatalog,
    trace: &Trace,
    opts: SimOptions,
    seed: u64,
) -> Vec<SimReport> {
    use crate::benefit::{Benefit, BenefitConfig};
    use crate::vcover::VCover;
    use crate::yardstick::{NoCache, Replica, SOptimal};

    let mut reports = Vec::new();
    let mut nocache = NoCache;
    reports.push(simulate(&mut nocache, catalog, trace, opts));
    let mut replica = Replica;
    reports.push(simulate(&mut replica, catalog, trace, opts));
    let mut benefit = Benefit::new(opts.cache_bytes, BenefitConfig::default());
    reports.push(simulate(&mut benefit, catalog, trace, opts));
    let mut vcover = VCover::new(opts.cache_bytes, seed);
    reports.push(simulate(&mut vcover, catalog, trace, opts));
    let mut soptimal = SOptimal::plan(catalog, trace, opts.cache_bytes);
    reports.push(simulate(&mut soptimal, catalog, trace, opts));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcover::VCover;
    use crate::yardstick::{NoCache, Replica};
    use delta_workload::{SyntheticSurvey, WorkloadConfig};

    fn tiny_survey() -> SyntheticSurvey {
        let mut cfg = WorkloadConfig::small();
        cfg.n_queries = 500;
        cfg.n_updates = 500;
        SyntheticSurvey::generate(&cfg)
    }

    #[test]
    fn nocache_equals_trace_query_bytes() {
        let s = tiny_survey();
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let mut p = NoCache;
        let r = simulate(&mut p, &s.catalog, &s.trace, opts);
        assert_eq!(r.total().bytes(), s.trace.total_query_bytes());
        assert_eq!(r.ledger.shipped_queries as usize, s.trace.n_queries());
    }

    #[test]
    fn replica_equals_trace_update_bytes() {
        let s = tiny_survey();
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let mut p = Replica;
        let r = simulate(&mut p, &s.catalog, &s.trace, opts);
        assert_eq!(r.total().bytes(), s.trace.total_update_bytes());
        assert_eq!(r.ledger.local_answers as usize, s.trace.n_queries());
    }

    #[test]
    fn vcover_runs_and_satisfies_every_query() {
        let s = tiny_survey();
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let mut p = VCover::new(opts.cache_bytes, 1);
        let r = simulate(&mut p, &s.catalog, &s.trace, opts);
        assert_eq!(
            r.ledger.shipped_queries + r.ledger.local_answers,
            s.trace.n_queries() as u64
        );
        // Cost never exceeds the trivial sum of everything.
        assert!(r.total().bytes() <= s.trace.total_query_bytes() + s.catalog.total_bytes() * 2);
    }

    #[test]
    fn series_is_monotone_and_closed() {
        let s = tiny_survey();
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 50);
        let mut p = VCover::new(opts.cache_bytes, 1);
        let r = simulate(&mut p, &s.catalog, &s.trace, opts);
        assert!(r
            .series
            .windows(2)
            .all(|w| w[0].cumulative_bytes <= w[1].cumulative_bytes));
        assert_eq!(
            r.series.last().unwrap().cumulative_bytes,
            r.total().bytes(),
            "curve must end at the final total"
        );
        assert!(r.cost_after(0).bytes() <= r.total().bytes());
    }

    #[test]
    fn compare_all_produces_five_reports() {
        let s = tiny_survey();
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let rs = compare_all(&s.catalog, &s.trace, opts, 7);
        let names: Vec<_> = rs.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(
            names,
            vec!["NoCache", "Replica", "Benefit", "VCover", "SOptimal"]
        );
    }

    #[test]
    fn try_simulate_reports_contract_violations_typed() {
        use crate::context::SimContext;
        use delta_workload::{QueryEvent, UpdateEvent};
        struct Broken;
        impl crate::CachingPolicy for Broken {
            fn name(&self) -> &str {
                "Broken"
            }
            fn on_query(&mut self, _q: &QueryEvent, _ctx: &mut SimContext<'_>) {}
            fn on_update(&mut self, _u: &UpdateEvent, _ctx: &mut SimContext<'_>) {}
        }
        let s = tiny_survey();
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let mut p = Broken;
        let err = try_simulate(&mut p, &s.catalog, &s.trace, opts).unwrap_err();
        assert!(matches!(err, crate::EngineError::ContractViolated { .. }));
    }

    #[test]
    #[should_panic(expected = "neither shipped nor answered")]
    fn simulate_still_panics_on_contract_violation() {
        use crate::context::SimContext;
        use delta_workload::{QueryEvent, UpdateEvent};
        struct Broken;
        impl crate::CachingPolicy for Broken {
            fn name(&self) -> &str {
                "Broken"
            }
            fn on_query(&mut self, _q: &QueryEvent, _ctx: &mut SimContext<'_>) {}
            fn on_update(&mut self, _u: &UpdateEvent, _ctx: &mut SimContext<'_>) {}
        }
        let s = tiny_survey();
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let mut p = Broken;
        let _ = simulate(&mut p, &s.catalog, &s.trace, opts);
    }

    #[test]
    fn deterministic_simulation() {
        let s = tiny_survey();
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let run = || {
            let mut p = VCover::new(opts.cache_bytes, 99);
            simulate(&mut p, &s.catalog, &s.trace, opts).total().bytes()
        };
        assert_eq!(run(), run());
    }
}
