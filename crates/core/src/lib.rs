//! # delta-core — the Delta decoupling framework
//!
//! The primary contribution of *A Dynamic Data Middleware Cache for
//! Rapidly-growing Scientific Repositories* (Malik et al., MIDDLEWARE
//! 2010): a middleware cache that adaptively **decouples** data objects —
//! caching the heavily-queried ones (shipping their updates on demand) and
//! leaving the heavily-updated ones at the repository (shipping queries) —
//! to minimize network traffic.
//!
//! * [`VCover`] — the paper's core algorithm: an [`UpdateManager`] solving
//!   incremental minimum-weight vertex covers on the live interaction
//!   graph (ship-query vs ship-updates, Theorem 1), and a [`LoadManager`]
//!   doing randomized bypass admission into a lazy Greedy-Dual-Size cache.
//! * [`Benefit`] — the windowed exponential-smoothing greedy baseline
//!   (§5).
//! * [`NoCache`] / [`Replica`] / [`SOptimal`] — the three yardsticks of
//!   §6.1.
//! * [`engine`] — the one decoupling engine every driver runs: update
//!   application, invalidation and the satisfaction contract behind a
//!   typed [`EngineError`], with uniform [`EngineMetrics`] and
//!   snapshot/warm-restart support.
//! * [`sim`] — the event simulator producing the cumulative-traffic curves
//!   of Fig. 7(b)/8, a thin trace driver over the engine; [`deploy`] — the
//!   same engine over real threads and metered channels, with
//!   crash/recovery fault injection (§7).
//! * [`offline`] — the Theorem-1 hindsight optimum: the exact
//!   minimum-weight vertex cover over a whole trace for a static cached
//!   set.
//! * [`preship`] / [`latency`] — the §4 response-time extension:
//!   proactive update shipping for hot resident objects, priced against
//!   a WAN link model.
//!
//! ```
//! use delta_core::{sim, VCover};
//! use delta_workload::{SyntheticSurvey, WorkloadConfig};
//!
//! let mut cfg = WorkloadConfig::small();
//! cfg.n_queries = 200;
//! cfg.n_updates = 200;
//! let survey = SyntheticSurvey::generate(&cfg);
//! let opts = sim::SimOptions::with_cache_fraction(&survey.catalog, 0.3, 100);
//! let mut vcover = VCover::new(opts.cache_bytes, 42);
//! let report = sim::simulate(&mut vcover, &survey.catalog, &survey.trace, opts);
//! assert!(report.total().bytes() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod benefit;
pub mod context;
pub mod cost;
pub mod deploy;
pub mod engine;
pub mod latency;
pub mod load_manager;
pub mod obj_cache;
pub mod offline;
pub mod policy_trait;
pub mod preship;
pub mod sim;
pub mod update_manager;
pub mod vcover;
pub mod yardstick;

pub use benefit::{Benefit, BenefitConfig};
pub use context::SimContext;
pub use cost::{Cost, CostBreakdown, CostLedger};
pub use engine::{Engine, EngineError, EngineMetrics, EngineOutcome, EngineSnapshot};
pub use latency::{LatencyCollector, LatencyStats};
pub use load_manager::{AdmissionMode, LoadManager};
pub use obj_cache::ObjCache;
pub use offline::{hindsight_decoupling, HindsightReport};
pub use policy_trait::{CachingPolicy, PolicyInstruments};
pub use preship::{Preship, PreshipConfig};
pub use sim::{compare_all, simulate, try_simulate, SeriesPoint, SimOptions, SimReport};
pub use update_manager::UpdateManager;
pub use vcover::VCover;
pub use yardstick::{NoCache, Replica, SOptimal};
