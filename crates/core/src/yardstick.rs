//! The three yardstick policies of §6.1.
//!
//! * [`NoCache`] — ship every query; an algorithm worse than this is
//!   useless.
//! * [`Replica`] — mirror the whole repository and ship every update on
//!   arrival (load costs and cache-size limits ignored, per the paper); an
//!   algorithm beating this despite a bounded cache is clearly good.
//! * [`SOptimal`] — the best *static* object set chosen with hindsight
//!   over the full trace ("equivalent to the single decision of Benefit
//!   using a window as large as the entire sequence, but offline"); an
//!   online algorithm close to this is outstanding.

use crate::context::SimContext;
use crate::policy_trait::CachingPolicy;
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::{Event, QueryEvent, Trace, UpdateEvent};
use std::collections::HashSet;

/// Ship everything; cache nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCache;

impl CachingPolicy for NoCache {
    fn name(&self) -> &str {
        "NoCache"
    }

    fn on_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) {
        ctx.ship_query(q);
    }

    fn on_update(&mut self, _u: &UpdateEvent, _ctx: &mut SimContext<'_>) {}
}

/// Full replication: every object resident, every update shipped on
/// arrival.
#[derive(Clone, Copy, Debug, Default)]
pub struct Replica;

impl CachingPolicy for Replica {
    fn name(&self) -> &str {
        "Replica"
    }

    fn preferred_capacity(&self, catalog: &ObjectCatalog, _configured: u64) -> u64 {
        // Room for the whole repository plus all update growth; the paper
        // exempts Replica from cache-size constraints.
        catalog.total_bytes().saturating_mul(8).max(1)
    }

    fn init(&mut self, ctx: &mut SimContext<'_>) {
        // Mirror everything, uncharged ("for Replica load costs ... are
        // ignored").
        let ids: Vec<ObjectId> = ctx.repo.catalog().ids().collect();
        for o in ids {
            ctx.load_object_uncharged(o)
                .expect("replica cache sized to fit everything");
        }
    }

    fn on_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) {
        ctx.answer_local(q);
    }

    fn on_update(&mut self, u: &UpdateEvent, ctx: &mut SimContext<'_>) {
        // Ship immediately so the mirror is always current.
        let v = ctx.repo.version(u.object);
        ctx.ship_updates_to(u.object, v);
    }
}

/// The hindsight-optimal static object set.
#[derive(Clone, Debug)]
pub struct SOptimal {
    chosen: HashSet<ObjectId>,
}

impl SOptimal {
    /// Plans the static set from the full trace (the offline step): rank
    /// objects by net benefit — proportional query-cost share, minus all
    /// update bytes that will arrive for them, minus their load cost —
    /// and pack the cache greedily.
    pub fn plan(catalog: &ObjectCatalog, trace: &Trace, cache_bytes: u64) -> Self {
        let n = catalog.len();
        let mut share = vec![0.0f64; n];
        let mut upd = vec![0u64; n];
        for e in trace.iter() {
            match e {
                Event::Query(q) => {
                    let total: u64 = q.objects.iter().map(|&o| catalog.size(o)).sum();
                    let total = total.max(1) as f64;
                    for &o in &q.objects {
                        share[o.index()] += q.result_bytes as f64 * catalog.size(o) as f64 / total;
                    }
                }
                Event::Update(u) => upd[u.object.index()] += u.bytes,
            }
        }
        let mut ranked: Vec<(f64, usize)> = (0..n)
            .map(|i| {
                (
                    share[i] - upd[i] as f64 - catalog.size(ObjectId(i as u32)) as f64,
                    i,
                )
            })
            .filter(|&(net, _)| net > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut chosen = HashSet::new();
        let mut used = 0u64;
        for (_, i) in ranked {
            let o = ObjectId(i as u32);
            // Reserve headroom for the object's future update growth so
            // the static set stays feasible for the whole run.
            let occupancy = catalog.size(o) + upd[i];
            if used + occupancy <= cache_bytes {
                chosen.insert(o);
                used += occupancy;
            }
        }
        Self { chosen }
    }

    /// The planned object set.
    pub fn chosen(&self) -> &HashSet<ObjectId> {
        &self.chosen
    }
}

impl CachingPolicy for SOptimal {
    fn name(&self) -> &str {
        "SOptimal"
    }

    fn init(&mut self, ctx: &mut SimContext<'_>) {
        // Load the static set at the very beginning — charged (its load
        // cost is part of the yardstick's total, exactly like the Fig. 7(b)
        // discussion where SOptimal "loads them at the beginning").
        let mut ids: Vec<ObjectId> = self.chosen.iter().copied().collect();
        ids.sort_unstable();
        for o in ids {
            ctx.load_object(o).expect("planned set must fit the cache");
        }
    }

    fn on_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) {
        if q.objects.iter().all(|&o| self.chosen.contains(&o)) {
            // Updates were shipped on arrival, so the mirror of the chosen
            // set is always current.
            ctx.answer_local(q);
        } else {
            ctx.ship_query(q);
        }
    }

    fn on_update(&mut self, u: &UpdateEvent, ctx: &mut SimContext<'_>) {
        if self.chosen.contains(&u.object) {
            let v = ctx.repo.version(u.object);
            ctx.ship_updates_to(u.object, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostLedger;
    use delta_storage::{CacheStore, Repository};
    use delta_workload::QueryKind;

    fn q(seq: u64, objects: Vec<u32>, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Cone,
        }
    }

    #[test]
    fn nocache_total_is_query_bytes() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[10, 20]));
        let mut cache = CacheStore::new(5);
        let mut ledger = CostLedger::default();
        let mut p = NoCache;
        for seq in 0..10u64 {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            p.on_query(&q(seq, vec![(seq % 2) as u32], 7), &mut ctx);
        }
        assert_eq!(ledger.total().bytes(), 70);
        assert_eq!(ledger.shipped_queries, 10);
    }

    #[test]
    fn replica_total_is_update_bytes() {
        let catalog = ObjectCatalog::from_sizes(&[10, 20]);
        let mut repo = Repository::new(catalog.clone());
        let mut p = Replica;
        let cap = p.preferred_capacity(&catalog, 5);
        let mut cache = CacheStore::new(cap);
        let mut ledger = CostLedger::default();
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 0);
            p.init(&mut ctx);
        }
        assert_eq!(ledger.total().bytes(), 0, "replica loads are uncharged");
        for seq in 1..=5u64 {
            repo.apply_update(ObjectId(0), 3, seq);
            cache.invalidate(ObjectId(0));
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            p.on_update(
                &UpdateEvent {
                    seq,
                    object: ObjectId(0),
                    bytes: 3,
                },
                &mut ctx,
            );
        }
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 6);
            p.on_query(&q(6, vec![0, 1], 100), &mut ctx);
        }
        assert_eq!(ledger.total().bytes(), 15);
        assert_eq!(ledger.local_answers, 1);
    }

    #[test]
    fn soptimal_plans_query_hot_objects() {
        use delta_workload::Trace;
        let catalog = ObjectCatalog::from_sizes(&[100, 100]);
        // o0: heavily queried; o1: heavily updated.
        let mut events = Vec::new();
        for seq in 0..100u64 {
            if seq % 2 == 0 {
                events.push(Event::Query(q(seq, vec![0], 50)));
            } else {
                events.push(Event::Update(UpdateEvent {
                    seq,
                    object: ObjectId(1),
                    bytes: 50,
                }));
            }
        }
        let trace = Trace::new(events);
        let plan = SOptimal::plan(&catalog, &trace, 150);
        assert!(plan.chosen().contains(&ObjectId(0)));
        assert!(!plan.chosen().contains(&ObjectId(1)));
    }

    #[test]
    fn soptimal_respects_capacity() {
        use delta_workload::Trace;
        let catalog = ObjectCatalog::from_sizes(&[100, 100, 100]);
        let mut events = Vec::new();
        for seq in 0..60u64 {
            events.push(Event::Query(q(seq, vec![(seq % 3) as u32], 500)));
        }
        let trace = Trace::new(events);
        let plan = SOptimal::plan(&catalog, &trace, 250);
        assert_eq!(plan.chosen().len(), 2, "only two of three objects fit");
    }
}
