//! The policy interface every algorithm (VCover, Benefit, the yardsticks)
//! implements, and over which the simulator runs.

use crate::context::SimContext;
use delta_storage::ObjectCatalog;
use delta_telemetry::{Counter, Gauge, Histogram};
use delta_workload::{QueryEvent, UpdateEvent};
use std::sync::Arc;

/// Telemetry handles a serving stack can hand to a policy so its internal
/// solver is observable in the node scrape plane. Strictly observational:
/// a policy's decisions are byte-identical with or without instruments
/// attached (no `Instant::now` calls happen when detached, so the pure
/// sim/bench path pays nothing).
#[derive(Clone)]
pub struct PolicyInstruments {
    /// Cover solve latency per decided query (`um.solve_ns`).
    pub solve_ns: Arc<Histogram>,
    /// Live interaction-graph node count (`um.graph_nodes`).
    pub graph_nodes: Arc<Gauge>,
    /// Live interaction-graph edge count (`um.graph_edges`).
    pub graph_edges: Arc<Gauge>,
    /// Cover solves performed (`um.solves`).
    pub solves: Arc<Counter>,
}

impl std::fmt::Debug for PolicyInstruments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyInstruments")
            .field("solves", &self.solves.get())
            .finish_non_exhaustive()
    }
}

/// A middleware caching algorithm driven by the event simulator.
///
/// Contract: after [`CachingPolicy::on_query`] returns, the context must be
/// satisfied — the policy either shipped the query or answered it locally
/// (which in turn demands genuine currency). The simulator enforces this.
pub trait CachingPolicy {
    /// Human-readable name used in reports and figures.
    fn name(&self) -> &str;

    /// Called once before the first event. May pre-populate the cache
    /// (e.g. SOptimal loads its static set, charged; Replica mirrors the
    /// repository, uncharged per the paper).
    fn init(&mut self, _ctx: &mut SimContext<'_>) {}

    /// Handles an arriving user query. The repository and cache reflect
    /// all earlier events; `ctx.now` is the query's sequence number.
    fn on_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>);

    /// Handles an update arrival. The simulator has already applied it to
    /// the repository and invalidated any cached copy; the policy decides
    /// whether to ship anything now (Replica does; VCover defers to query
    /// demand — design choice A of §1).
    fn on_update(&mut self, u: &UpdateEvent, ctx: &mut SimContext<'_>);

    /// Cache capacity this policy wants, given the configured default.
    /// Only Replica overrides this (it mirrors the whole repository).
    fn preferred_capacity(&self, _catalog: &ObjectCatalog, configured: u64) -> u64 {
        configured
    }

    /// Hands the policy telemetry handles to record its internal solver
    /// activity on. Default: ignored (most policies have no solver);
    /// VCover forwards them to its `UpdateManager`. Must stay strictly
    /// observational — attaching instruments never changes decisions.
    fn attach_instruments(&mut self, _instruments: PolicyInstruments) {}
}
