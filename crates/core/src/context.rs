//! The simulation context: the only door through which policies touch
//! state and spend network budget.
//!
//! Every data movement a policy can perform — the paper's three
//! communication mechanisms (§3) plus local answering and eviction — is a
//! method here, so cost accounting is uniform and *enforced*: a query can
//! only be answered locally if the staleness contract genuinely holds, and
//! the simulator checks after each query event that the policy satisfied
//! it one way or the other.

use crate::cost::{Cost, CostLedger};
use delta_storage::{CacheError, CacheStore, ObjectId, Repository};
use delta_workload::QueryEvent;

/// Hook through which data movements become real network messages in the
/// threaded deployment ([`crate::deploy`]). The in-process simulator uses
/// no transport; costs are identical either way — the transport only adds
/// the wire.
pub trait Transport {
    /// A query was shipped to the server.
    fn query_shipped(&mut self, q: &QueryEvent);
    /// The update range `(from, to]` of `o` was fetched and applied.
    fn updates_fetched(&mut self, o: ObjectId, from: u64, to: u64, bytes: u64);
    /// Object `o` was bulk-loaded at `version` with `bytes` total size.
    fn object_loaded(&mut self, o: ObjectId, version: u64, bytes: u64);
    /// Object `o` was evicted.
    fn object_evicted(&mut self, o: ObjectId);
}

/// Mutable view of the world handed to a policy for one event.
pub struct SimContext<'a> {
    /// Server-side repository (authoritative versions and sizes), or the
    /// cache-side metadata mirror in a threaded deployment.
    pub repo: &'a mut Repository,
    /// Middleware cache store.
    pub cache: &'a mut CacheStore,
    /// The cost account.
    pub ledger: &'a mut CostLedger,
    /// Current event sequence number (the clock).
    pub now: u64,
    pub(crate) satisfied: bool,
    /// Whether [`SimContext::answer_local`] ran for the current event —
    /// the engine reads this instead of diffing ledger counters.
    pub(crate) answered_local: bool,
    /// Whether the local answer read at least one stale resident — the
    /// engine's tolerance-served signal, recorded during the currency
    /// walk so no second pass over the objects is needed.
    pub(crate) served_stale: bool,
    /// Synchronous (query-blocking) exchanges performed during this
    /// event: query shipping and update shipping block the client;
    /// object loading runs in background (§4) and eviction is local.
    pub(crate) sync_messages: u32,
    /// Bytes moved by the synchronous exchanges of this event.
    pub(crate) sync_bytes: u64,
    transport: Option<&'a mut dyn Transport>,
}

impl<'a> SimContext<'a> {
    /// Creates a context (used by the simulator and by tests).
    pub fn new(
        repo: &'a mut Repository,
        cache: &'a mut CacheStore,
        ledger: &'a mut CostLedger,
        now: u64,
    ) -> Self {
        Self {
            repo,
            cache,
            ledger,
            now,
            satisfied: false,
            answered_local: false,
            served_stale: false,
            sync_messages: 0,
            sync_bytes: 0,
            transport: None,
        }
    }

    /// Creates a context whose data movements are mirrored onto a
    /// transport (the threaded deployment).
    pub fn with_transport(
        repo: &'a mut Repository,
        cache: &'a mut CacheStore,
        ledger: &'a mut CostLedger,
        now: u64,
        transport: &'a mut dyn Transport,
    ) -> Self {
        Self {
            repo,
            cache,
            ledger,
            now,
            satisfied: false,
            answered_local: false,
            served_stale: false,
            sync_messages: 0,
            sync_bytes: 0,
            transport: Some(transport),
        }
    }

    /// Ships the query to the server; the result goes straight to the
    /// client (§3). Charges ν(q).
    pub fn ship_query(&mut self, q: &QueryEvent) {
        self.ledger.breakdown.query_ship += Cost(q.result_bytes);
        self.ledger.shipped_queries += 1;
        self.satisfied = true;
        self.sync_messages += 1;
        self.sync_bytes += q.result_bytes;
        if let Some(t) = self.transport.as_deref_mut() {
            t.query_shipped(q);
        }
    }

    /// Answers the query from the cache at zero network cost.
    ///
    /// The currency walk doubles as the staleness census: one probe per
    /// object both enforces the contract and records whether the answer
    /// read stale data (the engine's tolerance-served signal).
    ///
    /// # Panics
    /// Panics if any accessed object is missing or violates the query's
    /// staleness tolerance — a policy bug, never a legal outcome.
    pub fn answer_local(&mut self, q: &QueryEvent) {
        let mut any_stale = false;
        let current = q.objects.iter().all(|&o| match self.cache.get(o) {
            Some(r) => {
                any_stale |= r.stale;
                r.applied_version >= self.repo.version_at_horizon(o, self.now, q.tolerance)
            }
            None => false,
        });
        assert!(
            current,
            "policy answered query at seq {} locally but the cache is stale or incomplete",
            q.seq
        );
        self.ledger.local_answers += 1;
        self.satisfied = true;
        self.answered_local = true;
        self.served_stale = any_stale;
    }

    /// Ships the update range `(applied, to_version]` for a resident
    /// object and applies it. Charges the range's bytes; returns them.
    ///
    /// # Panics
    /// Panics if the object is not resident.
    pub fn ship_updates_to(&mut self, o: ObjectId, to_version: u64) -> u64 {
        let from = self
            .cache
            .applied_version(o)
            .expect("shipping updates to a non-resident object");
        if to_version <= from {
            return 0;
        }
        let bytes = self.repo.update_bytes(o, from, to_version);
        let fully_fresh = to_version == self.repo.version(o);
        self.cache.apply_updates(o, to_version, bytes, fully_fresh);
        self.ledger.breakdown.update_ship += Cost(bytes);
        self.ledger.update_ships += 1;
        self.sync_messages += 1;
        self.sync_bytes += bytes;
        if let Some(t) = self.transport.as_deref_mut() {
            t.updates_fetched(o, from, to_version, bytes);
        }
        bytes
    }

    /// Bulk-loads an object at its *current* size (base plus updates so
    /// far, §3) and version. Charges the load cost on success.
    pub fn load_object(&mut self, o: ObjectId) -> Result<u64, CacheError> {
        let bytes = self.repo.current_size(o);
        let version = self.repo.version(o);
        self.cache.load(o, bytes, version)?;
        self.ledger.breakdown.load += Cost(bytes);
        self.ledger.loads += 1;
        if let Some(t) = self.transport.as_deref_mut() {
            t.object_loaded(o, version, bytes);
        }
        Ok(bytes)
    }

    /// Loads an object without charging — used only by the Replica
    /// yardstick, whose load costs the paper explicitly ignores ("for
    /// replica load costs and cache size constraints are ignored", §6.2).
    pub fn load_object_uncharged(&mut self, o: ObjectId) -> Result<(), CacheError> {
        let bytes = self.repo.current_size(o);
        let version = self.repo.version(o);
        self.cache.load(o, bytes, version)
    }

    /// Evicts an object (free: dropping data moves no bytes).
    ///
    /// # Panics
    /// Panics if the object is not resident.
    pub fn evict_object(&mut self, o: ObjectId) {
        self.cache.evict(o).expect("evicting a non-resident object");
        self.ledger.evictions += 1;
        if let Some(t) = self.transport.as_deref_mut() {
            t.object_evicted(o);
        }
    }

    /// Whether the physical cache is over its nominal capacity (update
    /// growth can push it over; policies must shed space).
    pub fn over_capacity(&self) -> bool {
        self.cache.used() > self.cache.capacity()
    }

    /// Whether the current query event has been satisfied.
    pub fn satisfied(&self) -> bool {
        self.satisfied
    }

    /// Whether the current event was answered from the cache.
    pub fn answered_local(&self) -> bool {
        self.answered_local
    }

    /// Whether the local answer read at least one stale resident.
    pub fn served_stale(&self) -> bool {
        self.served_stale
    }

    /// Synchronous exchanges (messages, bytes) performed so far during
    /// this event — the client-visible critical path. Query shipping and
    /// update shipping count; background loads and local evictions do
    /// not.
    pub fn sync_traffic(&self) -> (u32, u64) {
        (self.sync_messages, self.sync_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_storage::ObjectCatalog;
    use delta_workload::QueryKind;

    fn world() -> (Repository, CacheStore, CostLedger) {
        (
            Repository::new(ObjectCatalog::from_sizes(&[100, 200])),
            CacheStore::new(1000),
            CostLedger::default(),
        )
    }

    fn query(objects: Vec<ObjectId>, bytes: u64, tolerance: u64) -> QueryEvent {
        QueryEvent {
            seq: 10,
            objects,
            result_bytes: bytes,
            tolerance,
            kind: QueryKind::Cone,
        }
    }

    #[test]
    fn ship_query_charges_result() {
        let (mut r, mut c, mut l) = world();
        let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 10);
        ctx.ship_query(&query(vec![ObjectId(0)], 55, 0));
        assert!(ctx.satisfied());
        assert_eq!(l.breakdown.query_ship, Cost(55));
        assert_eq!(l.shipped_queries, 1);
    }

    #[test]
    fn load_then_answer_local() {
        let (mut r, mut c, mut l) = world();
        let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 10);
        ctx.load_object(ObjectId(0)).unwrap();
        ctx.answer_local(&query(vec![ObjectId(0)], 55, 0));
        assert_eq!(l.breakdown.load, Cost(100));
        assert_eq!(l.local_answers, 1);
        assert_eq!(l.total(), Cost(100));
    }

    #[test]
    #[should_panic(expected = "stale or incomplete")]
    fn local_answer_requires_residency() {
        let (mut r, mut c, mut l) = world();
        let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 10);
        ctx.answer_local(&query(vec![ObjectId(0)], 55, 0));
    }

    #[test]
    #[should_panic(expected = "stale or incomplete")]
    fn local_answer_requires_currency() {
        let (mut r, mut c, mut l) = world();
        {
            let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 1);
            ctx.load_object(ObjectId(0)).unwrap();
        }
        r.apply_update(ObjectId(0), 5, 5);
        c.invalidate(ObjectId(0));
        let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 10);
        ctx.answer_local(&query(vec![ObjectId(0)], 55, 0));
    }

    #[test]
    fn tolerant_query_ok_despite_recent_update() {
        let (mut r, mut c, mut l) = world();
        {
            let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 1);
            ctx.load_object(ObjectId(0)).unwrap();
        }
        r.apply_update(ObjectId(0), 5, 9);
        c.invalidate(ObjectId(0));
        // now=10, tolerance=5 → horizon 5 < update seq 9: not needed.
        let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 10);
        ctx.answer_local(&query(vec![ObjectId(0)], 55, 5));
        assert_eq!(l.local_answers, 1);
    }

    #[test]
    fn ship_updates_applies_and_charges() {
        let (mut r, mut c, mut l) = world();
        {
            let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 0);
            ctx.load_object(ObjectId(0)).unwrap();
        }
        r.apply_update(ObjectId(0), 7, 3);
        r.apply_update(ObjectId(0), 9, 4);
        c.invalidate(ObjectId(0));
        let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 10);
        let shipped = ctx.ship_updates_to(ObjectId(0), 2);
        assert_eq!(shipped, 16);
        assert_eq!(l.breakdown.update_ship, Cost(16));
        assert!(!c.get(ObjectId(0)).unwrap().stale);
        // Second call is a no-op.
        let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 11);
        assert_eq!(ctx.ship_updates_to(ObjectId(0), 2), 0);
    }

    #[test]
    fn load_current_size_includes_growth() {
        let (mut r, mut c, mut l) = world();
        r.apply_update(ObjectId(0), 50, 1);
        let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 2);
        let bytes = ctx.load_object(ObjectId(0)).unwrap();
        assert_eq!(bytes, 150, "load ships the object including its updates");
        // Loaded fresh at current version.
        ctx.answer_local(&query(vec![ObjectId(0)], 5, 0));
    }

    #[test]
    fn evict_frees_and_counts() {
        let (mut r, mut c, mut l) = world();
        let mut ctx = SimContext::new(&mut r, &mut c, &mut l, 0);
        ctx.load_object(ObjectId(1)).unwrap();
        ctx.evict_object(ObjectId(1));
        assert_eq!(l.evictions, 1);
        assert_eq!(c.used(), 0);
    }
}
