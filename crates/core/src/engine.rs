//! The decoupling engine: ONE event loop shared by every driver.
//!
//! The paper's update/query separation under the satisfaction contract
//! (§3–§4) used to be implemented three times — in [`crate::sim`], in
//! [`crate::deploy`]'s cache thread, and in the server's shard workers.
//! [`Engine`] extracts that loop: it owns the `(Repository, CacheStore,
//! CostLedger, policy)` quadruple, applies one [`Event`] at a time, and
//! enforces the contract with a typed [`EngineError`] instead of an
//! `assert!`. The drivers differ only in where events come from (a trace
//! iterator, a WAN channel, a TCP frame) and what they do with the
//! [`EngineOutcome`] — the decisions and the ledger are byte-identical
//! across all of them, which the tri-modal differential tests pin.
//!
//! Two scale features hang off the unified engine once instead of three
//! times:
//!
//! * [`EngineMetrics`] — the uniform operational counters (hit rate,
//!   tolerance-served queries, bytes by class, evictions) every driver
//!   reports, from the simulator's `SimReport` to the wire `Stats` frame.
//! * [`Engine::snapshot`] / [`Engine::restore`] — the warm-restart path:
//!   catalog update logs, cache residency/versions/stale marks and the
//!   cost account serialize to JSONL (via the workspace's hand-rolled
//!   serde convention) and rebuild an engine that resumes exactly where
//!   it stopped. Policy decision state is deliberately *not* captured —
//!   correctness never depends on it (the same discipline as
//!   [`crate::deploy`]'s crash recovery), so a restored engine runs a
//!   fresh policy over restored world state.

use crate::context::{SimContext, Transport};
use crate::cost::{json_field as field, CostLedger};
use crate::policy_trait::CachingPolicy;
use delta_storage::{CacheStore, ObjectCatalog, ObjectId, Repository, UpdateRecord};
use delta_workload::{Event, QueryEvent, UpdateEvent};
use serde_json::{FromJson, ToJson, Value};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Why the engine refused an event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The policy neither shipped nor locally answered a query — a
    /// violation of the satisfaction contract (§3). The event is not
    /// counted, but any traffic the policy charged before giving up
    /// stays in the ledger (bytes moved are bytes moved).
    ContractViolated {
        /// Name of the offending policy.
        policy: String,
        /// Sequence number of the unsatisfied query (post-clamping).
        seq: u64,
    },
    /// A snapshot does not fit the world it is being restored into.
    SnapshotMismatch(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ContractViolated { policy, seq } => write!(
                f,
                "policy {policy} neither shipped nor answered query at seq {seq}"
            ),
            EngineError::SnapshotMismatch(why) => write!(f, "snapshot mismatch: {why}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// What one applied event did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineOutcome {
    /// An update was applied to the repository.
    Update {
        /// The object's new version.
        version: u64,
    },
    /// A query was satisfied.
    Query {
        /// Whether it was answered from the cache (vs shipped).
        local: bool,
        /// Synchronous (client-blocking) exchanges this query performed.
        sync_messages: u32,
        /// Bytes moved by those exchanges.
        sync_bytes: u64,
    },
}

/// Uniform operational counters every driver inherits from the engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineMetrics {
    /// The cost account (bytes by class, per-op counters, evictions).
    pub ledger: CostLedger,
    /// Queries served (satisfied) by this engine.
    pub queries: u64,
    /// Updates applied by this engine.
    pub updates: u64,
    /// Queries answered locally while at least one accessed object was
    /// stale — the staleness tolerance genuinely did the work.
    pub tolerance_served: u64,
    /// Cache capacity in bytes.
    pub cache_capacity: u64,
    /// Bytes currently resident.
    pub cache_used: u64,
    /// Objects currently resident.
    pub residents: u64,
}

impl EngineMetrics {
    /// Events (queries + updates) processed.
    pub fn events(&self) -> u64 {
        self.queries + self.updates
    }

    /// Fraction of queries answered locally.
    pub fn hit_rate(&self) -> f64 {
        self.ledger.hit_rate()
    }

    /// Folds another engine's metrics into this one (per-shard totals).
    pub fn absorb(&mut self, other: &EngineMetrics) {
        self.ledger.absorb(&other.ledger);
        self.queries += other.queries;
        self.updates += other.updates;
        self.tolerance_served += other.tolerance_served;
        self.cache_capacity += other.cache_capacity;
        self.cache_used += other.cache_used;
        self.residents += other.residents;
    }
}

impl ToJson for EngineMetrics {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("ledger".into(), self.ledger.to_json()),
            ("queries".into(), self.queries.to_json()),
            ("updates".into(), self.updates.to_json()),
            ("tolerance_served".into(), self.tolerance_served.to_json()),
            ("cache_capacity".into(), self.cache_capacity.to_json()),
            ("cache_used".into(), self.cache_used.to_json()),
            ("residents".into(), self.residents.to_json()),
        ])
    }
}

impl FromJson for EngineMetrics {
    fn from_json(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(EngineMetrics {
            ledger: CostLedger::from_json(field(v, "ledger")?)?,
            queries: u64::from_json(field(v, "queries")?)?,
            updates: u64::from_json(field(v, "updates")?)?,
            tolerance_served: u64::from_json(field(v, "tolerance_served")?)?,
            cache_capacity: u64::from_json(field(v, "cache_capacity")?)?,
            cache_used: u64::from_json(field(v, "cache_used")?)?,
            residents: u64::from_json(field(v, "residents")?)?,
        })
    }
}

/// The decoupling engine: one policy driving one repository/cache pair
/// under uniform cost accounting. See the module docs.
///
/// Generic over the boxed policy type `P` (defaulting to the plain
/// `dyn CachingPolicy` every in-process driver uses) so thread-sharing
/// drivers can instantiate `Engine<'static, dyn CachingPolicy + Send>`
/// and place the engine behind a `Mutex` — the server's shard cores do
/// exactly that.
pub struct Engine<'p, P: CachingPolicy + ?Sized + 'p = dyn CachingPolicy + 'p> {
    policy: Box<P>,
    _policy_lifetime: std::marker::PhantomData<&'p ()>,
    repo: Repository,
    cache: CacheStore,
    ledger: CostLedger,
    /// Highest event sequence number seen (the engine clock).
    clock: u64,
    /// When set, event timestamps are clamped to the clock so arrival
    /// order becomes the authoritative order (the server's ingest
    /// discipline); when clear, trace timestamps are trusted verbatim
    /// (the simulator and the lockstep deployment).
    clamp_clock: bool,
    queries: u64,
    updates: u64,
    tolerance_served: u64,
}

impl<P: CachingPolicy + ?Sized> std::fmt::Debug for Engine<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("policy", &self.policy.name())
            .field("clock", &self.clock)
            .field("queries", &self.queries)
            .field("updates", &self.updates)
            .field("ledger", &self.ledger)
            .finish_non_exhaustive()
    }
}

impl<'p, P: CachingPolicy + ?Sized + 'p> Engine<'p, P> {
    /// Builds an engine over a fresh repository for `catalog`, with the
    /// cache sized by the policy's [`CachingPolicy::preferred_capacity`]
    /// of `cache_bytes`. Call [`Engine::init`] before the first event.
    pub fn new(policy: Box<P>, catalog: &ObjectCatalog, cache_bytes: u64) -> Self {
        let capacity = policy.preferred_capacity(catalog, cache_bytes);
        Engine {
            policy,
            _policy_lifetime: std::marker::PhantomData,
            repo: Repository::new(catalog.clone()),
            cache: CacheStore::new(capacity),
            ledger: CostLedger::default(),
            clock: 0,
            clamp_clock: false,
            queries: 0,
            updates: 0,
            tolerance_served: 0,
        }
    }

    /// Turns timestamp clamping on or off (builder-style; default off).
    pub fn clamp_clock(mut self, on: bool) -> Self {
        self.clamp_clock = on;
        self
    }

    /// Runs the policy's [`CachingPolicy::init`] hook (pre-population).
    /// Not called by [`Engine::restore`] — a restored cache is already
    /// populated, and e.g. `Replica`'s preload would collide with it.
    pub fn init(&mut self, transport: Option<&mut dyn Transport>) {
        let mut ctx = match transport {
            Some(t) => SimContext::with_transport(
                &mut self.repo,
                &mut self.cache,
                &mut self.ledger,
                self.clock,
                &mut *t,
            ),
            None => SimContext::new(
                &mut self.repo,
                &mut self.cache,
                &mut self.ledger,
                self.clock,
            ),
        };
        self.policy.init(&mut ctx);
    }

    /// Applies one event with no transport (in-process drivers).
    pub fn apply(&mut self, event: &Event) -> Result<EngineOutcome, EngineError> {
        self.apply_with(event, None)
    }

    /// Applies one event, mirroring data movements onto `transport` when
    /// given (the threaded deployment's WAN hook).
    pub fn apply_with(
        &mut self,
        event: &Event,
        transport: Option<&mut dyn Transport>,
    ) -> Result<EngineOutcome, EngineError> {
        match event {
            Event::Update(u) => Ok(EngineOutcome::Update {
                version: self.apply_update(u, transport),
            }),
            Event::Query(q) => self.serve_query(q, transport),
        }
    }

    /// The update path: apply to the repository, invalidate the cached
    /// copy, then let the policy react — in that order, always.
    fn apply_update(&mut self, u: &UpdateEvent, transport: Option<&mut dyn Transport>) -> u64 {
        let now = self.tick(u.seq);
        let u = UpdateEvent { seq: now, ..*u };
        let version = self.repo.apply_update(u.object, u.bytes, now);
        self.cache.invalidate(u.object);
        let mut ctx = match transport {
            Some(t) => SimContext::with_transport(
                &mut self.repo,
                &mut self.cache,
                &mut self.ledger,
                now,
                &mut *t,
            ),
            None => SimContext::new(&mut self.repo, &mut self.cache, &mut self.ledger, now),
        };
        self.policy.on_update(&u, &mut ctx);
        self.updates += 1;
        version
    }

    /// The query path: the policy must satisfy the query one way or the
    /// other, or the engine reports [`EngineError::ContractViolated`].
    fn serve_query(
        &mut self,
        q: &QueryEvent,
        transport: Option<&mut dyn Transport>,
    ) -> Result<EngineOutcome, EngineError> {
        let now = self.tick(q.seq);
        let clamped;
        let q = if now == q.seq {
            q
        } else {
            clamped = QueryEvent {
                seq: now,
                ..q.clone()
            };
            &clamped
        };
        let (satisfied, local, served_stale, sync_messages, sync_bytes) = {
            let mut ctx = match transport {
                Some(t) => SimContext::with_transport(
                    &mut self.repo,
                    &mut self.cache,
                    &mut self.ledger,
                    now,
                    &mut *t,
                ),
                None => SimContext::new(&mut self.repo, &mut self.cache, &mut self.ledger, now),
            };
            self.policy.on_query(q, &mut ctx);
            let (m, b) = ctx.sync_traffic();
            (
                ctx.satisfied(),
                ctx.answered_local(),
                ctx.served_stale(),
                m,
                b,
            )
        };
        if !satisfied {
            return Err(EngineError::ContractViolated {
                policy: self.policy.name().to_string(),
                seq: now,
            });
        }
        // `served_stale` was recorded during the local answer's currency
        // walk — no second pass over the query's objects here.
        if local && served_stale {
            self.tolerance_served += 1;
        }
        self.queries += 1;
        Ok(EngineOutcome::Query {
            local,
            sync_messages,
            sync_bytes,
        })
    }

    fn tick(&mut self, seq: u64) -> u64 {
        let now = if self.clamp_clock {
            seq.max(self.clock)
        } else {
            seq
        };
        self.clock = self.clock.max(now);
        now
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The repository (authoritative state, or the metadata mirror in a
    /// threaded deployment).
    pub fn repo(&self) -> &Repository {
        &self.repo
    }

    /// The cache store.
    pub fn cache(&self) -> &CacheStore {
        &self.cache
    }

    /// Mutable cache access — for drivers that model out-of-band damage
    /// (crash recovery drops or re-marks residents without charging the
    /// ledger). Event-driven mutation goes through [`Engine::apply`].
    pub fn cache_mut(&mut self) -> &mut CacheStore {
        &mut self.cache
    }

    /// The cost account.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Highest event sequence number seen.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Events (queries + updates) processed.
    pub fn events(&self) -> u64 {
        self.queries + self.updates
    }

    /// Snapshot of the uniform operational counters.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            ledger: self.ledger.clone(),
            queries: self.queries,
            updates: self.updates,
            tolerance_served: self.tolerance_served,
            cache_capacity: self.cache.capacity(),
            cache_used: self.cache.used(),
            residents: self.cache.len() as u64,
        }
    }

    /// Swaps in a fresh policy (a crash lost the old one's volatile
    /// decision state). World state and the ledger are untouched.
    pub fn replace_policy(&mut self, policy: Box<P>) {
        self.policy = policy;
    }

    /// Swaps in a rebuilt repository (a recovered mirror). Cache and
    /// ledger are untouched.
    pub fn replace_repository(&mut self, repo: Repository) {
        self.repo = repo;
    }

    /// Captures everything needed to resume warm: per-object update
    /// logs, cache residency/versions/stale marks, the ledger and the
    /// engine counters. Policy decision state is not captured.
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut entries = Vec::new();
        for o in self.repo.catalog().ids() {
            let updates = self.repo.updates_since(o, 0).to_vec();
            let resident = self.cache.get(o).map(|r| ResidentState {
                bytes: r.bytes,
                applied_version: r.applied_version,
                stale: r.stale,
            });
            if !updates.is_empty() || resident.is_some() {
                entries.push(ObjectEntry {
                    object: o.0,
                    updates,
                    resident,
                });
            }
        }
        EngineSnapshot {
            policy: self.policy.name().to_string(),
            catalog_objects: self.repo.catalog().len() as u64,
            catalog_bytes: self.repo.catalog().total_bytes(),
            capacity: self.cache.capacity(),
            clock: self.clock,
            queries: self.queries,
            updates: self.updates,
            tolerance_served: self.tolerance_served,
            ledger: self.ledger.clone(),
            entries,
        }
    }

    /// Rebuilds an engine from a snapshot over `catalog`, running a
    /// fresh `policy`. The cache keeps the snapshot's capacity (not the
    /// policy's preferred capacity — the residents must fit exactly as
    /// they did). [`CachingPolicy::init`] is *not* run; see
    /// [`Engine::init`].
    pub fn restore(
        policy: Box<P>,
        catalog: &ObjectCatalog,
        snap: &EngineSnapshot,
    ) -> Result<Self, EngineError> {
        snap.validate(catalog, policy.name())?;
        let mut repo = Repository::new(catalog.clone());
        let mut cache = CacheStore::new(snap.capacity);
        for entry in &snap.entries {
            let o = ObjectId(entry.object);
            for r in &entry.updates {
                repo.apply_update(o, r.bytes, r.seq);
            }
            if let Some(res) = &entry.resident {
                cache
                    .restore(o, res.bytes, res.applied_version, res.stale)
                    .map_err(|e| {
                        EngineError::SnapshotMismatch(format!("restoring resident {o}: {e}"))
                    })?;
            }
        }
        Ok(Engine {
            policy,
            _policy_lifetime: std::marker::PhantomData,
            repo,
            cache,
            ledger: snap.ledger.clone(),
            clock: snap.clock,
            clamp_clock: false,
            queries: snap.queries,
            updates: snap.updates,
            tolerance_served: snap.tolerance_served,
        })
    }
}

/// Adapts a borrowed policy to the engine's owning interface (the
/// simulator's public signature hands out `&mut dyn CachingPolicy`).
pub(crate) struct BorrowedPolicy<'p>(pub &'p mut dyn CachingPolicy);

impl CachingPolicy for BorrowedPolicy<'_> {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn init(&mut self, ctx: &mut SimContext<'_>) {
        self.0.init(ctx);
    }
    fn on_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) {
        self.0.on_query(q, ctx);
    }
    fn on_update(&mut self, u: &UpdateEvent, ctx: &mut SimContext<'_>) {
        self.0.on_update(u, ctx);
    }
    fn preferred_capacity(&self, catalog: &ObjectCatalog, configured: u64) -> u64 {
        self.0.preferred_capacity(catalog, configured)
    }
}

// ---- snapshot model ----

/// Cache-side state of one resident object, as captured in a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResidentState {
    /// Bytes held (load size plus shipped update bytes).
    pub bytes: u64,
    /// Updates applied at the cache.
    pub applied_version: u64,
    /// Whether newer updates existed at the server.
    pub stale: bool,
}

/// One object's snapshot line: its repository update log and, when
/// resident, its cache state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectEntry {
    /// Global object id.
    pub object: u32,
    /// The full update log (seq, bytes), in seq order.
    pub updates: Vec<UpdateRecord>,
    /// Cache residency, if any.
    pub resident: Option<ResidentState>,
}

/// Everything [`Engine::restore`] needs to resume warm.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Name of the policy that was running (restores are refused across
    /// policy kinds — warm state under a different algorithm is
    /// undefined).
    pub policy: String,
    /// Catalog size the snapshot was taken over, for validation.
    pub catalog_objects: u64,
    /// Total base bytes of that catalog — a fingerprint that catches a
    /// different catalog with a coincidentally equal object count.
    pub catalog_bytes: u64,
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Engine clock (highest event seq seen).
    pub clock: u64,
    /// Queries served.
    pub queries: u64,
    /// Updates applied.
    pub updates: u64,
    /// Tolerance-served query count.
    pub tolerance_served: u64,
    /// The cost account.
    pub ledger: CostLedger,
    /// Per-object logs and residency (objects with neither are omitted).
    pub entries: Vec<ObjectEntry>,
}

/// Snapshot file format version.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

impl EngineSnapshot {
    /// Checks the snapshot against the world it would restore into.
    pub fn validate(&self, catalog: &ObjectCatalog, policy: &str) -> Result<(), EngineError> {
        let fail = |why: String| Err(EngineError::SnapshotMismatch(why));
        if self.policy != policy {
            return fail(format!(
                "snapshot was taken under policy {} but {policy} is configured",
                self.policy
            ));
        }
        if self.catalog_objects != catalog.len() as u64 {
            return fail(format!(
                "snapshot covers {} objects but the catalog has {}",
                self.catalog_objects,
                catalog.len()
            ));
        }
        if self.catalog_bytes != catalog.total_bytes() {
            return fail(format!(
                "snapshot was taken over a {}-byte catalog but this one totals {} bytes",
                self.catalog_bytes,
                catalog.total_bytes()
            ));
        }
        for entry in &self.entries {
            let o = ObjectId(entry.object);
            if o.index() >= catalog.len() {
                return fail(format!("entry for {o} is outside the catalog"));
            }
            if !entry.updates.windows(2).all(|w| w[0].seq <= w[1].seq) {
                return fail(format!("{o}'s update log is not seq-sorted"));
            }
            if let Some(res) = &entry.resident {
                if res.applied_version > entry.updates.len() as u64 {
                    return fail(format!(
                        "{o} resident at version {} but only {} updates logged",
                        res.applied_version,
                        entry.updates.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

impl ToJson for ResidentState {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("bytes".into(), self.bytes.to_json()),
            ("applied_version".into(), self.applied_version.to_json()),
            ("stale".into(), self.stale.to_json()),
        ])
    }
}

impl FromJson for ResidentState {
    fn from_json(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(ResidentState {
            bytes: u64::from_json(field(v, "bytes")?)?,
            applied_version: u64::from_json(field(v, "applied_version")?)?,
            stale: field(v, "stale")?
                .as_bool()
                .ok_or_else(|| serde_json::Error::msg("expected bool `stale`"))?,
        })
    }
}

impl ToJson for ObjectEntry {
    fn to_json(&self) -> Value {
        // Update logs dominate snapshot size; encode each record as a
        // compact `[seq, bytes]` pair rather than a keyed object.
        let updates = Value::Array(
            self.updates
                .iter()
                .map(|r| Value::Array(vec![r.seq.to_json(), r.bytes.to_json()]))
                .collect(),
        );
        Value::Object(vec![
            ("object".into(), self.object.to_json()),
            ("updates".into(), updates),
            (
                "resident".into(),
                self.resident
                    .as_ref()
                    .map(|r| r.to_json())
                    .unwrap_or(Value::Null),
            ),
        ])
    }
}

impl FromJson for ObjectEntry {
    fn from_json(v: &Value) -> Result<Self, serde_json::Error> {
        let pairs = field(v, "updates")?
            .as_array()
            .ok_or_else(|| serde_json::Error::msg("expected array `updates`"))?;
        let mut updates = Vec::with_capacity(pairs.len());
        for pair in pairs {
            let pair = pair
                .as_array()
                .ok_or_else(|| serde_json::Error::msg("expected [seq, bytes] pair"))?;
            if pair.len() != 2 {
                return Err(serde_json::Error::msg("expected [seq, bytes] pair"));
            }
            updates.push(UpdateRecord {
                seq: u64::from_json(&pair[0])?,
                bytes: u64::from_json(&pair[1])?,
            });
        }
        let resident = match field(v, "resident")? {
            Value::Null => None,
            other => Some(ResidentState::from_json(other)?),
        };
        Ok(ObjectEntry {
            object: u32::from_json(field(v, "object")?)?,
            updates,
            resident,
        })
    }
}

/// The snapshot's JSON header line.
fn snapshot_header(snap: &EngineSnapshot) -> Value {
    Value::Object(vec![
        ("format".into(), SNAPSHOT_FORMAT_VERSION.to_json()),
        ("policy".into(), snap.policy.to_json()),
        ("catalog_objects".into(), snap.catalog_objects.to_json()),
        ("catalog_bytes".into(), snap.catalog_bytes.to_json()),
        ("capacity".into(), snap.capacity.to_json()),
        ("clock".into(), snap.clock.to_json()),
        ("queries".into(), snap.queries.to_json()),
        ("updates".into(), snap.updates.to_json()),
        ("tolerance_served".into(), snap.tolerance_served.to_json()),
        ("ledger".into(), snap.ledger.to_json()),
        ("entries".into(), (snap.entries.len() as u64).to_json()),
    ])
}

/// Renders a snapshot in the JSONL wire/file format — a header line,
/// then one line per object entry. This is the byte layout both the
/// warm-restart files and the cluster's shard-migration frames carry
/// (the wire path needs the contiguous buffer; the file path streams
/// through [`write_snapshot`] instead).
pub fn snapshot_to_string(snap: &EngineSnapshot) -> String {
    let mut out = snapshot_header(snap).to_json_string();
    out.push('\n');
    for entry in &snap.entries {
        out.push_str(&entry.to_json().to_json_string());
        out.push('\n');
    }
    out
}

/// Parses the JSONL snapshot format produced by [`snapshot_to_string`]
/// (equivalently, the contents of a [`write_snapshot`] file).
pub fn snapshot_from_str(body: &str) -> std::io::Result<EngineSnapshot> {
    let mut lines = body.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty snapshot"))?;
    let header = serde_json::from_str_value(header_line).map_err(std::io::Error::from)?;
    let format = u32::from_json(field(&header, "format").map_err(std::io::Error::from)?)?;
    if format != SNAPSHOT_FORMAT_VERSION {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unsupported snapshot format {format}"),
        ));
    }
    let expected = u64::from_json(field(&header, "entries").map_err(std::io::Error::from)?)?;
    let mut entries = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = serde_json::from_str_value(line).map_err(std::io::Error::from)?;
        entries.push(ObjectEntry::from_json(&v).map_err(std::io::Error::from)?);
    }
    if entries.len() as u64 != expected {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "snapshot truncated: header promises {expected} entries, found {}",
                entries.len()
            ),
        ));
    }
    let hfield = |name: &str| field(&header, name).map_err(std::io::Error::from);
    Ok(EngineSnapshot {
        policy: String::from_json(hfield("policy")?)?,
        catalog_objects: u64::from_json(hfield("catalog_objects")?)?,
        catalog_bytes: u64::from_json(hfield("catalog_bytes")?)?,
        capacity: u64::from_json(hfield("capacity")?)?,
        clock: u64::from_json(hfield("clock")?)?,
        queries: u64::from_json(hfield("queries")?)?,
        updates: u64::from_json(hfield("updates")?)?,
        tolerance_served: u64::from_json(hfield("tolerance_served")?)?,
        ledger: CostLedger::from_json(hfield("ledger")?)?,
        entries,
    })
}

/// Writes a snapshot in the JSONL format atomically (temp file +
/// rename), so a crash mid-write never leaves a torn snapshot where a
/// good one stood. Entries stream through the writer one line at a
/// time — the whole snapshot is never materialized in memory.
pub fn write_snapshot(path: &Path, snap: &EngineSnapshot) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let f = std::fs::File::create(&tmp)?;
        let mut w = BufWriter::new(f);
        w.write_all(snapshot_header(snap).to_json_string().as_bytes())?;
        w.write_all(b"\n")?;
        for entry in &snap.entries {
            w.write_all(entry.to_json().to_json_string().as_bytes())?;
            w.write_all(b"\n")?;
        }
        w.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads a snapshot written by [`write_snapshot`].
pub fn read_snapshot(path: &Path) -> std::io::Result<EngineSnapshot> {
    let mut body = String::new();
    BufReader::new(std::fs::File::open(path)?).read_to_string(&mut body)?;
    snapshot_from_str(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcover::VCover;
    use crate::yardstick::{NoCache, Replica};
    use delta_workload::{QueryKind, SyntheticSurvey, WorkloadConfig};

    fn survey(n: usize) -> SyntheticSurvey {
        let mut cfg = WorkloadConfig::small();
        cfg.n_queries = n;
        cfg.n_updates = n;
        SyntheticSurvey::generate(&cfg)
    }

    fn query(seq: u64, objects: Vec<u32>, bytes: u64, tolerance: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance,
            kind: QueryKind::Selection,
        }
    }

    /// A policy that breaks the satisfaction contract on purpose.
    struct Broken;
    impl CachingPolicy for Broken {
        fn name(&self) -> &str {
            "Broken"
        }
        fn on_query(&mut self, _q: &QueryEvent, _ctx: &mut SimContext<'_>) {}
        fn on_update(&mut self, _u: &UpdateEvent, _ctx: &mut SimContext<'_>) {}
    }

    #[test]
    fn update_then_query_outcomes() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let mut e = Engine::new(Box::new(NoCache), &catalog, 1_000);
        e.init(None);
        let u = UpdateEvent {
            seq: 1,
            object: ObjectId(0),
            bytes: 10,
        };
        assert_eq!(
            e.apply(&Event::Update(u)).unwrap(),
            EngineOutcome::Update { version: 1 }
        );
        match e.apply(&Event::Query(query(2, vec![0], 55, 0))).unwrap() {
            EngineOutcome::Query {
                local,
                sync_messages,
                sync_bytes,
            } => {
                assert!(!local, "NoCache always ships");
                assert_eq!((sync_messages, sync_bytes), (1, 55));
            }
            other => panic!("unexpected {other:?}"),
        }
        let m = e.metrics();
        assert_eq!((m.queries, m.updates), (1, 1));
        assert_eq!(m.ledger.breakdown.query_ship.bytes(), 55);
        assert_eq!(e.events(), 2);
    }

    #[test]
    fn broken_policy_yields_typed_error_not_panic() {
        let catalog = ObjectCatalog::from_sizes(&[100]);
        let mut e = Engine::new(Box::new(Broken), &catalog, 1_000);
        e.init(None);
        let err = e.apply(&Event::Query(query(7, vec![0], 5, 0))).unwrap_err();
        assert_eq!(
            err,
            EngineError::ContractViolated {
                policy: "Broken".into(),
                seq: 7
            }
        );
        // The engine survives and keeps serving.
        assert_eq!(e.metrics().queries, 0, "violated queries are not counted");
        let u = UpdateEvent {
            seq: 8,
            object: ObjectId(0),
            bytes: 1,
        };
        assert!(e.apply(&Event::Update(u)).is_ok());
    }

    #[test]
    fn clamped_clock_makes_arrival_order_authoritative() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let mut e = Engine::new(Box::new(NoCache), &catalog, 1_000).clamp_clock(true);
        e.init(None);
        let mk = |seq, object| UpdateEvent {
            seq,
            object: ObjectId(object),
            bytes: 1,
        };
        e.apply(&Event::Update(mk(10, 0))).unwrap();
        // An out-of-order arrival is clamped instead of panicking the
        // repository's monotonicity assert.
        e.apply(&Event::Update(mk(5, 0))).unwrap();
        assert_eq!(e.clock(), 10);
    }

    #[test]
    fn tolerance_served_counts_stale_local_answers() {
        let catalog = ObjectCatalog::from_sizes(&[100]);
        let mut e = Engine::new(Box::new(Replica), &catalog, 0);
        e.init(None);
        // Fresh local answer: not tolerance-served.
        e.apply(&Event::Query(query(1, vec![0], 5, 0))).unwrap();
        assert_eq!(e.metrics().tolerance_served, 0);
        // Replica ships updates on arrival, so force staleness by hand.
        e.cache_mut().invalidate(ObjectId(0));
        e.apply(&Event::Query(query(10, vec![0], 5, 100))).unwrap();
        let m = e.metrics();
        assert_eq!(m.tolerance_served, 1);
        assert_eq!(m.ledger.local_answers, 2);
    }

    #[test]
    fn snapshot_roundtrips_through_jsonl() {
        let s = survey(400);
        let cache = (s.catalog.total_bytes() as f64 * 0.3) as u64;
        let mut e = Engine::new(Box::new(VCover::new(cache, 5)), &s.catalog, cache);
        e.init(None);
        for event in s.trace.iter() {
            e.apply(event).unwrap();
        }
        let snap = e.snapshot();
        let path =
            std::env::temp_dir().join(format!("delta-engine-snap-{}.jsonl", std::process::id()));
        write_snapshot(&path, &snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(snap, back);
    }

    #[test]
    fn metrics_survive_a_snapshot_restore_cycle() {
        let s = survey(400);
        let cache = (s.catalog.total_bytes() as f64 * 0.3) as u64;
        let mut e = Engine::new(Box::new(VCover::new(cache, 5)), &s.catalog, cache);
        e.init(None);
        for event in s.trace.iter() {
            e.apply(event).unwrap();
        }
        let snap = e.snapshot();
        let restored = Engine::restore(Box::new(VCover::new(cache, 5)), &s.catalog, &snap).unwrap();
        assert_eq!(restored.metrics(), e.metrics());
        assert_eq!(restored.clock(), e.clock());
        assert_eq!(restored.snapshot(), snap, "restore is a fixed point");
    }

    #[test]
    fn restore_refuses_mismatched_worlds() {
        let s = survey(50);
        let cache = 10_000;
        let mut e = Engine::new(Box::new(NoCache), &s.catalog, cache);
        e.init(None);
        for event in s.trace.iter() {
            e.apply(event).unwrap();
        }
        let snap = e.snapshot();
        // Wrong policy.
        let err = Engine::restore(Box::new(Replica), &s.catalog, &snap).unwrap_err();
        assert!(matches!(err, EngineError::SnapshotMismatch(_)), "{err}");
        // Wrong catalog (object count).
        let other = ObjectCatalog::from_sizes(&[1, 2, 3]);
        let err = Engine::restore(Box::new(NoCache), &other, &snap).unwrap_err();
        assert!(matches!(err, EngineError::SnapshotMismatch(_)), "{err}");
        // Same object count, different sizes: the byte fingerprint
        // catches the impostor catalog.
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let mut e = Engine::new(Box::new(NoCache), &catalog, 1_000);
        e.init(None);
        let snap = e.snapshot();
        let impostor = ObjectCatalog::from_sizes(&[100, 999]);
        let err = Engine::restore(Box::new(NoCache), &impostor, &snap).unwrap_err();
        assert!(
            err.to_string().contains("catalog"),
            "size mismatch must be refused: {err}"
        );
    }

    /// The warm-restart contract: for policies whose behaviour depends
    /// only on world state (NoCache ships everything; Replica's mirror
    /// *is* the world state), prefix + restore + tail is byte-identical
    /// to an uninterrupted run.
    #[test]
    fn restore_and_replay_tail_matches_uninterrupted_run() {
        let s = survey(500);
        for policy in ["NoCache", "Replica"] {
            let build = || -> Box<dyn CachingPolicy> {
                match policy {
                    "NoCache" => Box::new(NoCache),
                    _ => Box::new(Replica),
                }
            };
            let cache = (s.catalog.total_bytes() as f64 * 0.3) as u64;
            let mut full = Engine::new(build(), &s.catalog, cache);
            full.init(None);
            for event in s.trace.iter() {
                full.apply(event).unwrap();
            }

            let mid = s.trace.len() / 2;
            let mut prefix = Engine::new(build(), &s.catalog, cache);
            prefix.init(None);
            for event in s.trace.events[..mid].iter() {
                prefix.apply(event).unwrap();
            }
            let snap = prefix.snapshot();
            let mut resumed = Engine::restore(build(), &s.catalog, &snap).unwrap();
            for event in s.trace.events[mid..].iter() {
                resumed.apply(event).unwrap();
            }
            assert_eq!(
                resumed.metrics(),
                full.metrics(),
                "{policy}: warm restart must be invisible in the ledger"
            );
        }
    }

    /// VCover's decision state is volatile (not snapshotted), so the
    /// resumed run may legally diverge from the uninterrupted one — but
    /// it must stay correct and deterministic.
    #[test]
    fn vcover_restore_is_deterministic_and_correct() {
        let s = survey(500);
        let cache = (s.catalog.total_bytes() as f64 * 0.3) as u64;
        let mid = s.trace.len() / 2;
        let mut prefix = Engine::new(Box::new(VCover::new(cache, 9)), &s.catalog, cache);
        prefix.init(None);
        for event in s.trace.events[..mid].iter() {
            prefix.apply(event).unwrap();
        }
        let snap = prefix.snapshot();

        let run_tail = || {
            let mut e =
                Engine::restore(Box::new(VCover::new(cache, 9)), &s.catalog, &snap).unwrap();
            for event in s.trace.events[mid..].iter() {
                e.apply(event).unwrap();
            }
            e.metrics()
        };
        let (a, b) = (run_tail(), run_tail());
        assert_eq!(a, b, "restored replay must be deterministic");
        assert_eq!(
            a.ledger.shipped_queries + a.ledger.local_answers,
            s.trace.n_queries() as u64,
            "every query satisfied across the restart"
        );
    }
}
