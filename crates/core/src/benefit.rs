//! Benefit — the exponential-smoothing greedy baseline (paper §5).
//!
//! The event sequence is divided into windows of δ events. At each window
//! boundary, every object gets a *benefit* for the closing window:
//!
//! * cached object: query cost it saved (proportional share of every query
//!   answered at the cache, split by object size — §5) minus the update
//!   bytes shipped for it;
//! * uncached object: the share it *would* have saved of the queries that
//!   shipped, minus the update bytes that arrived for it, minus its load
//!   cost.
//!
//! A forecast `µ_i = (1-α)µ_{i-1} + α b_{i-1}` smooths the benefits; the
//! positive-µ objects are ranked and greedily packed into the cache for
//! the next window. This mirrors the online view-materialization
//! heuristics of [20, 21] that commercial dynamic-data caches employ, and
//! is precisely the algorithm the paper shows VCover beating by 2–5×.

use crate::context::SimContext;
use crate::policy_trait::CachingPolicy;
use delta_storage::{staleness, ObjectId};
use delta_workload::{QueryEvent, UpdateEvent};

/// Configuration for [`Benefit`].
#[derive(Clone, Copy, Debug)]
pub struct BenefitConfig {
    /// Window length δ in events (paper default: 1000).
    pub window: u64,
    /// Exponential-smoothing learning rate α in `[0, 1]`.
    pub alpha: f64,
}

impl Default for BenefitConfig {
    fn default() -> Self {
        Self {
            window: 1000,
            alpha: 0.3,
        }
    }
}

/// Per-object accumulators for the current window.
#[derive(Clone, Copy, Debug, Default)]
struct WindowAcc {
    /// Query cost saved (cached objects, proportional share).
    saved: f64,
    /// Query cost that would have been saved (uncached objects).
    would_have_saved: f64,
    /// Update bytes shipped for the object (cached).
    update_shipped: f64,
    /// Update bytes that arrived for the object.
    update_arrived: f64,
}

/// The Benefit policy.
#[derive(Debug)]
pub struct Benefit {
    cfg: BenefitConfig,
    capacity: u64,
    mu: Vec<f64>,
    acc: Vec<WindowAcc>,
    next_boundary: u64,
    windows_closed: u64,
}

impl Benefit {
    /// Creates a Benefit policy for a cache of `capacity` bytes.
    pub fn new(capacity: u64, cfg: BenefitConfig) -> Self {
        Self {
            cfg,
            capacity,
            mu: Vec::new(),
            acc: Vec::new(),
            next_boundary: cfg.window,
            windows_closed: 0,
        }
    }

    /// Number of completed windows (for tests).
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    fn ensure_len(&mut self, n: usize) {
        if self.mu.len() < n {
            self.mu.resize(n, 0.0);
            self.acc.resize(n, WindowAcc::default());
        }
    }

    /// Proportional cost sharing: ν(q) split over B(q) by object size
    /// (§5: "divided among the objects the query accesses in proportion
    /// to their sizes").
    fn shares(q: &QueryEvent, ctx: &SimContext<'_>) -> Vec<(ObjectId, f64)> {
        let total: u64 = q.objects.iter().map(|&o| ctx.repo.current_size(o)).sum();
        let total = total.max(1) as f64;
        q.objects
            .iter()
            .map(|&o| {
                (
                    o,
                    q.result_bytes as f64 * ctx.repo.current_size(o) as f64 / total,
                )
            })
            .collect()
    }

    fn maybe_close_window(&mut self, ctx: &mut SimContext<'_>) {
        while ctx.now >= self.next_boundary {
            self.close_window(ctx);
            self.next_boundary += self.cfg.window;
        }
    }

    fn close_window(&mut self, ctx: &mut SimContext<'_>) {
        self.windows_closed += 1;
        let n = ctx.repo.catalog().len();
        self.ensure_len(n);
        // Forecast update.
        for i in 0..n {
            let o = ObjectId(i as u32);
            let a = self.acc[i];
            let b = if ctx.cache.contains(o) {
                a.saved - a.update_shipped
            } else {
                a.would_have_saved - a.update_arrived - ctx.repo.current_size(o) as f64
            };
            self.mu[i] = (1.0 - self.cfg.alpha) * self.mu[i] + self.cfg.alpha * b;
            self.acc[i] = WindowAcc::default();
        }
        // Greedy selection: positive µ, descending, pack by current size.
        let mut ranked: Vec<usize> = (0..n).filter(|&i| self.mu[i] > 0.0).collect();
        ranked.sort_by(|&a, &b| self.mu[b].total_cmp(&self.mu[a]).then(a.cmp(&b)));
        let mut chosen: Vec<ObjectId> = Vec::new();
        let mut used = 0u64;
        for i in ranked {
            let o = ObjectId(i as u32);
            let sz = ctx.repo.current_size(o);
            if used + sz <= self.capacity {
                chosen.push(o);
                used += sz;
            }
        }
        // Evict residents not chosen; load chosen non-residents
        // ("objects already present don't have to be reloaded", §5).
        let resident: Vec<ObjectId> = ctx.cache.iter().map(|(o, _)| o).collect();
        for o in resident {
            if !chosen.contains(&o) {
                ctx.evict_object(o);
            }
        }
        for o in chosen {
            if !ctx.cache.contains(o) {
                // Loads are charged; a load can still fail if sizes grew
                // mid-selection — skip in that case.
                let _ = ctx.load_object(o);
            }
        }
    }
}

impl CachingPolicy for Benefit {
    fn name(&self) -> &str {
        "Benefit"
    }

    fn on_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) {
        self.maybe_close_window(ctx);
        self.ensure_len(ctx.repo.catalog().len());
        let all_cached = q.objects.iter().all(|&o| ctx.cache.contains(o));
        if all_cached {
            // Cached objects are kept fresh eagerly (see on_update), so
            // normally nothing is outstanding; the guard only covers the
            // window-boundary instant where a load just happened.
            for &o in &q.objects {
                if let Some(need) =
                    staleness::needed_updates(ctx.repo, ctx.cache, o, ctx.now, q.tolerance)
                {
                    if !need.is_current() {
                        let shipped = ctx.ship_updates_to(o, need.to_version);
                        self.acc[o.index()].update_shipped += shipped as f64;
                    }
                }
            }
            ctx.answer_local(q);
            for (o, share) in Self::shares(q, ctx) {
                self.acc[o.index()].saved += share;
            }
            // Update growth may overflow the cache: evict worst-µ objects.
            while ctx.over_capacity() {
                let victim = ctx
                    .cache
                    .iter()
                    .map(|(o, _)| o)
                    .min_by(|a, b| self.mu[a.index()].total_cmp(&self.mu[b.index()]));
                match victim {
                    Some(v) => ctx.evict_object(v),
                    None => break,
                }
            }
        } else {
            ctx.ship_query(q);
            for (o, share) in Self::shares(q, ctx) {
                if !ctx.cache.contains(o) {
                    self.acc[o.index()].would_have_saved += share;
                }
            }
        }
    }

    fn on_update(&mut self, u: &UpdateEvent, ctx: &mut SimContext<'_>) {
        self.maybe_close_window(ctx);
        self.ensure_len(ctx.repo.catalog().len());
        self.acc[u.object.index()].update_arrived += u.bytes as f64;
        // Materialized-view semantics (the [20, 21] lineage the paper
        // compares against): chosen objects are kept *fresh*, so updates
        // to cached objects ship on arrival — Benefit has no per-query
        // ship-or-not decision framework; that is VCover's contribution.
        if ctx.cache.contains(u.object) {
            let v = ctx.repo.version(u.object);
            let shipped = ctx.ship_updates_to(u.object, v);
            self.acc[u.object.index()].update_shipped += shipped as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostLedger;
    use delta_storage::{CacheStore, ObjectCatalog, Repository};
    use delta_workload::QueryKind;

    fn q(seq: u64, objects: Vec<u32>, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Cone,
        }
    }

    #[test]
    fn loads_hot_object_after_first_window() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100, 100]));
        let mut cache = CacheStore::new(150);
        let mut ledger = CostLedger::default();
        let mut b = Benefit::new(
            150,
            BenefitConfig {
                window: 10,
                alpha: 1.0,
            },
        );
        // Window 0: hot queries on o0 (shipped: nothing cached).
        for seq in 0..10u64 {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            b.on_query(&q(seq, vec![0], 50), &mut ctx);
        }
        // First event of window 1 triggers the boundary: o0 would have
        // saved 500 > load 100 → load it.
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 10);
        b.on_query(&q(10, vec![0], 50), &mut ctx);
        assert!(cache.contains(ObjectId(0)));
        assert_eq!(ledger.local_answers, 1);
        assert!(b.windows_closed() >= 1);
    }

    #[test]
    fn drops_object_when_updates_dominate() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100]));
        let mut cache = CacheStore::new(200);
        let mut ledger = CostLedger::default();
        let mut b = Benefit::new(
            200,
            BenefitConfig {
                window: 10,
                alpha: 1.0,
            },
        );
        // Window 0: make o0 attractive.
        for seq in 0..10u64 {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            b.on_query(&q(seq, vec![0], 100), &mut ctx);
        }
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 10);
            b.on_query(&q(10, vec![0], 100), &mut ctx);
        }
        assert!(cache.contains(ObjectId(0)));
        // Window 1+: update storm, queries cheap → benefit negative.
        let mut seq = 11u64;
        for _ in 0..30 {
            repo.apply_update(ObjectId(0), 500, seq);
            cache.invalidate(ObjectId(0));
            {
                let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
                b.on_update(
                    &UpdateEvent {
                        seq,
                        object: ObjectId(0),
                        bytes: 500,
                    },
                    &mut ctx,
                );
            }
            seq += 1;
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            b.on_query(&q(seq, vec![0], 10), &mut ctx);
            seq += 1;
        }
        assert!(
            !cache.contains(ObjectId(0)),
            "update-hot object should be dropped"
        );
    }

    #[test]
    fn window_boundaries_advance_with_time_jumps() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100]));
        let mut cache = CacheStore::new(200);
        let mut ledger = CostLedger::default();
        let mut b = Benefit::new(
            200,
            BenefitConfig {
                window: 5,
                alpha: 0.5,
            },
        );
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 0);
            b.on_query(&q(0, vec![0], 10), &mut ctx);
        }
        // Jump far ahead: multiple windows close at once.
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 23);
        b.on_query(&q(23, vec![0], 10), &mut ctx);
        assert!(b.windows_closed() >= 4);
    }
}
