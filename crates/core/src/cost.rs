//! Network-traffic cost accounting.
//!
//! Delta's only objective is minimizing bytes moved between cache and
//! repository (§3). [`Cost`] is a byte count with GB-friendly display;
//! [`CostBreakdown`] splits it by the paper's three communication
//! mechanisms; [`CostLedger`] is the running account a simulation writes
//! and every figure reads.

use serde::{Deserialize, Serialize};

/// A network-traffic cost in bytes.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cost(pub u64);

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost(0);

    /// The cost in raw bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// The cost in (decimal) gigabytes.
    pub fn gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, o: Cost) -> Cost {
        Cost(self.0.saturating_sub(o.0))
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, o: Cost) -> Cost {
        Cost(self.0 + o.0)
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, o: Cost) {
        self.0 += o.0;
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        Cost(iter.map(|c| c.0).sum())
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 10_000_000 {
            write!(f, "{:.2} GB", self.gb())
        } else if self.0 >= 10_000 {
            write!(f, "{:.2} MB", self.0 as f64 / 1e6)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// Costs split by communication mechanism.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Bytes of query results shipped from the server.
    pub query_ship: Cost,
    /// Bytes of update content shipped to the cache.
    pub update_ship: Cost,
    /// Bytes of whole objects bulk-loaded into the cache.
    pub load: Cost,
}

impl CostBreakdown {
    /// Total network traffic.
    pub fn total(&self) -> Cost {
        self.query_ship + self.update_ship + self.load
    }
}

/// The running account of a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Byte costs by mechanism.
    pub breakdown: CostBreakdown,
    /// Queries shipped to the server.
    pub shipped_queries: u64,
    /// Queries answered at the cache.
    pub local_answers: u64,
    /// Update ranges shipped (one per object per shipping decision).
    pub update_ships: u64,
    /// Objects loaded.
    pub loads: u64,
    /// Objects evicted.
    pub evictions: u64,
}

impl CostLedger {
    /// Total charged bytes.
    pub fn total(&self) -> Cost {
        self.breakdown.total()
    }

    /// Fraction of queries answered locally.
    pub fn hit_rate(&self) -> f64 {
        let n = self.shipped_queries + self.local_answers;
        if n == 0 {
            0.0
        } else {
            self.local_answers as f64 / n as f64
        }
    }

    /// Folds another account into this one (e.g. per-shard totals).
    pub fn absorb(&mut self, other: &CostLedger) {
        self.breakdown.query_ship += other.breakdown.query_ship;
        self.breakdown.update_ship += other.breakdown.update_ship;
        self.breakdown.load += other.breakdown.load;
        self.shipped_queries += other.shipped_queries;
        self.local_answers += other.local_answers;
        self.update_ships += other.update_ships;
        self.loads += other.loads;
        self.evictions += other.evictions;
    }
}

impl serde_json::ToJson for Cost {
    fn to_json(&self) -> serde_json::Value {
        self.0.to_json()
    }
}

impl serde_json::ToJson for CostBreakdown {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("query_ship".into(), self.query_ship.to_json()),
            ("update_ship".into(), self.update_ship.to_json()),
            ("load".into(), self.load.to_json()),
        ])
    }
}

impl serde_json::ToJson for CostLedger {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("breakdown".into(), self.breakdown.to_json()),
            ("shipped_queries".into(), self.shipped_queries.to_json()),
            ("local_answers".into(), self.local_answers.to_json()),
            ("update_ships".into(), self.update_ships.to_json()),
            ("loads".into(), self.loads.to_json()),
            ("evictions".into(), self.evictions.to_json()),
        ])
    }
}

/// Looks up a required member of a JSON object — the shared helper for
/// this crate's hand-rolled `FromJson` impls.
pub(crate) fn json_field<'v>(
    v: &'v serde_json::Value,
    name: &str,
) -> Result<&'v serde_json::Value, serde_json::Error> {
    v.get(name)
        .ok_or_else(|| serde_json::Error::msg(format!("missing field `{name}`")))
}

use json_field as field;

impl serde_json::FromJson for Cost {
    fn from_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        Ok(Cost(u64::from_json(v)?))
    }
}

impl serde_json::FromJson for CostBreakdown {
    fn from_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        Ok(CostBreakdown {
            query_ship: Cost::from_json(field(v, "query_ship")?)?,
            update_ship: Cost::from_json(field(v, "update_ship")?)?,
            load: Cost::from_json(field(v, "load")?)?,
        })
    }
}

impl serde_json::FromJson for CostLedger {
    fn from_json(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        Ok(CostLedger {
            breakdown: CostBreakdown::from_json(field(v, "breakdown")?)?,
            shipped_queries: u64::from_json(field(v, "shipped_queries")?)?,
            local_answers: u64::from_json(field(v, "local_answers")?)?,
            update_ships: u64::from_json(field(v, "update_ships")?)?,
            loads: u64::from_json(field(v, "loads")?)?,
            evictions: u64::from_json(field(v, "evictions")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_scales() {
        assert_eq!(Cost(5).to_string(), "5 B");
        assert_eq!(Cost(25_000).to_string(), "0.03 MB");
        assert_eq!(Cost(2_500_000_000).to_string(), "2.50 GB");
    }

    #[test]
    fn arithmetic() {
        let a = Cost(10) + Cost(5);
        assert_eq!(a, Cost(15));
        let mut b = Cost(1);
        b += Cost(2);
        assert_eq!(b.bytes(), 3);
        let s: Cost = [Cost(1), Cost(2), Cost(3)].into_iter().sum();
        assert_eq!(s, Cost(6));
        assert_eq!(Cost(5).saturating_sub(Cost(9)), Cost::ZERO);
    }

    #[test]
    fn breakdown_totals() {
        let b = CostBreakdown {
            query_ship: Cost(1),
            update_ship: Cost(2),
            load: Cost(3),
        };
        assert_eq!(b.total(), Cost(6));
    }

    #[test]
    fn ledger_hit_rate() {
        let mut l = CostLedger::default();
        assert_eq!(l.hit_rate(), 0.0);
        l.shipped_queries = 3;
        l.local_answers = 1;
        assert!((l.hit_rate() - 0.25).abs() < 1e-12);
    }
}
