//! The `LoadManager`: randomized bypass admission feeding a lazy
//! Greedy-Dual-Size cache (paper §4, Fig. 6).
//!
//! Invoked (in the background) for every query that touched at least one
//! uncached object — such queries are always shipped first. The query's
//! cost ν(q) is attributed over its uncached objects *in random order*:
//! an object whose remaining attribution covers its load cost becomes a
//! load candidate outright; the last, partially-covered object becomes one
//! with probability `c / l(o)` (so in expectation an object is loaded
//! exactly once its attributed shipping cost has paid for the load — the
//! bypass-caching rule of \[24\], with no per-object counters).
//!
//! Candidates go through the *lazy* GDS batch (`delta_policy::lazy`), so
//! an object is never physically loaded just to be evicted by a later
//! candidate of the same query.

use crate::context::SimContext;
use crate::update_manager::UpdateManager;
use delta_policy::{lazy, GreedyDualSize, RandomizedAdmission, ReplacementPolicy};
use delta_storage::{CacheError, ObjectId};
use delta_workload::QueryEvent;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// When does a missing object become a load candidate?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionMode {
    /// The paper's randomized bypass rule: an object is admitted once the
    /// query cost attributed to it covers its load cost (in expectation).
    #[default]
    Bypass,
    /// Web-proxy default the paper rejects ("an object is loaded as soon
    /// as it is requested... such a loading policy can cause too much
    /// network traffic", §4). Kept for ablation benchmarks.
    FirstTouch,
    /// The deterministic bypass rule of \[24\] that the randomized gate
    /// replaces: keep an explicit per-object counter of attributed
    /// shipping cost; admit once the counter reaches the load cost. Same
    /// expected behaviour as [`AdmissionMode::Bypass`], at the price of
    /// state per object per site — the meta-data burden §4 cites as the
    /// motivation for randomizing. Kept for ablation benchmarks.
    Counter,
}

/// Statistics for diagnostics and benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadManagerStats {
    /// Queries considered (had at least one uncached object).
    pub considered: u64,
    /// Load candidates emitted by the admission gate.
    pub candidates: u64,
    /// Physical loads performed.
    pub loads: u64,
    /// Physical evictions performed.
    pub evictions: u64,
    /// Loads skipped because space could not be found.
    pub load_failures: u64,
}

/// Object-loading decision engine, generic over the replacement policy
/// `A_obj` (Greedy-Dual-Size in the paper's prototype; LRU/LFU available
/// for the ablation benchmarks).
#[derive(Debug)]
pub struct LoadManager<P: ReplacementPolicy = GreedyDualSize> {
    gds: P,
    gate: RandomizedAdmission,
    rng: StdRng,
    stats: LoadManagerStats,
    mode: AdmissionMode,
    /// Attributed-cost counters, used only in [`AdmissionMode::Counter`].
    /// Object ids are dense catalog indices, so this is a slab (0 = no
    /// attribution yet) rather than a hash map.
    counters: Vec<u64>,
    /// Reusable scratch for [`LoadManager::consider`]'s missing-object
    /// list — no per-query heap allocation on the hot path.
    missing_scratch: Vec<ObjectId>,
    /// Reusable scratch for the admission candidates of one query.
    candidates_scratch: Vec<(ObjectId, u64, u64)>,
}

impl LoadManager<GreedyDualSize> {
    /// Creates a manager for a cache of `capacity` bytes with a
    /// deterministic seed, using the paper's Greedy-Dual-Size as `A_obj`.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Self::with_policy(GreedyDualSize::new(capacity), seed)
    }
}

impl<P: ReplacementPolicy> LoadManager<P> {
    /// Creates a manager around an arbitrary replacement policy.
    pub fn with_policy(policy: P, seed: u64) -> Self {
        Self::with_policy_and_mode(policy, seed, AdmissionMode::Bypass)
    }

    /// Creates a manager with an explicit admission mode (the
    /// `FirstTouch` variant exists for ablation studies).
    pub fn with_policy_and_mode(policy: P, seed: u64, mode: AdmissionMode) -> Self {
        Self {
            gds: policy,
            gate: RandomizedAdmission::new(seed),
            rng: StdRng::seed_from_u64(seed ^ 0x10AD_10AD),
            stats: LoadManagerStats::default(),
            mode,
            counters: Vec::new(),
            missing_scratch: Vec::new(),
            candidates_scratch: Vec::new(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LoadManagerStats {
        self.stats
    }

    /// Records cache hits for the resident objects of a locally-answerable
    /// query, refreshing their GDS priority (usage = frequency + recency).
    ///
    /// The caller guarantees every object of `q` is resident (this runs
    /// on the all-cached path), so no per-object residency re-check is
    /// performed here.
    pub fn touch_residents(&mut self, q: &QueryEvent, ctx: &SimContext<'_>) {
        for &o in &q.objects {
            let size = ctx.repo.current_size(o);
            self.gds.request(o, size, size);
        }
    }

    /// The attribution counter slot for `o` ([`AdmissionMode::Counter`]).
    fn counter_mut(&mut self, o: ObjectId) -> &mut u64 {
        let i = o.index();
        if i >= self.counters.len() {
            self.counters.resize(i + 1, 0);
        }
        &mut self.counters[i]
    }

    /// Fig. 6: attribute the shipped query's cost across its uncached
    /// objects, gate admissions, run the lazy GDS batch and execute the
    /// net plan. `um` is kept in sync on evictions.
    pub fn consider(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>, um: &mut UpdateManager) {
        // Reuse the scratch buffers across queries (allocation-free once
        // warmed); they are returned to `self` before any early exit.
        let mut missing = std::mem::take(&mut self.missing_scratch);
        missing.clear();
        missing.extend(
            q.objects
                .iter()
                .copied()
                .filter(|&o| !ctx.cache.contains(o)),
        );
        if missing.is_empty() {
            self.missing_scratch = missing;
            return;
        }
        self.stats.considered += 1;
        missing.shuffle(&mut self.rng);

        let mut c = q.result_bytes;
        let mut candidates = std::mem::take(&mut self.candidates_scratch);
        candidates.clear();
        for &o in &missing {
            let l = ctx.repo.current_size(o);
            match self.mode {
                AdmissionMode::FirstTouch => {
                    // Ablation baseline: every touched object is a candidate.
                    candidates.push((o, l, l));
                    continue;
                }
                AdmissionMode::Counter => {
                    // Deterministic \[24\]: accumulate attribution until
                    // it covers the load cost, then admit and reset.
                    if c == 0 {
                        break;
                    }
                    let take = c.min(l);
                    c -= take;
                    let acc = self.counter_mut(o);
                    *acc += take;
                    if *acc >= l {
                        *acc = 0;
                        candidates.push((o, l, l));
                    }
                    continue;
                }
                AdmissionMode::Bypass => {}
            }
            if c == 0 {
                break;
            }
            if c >= l {
                candidates.push((o, l, l));
                c -= l;
            } else {
                if self.gate.admit(c, l) {
                    candidates.push((o, l, l));
                }
                c = 0;
            }
        }
        self.missing_scratch = missing;
        if candidates.is_empty() {
            self.candidates_scratch = candidates;
            return;
        }
        self.stats.candidates += candidates.len() as u64;

        // Lazy batch: only the net effect is physical.
        let plan = lazy::plan_batch(&mut self.gds, &candidates);
        self.candidates_scratch = candidates;
        for e in plan.evict {
            if ctx.cache.contains(e) {
                ctx.evict_object(e);
                self.stats.evictions += 1;
                um.on_evict(e);
            }
        }
        for o in plan.load {
            self.execute_load(o, ctx, um);
        }
    }

    /// Physically loads `o`, shedding GDS victims if the physical store is
    /// tighter than the logical one (resident objects grow as updates are
    /// applied).
    fn execute_load(&mut self, o: ObjectId, ctx: &mut SimContext<'_>, um: &mut UpdateManager) {
        loop {
            match ctx.load_object(o) {
                Ok(_) => {
                    self.stats.loads += 1;
                    // Loaded fresh: both server and cache mark it fresh
                    // (Fig. 6 lines 37–38) — load_object already set the
                    // current version.
                    return;
                }
                Err(CacheError::NoSpace { .. }) => {
                    // Shed the logical victim; if none is left (or only o
                    // itself), give up on this load.
                    match self.gds.victim() {
                        Some(v) if v != o => {
                            self.gds.forget(v);
                            if ctx.cache.contains(v) {
                                ctx.evict_object(v);
                                self.stats.evictions += 1;
                                um.on_evict(v);
                            }
                        }
                        _ => {
                            self.gds.forget(o);
                            self.stats.load_failures += 1;
                            return;
                        }
                    }
                }
                Err(_) => {
                    // TooLarge or AlreadyResident: drop it from the logical
                    // cache if the physical store disagrees.
                    if !ctx.cache.contains(o) {
                        self.gds.forget(o);
                        self.stats.load_failures += 1;
                    }
                    return;
                }
            }
        }
    }

    /// Evicts until the physical store is back under capacity (update
    /// growth can push it over). Keeps the UpdateManager in sync.
    pub fn rebalance(&mut self, ctx: &mut SimContext<'_>, um: &mut UpdateManager) {
        while ctx.over_capacity() {
            let Some(v) = self.gds.victim() else { break };
            self.gds.forget(v);
            if ctx.cache.contains(v) {
                ctx.evict_object(v);
                self.stats.evictions += 1;
                um.on_evict(v);
            }
        }
        // If the logical cache had nothing left but physical is still over
        // (shouldn't happen — every resident is tracked), fall back to
        // evicting arbitrary residents to preserve the capacity invariant.
        while ctx.over_capacity() {
            let Some((v, _)) = ctx.cache.iter().next() else {
                break;
            };
            ctx.evict_object(v);
            self.stats.evictions += 1;
            um.on_evict(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostLedger;
    use delta_storage::{CacheStore, ObjectCatalog, Repository};
    use delta_workload::QueryKind;

    fn q(seq: u64, objects: Vec<u32>, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Cone,
        }
    }

    fn world(sizes: &[u64], cap: u64) -> (Repository, CacheStore, CostLedger) {
        (
            Repository::new(ObjectCatalog::from_sizes(sizes)),
            CacheStore::new(cap),
            CostLedger::default(),
        )
    }

    #[test]
    fn expensive_query_loads_object_immediately() {
        let (mut repo, mut cache, mut ledger) = world(&[100, 100], 500);
        let mut lm = LoadManager::new(500, 7);
        let mut um = UpdateManager::new();
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 1);
        // ν(q) = 300 ≥ l(o) = 100 for both objects: both become candidates.
        lm.consider(&q(1, vec![0, 1], 300), &mut ctx, &mut um);
        assert!(cache.contains(ObjectId(0)) && cache.contains(ObjectId(1)));
        assert_eq!(ledger.breakdown.load.bytes(), 200);
        assert_eq!(lm.stats().loads, 2);
    }

    #[test]
    fn cheap_queries_rarely_load() {
        let (mut repo, mut cache, mut ledger) = world(&[1_000_000], 2_000_000);
        let mut lm = LoadManager::new(2_000_000, 9);
        let mut um = UpdateManager::new();
        // 100 queries of 1000 bytes against a 1 MB object: expected total
        // attribution 100k = 10% of load cost, so loads are rare.
        for seq in 0..100 {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            lm.consider(&q(seq, vec![0], 1000), &mut ctx, &mut um);
            if cache.contains(ObjectId(0)) {
                break;
            }
        }
        assert!(
            lm.stats().loads <= 1,
            "object should load at most once, and likely not at all this early"
        );
    }

    #[test]
    fn loaded_object_is_fresh() {
        let (mut repo, mut cache, mut ledger) = world(&[100], 1000);
        repo.apply_update(ObjectId(0), 20, 1);
        let mut lm = LoadManager::new(1000, 3);
        let mut um = UpdateManager::new();
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 2);
        lm.consider(&q(2, vec![0], 500), &mut ctx, &mut um);
        let r = cache.get(ObjectId(0)).unwrap();
        assert_eq!(
            r.applied_version, 1,
            "updates during/before load are included"
        );
        assert!(!r.stale);
        assert_eq!(r.bytes, 120, "load ships base + updates");
        assert_eq!(ledger.breakdown.load.bytes(), 120);
    }

    #[test]
    fn eviction_keeps_update_manager_in_sync() {
        let (mut repo, mut cache, mut ledger) = world(&[100, 100], 100);
        let mut lm = LoadManager::new(100, 5);
        let mut um = UpdateManager::new();
        // Load o0.
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 1);
            lm.consider(&q(1, vec![0], 200), &mut ctx, &mut um);
        }
        assert!(cache.contains(ObjectId(0)));
        // Register an outstanding update node for o0 via a shipped query.
        repo.apply_update(ObjectId(0), 1000, 2);
        cache.invalidate(ObjectId(0));
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 3);
            um.handle_query(&q(3, vec![0], 10), &mut ctx);
        }
        assert_eq!(um.live_update_nodes(), 1);
        // Now a hot query on o1 displaces o0 (capacity 100 fits only one).
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 4);
            lm.consider(&q(4, vec![1], 400), &mut ctx, &mut um);
        }
        assert!(cache.contains(ObjectId(1)));
        assert!(!cache.contains(ObjectId(0)));
        assert_eq!(
            um.live_update_nodes(),
            0,
            "evicted object's update nodes dropped"
        );
    }

    #[test]
    fn rebalance_sheds_growth() {
        let (mut repo, mut cache, mut ledger) = world(&[60, 60], 130);
        let mut lm = LoadManager::new(130, 5);
        let mut um = UpdateManager::new();
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 1);
            lm.consider(&q(1, vec![0, 1], 500), &mut ctx, &mut um);
        }
        assert_eq!(cache.used(), 120);
        // Updates grow o0 by 30 bytes: 150 > 130.
        repo.apply_update(ObjectId(0), 30, 2);
        cache.invalidate(ObjectId(0));
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 3);
            ctx.ship_updates_to(ObjectId(0), 1);
            assert!(ctx.over_capacity());
            lm.rebalance(&mut ctx, &mut um);
            assert!(!ctx.over_capacity());
        }
        assert_eq!(cache.len(), 1, "one object had to go");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let (mut repo, mut cache, mut ledger) = world(&[100, 200, 300, 50], 400);
            let mut lm = LoadManager::new(400, 11);
            let mut um = UpdateManager::new();
            for seq in 0..50 {
                let objs = vec![(seq % 4) as u32, ((seq + 1) % 4) as u32];
                let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
                lm.consider(&q(seq, objs, 70 + seq), &mut ctx, &mut um);
            }
            let mut res: Vec<u32> = cache.iter().map(|(o, _)| o.0).collect();
            res.sort_unstable();
            (ledger.total().bytes(), res)
        };
        assert_eq!(run(), run());
    }
}
#[cfg(test)]
mod counter_tests {
    use super::*;
    use crate::cost::CostLedger;
    use delta_storage::{CacheStore, ObjectCatalog, Repository};
    use delta_workload::QueryKind;

    fn q(seq: u64, objects: Vec<u32>, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Cone,
        }
    }

    #[test]
    fn counter_mode_admits_exactly_at_the_load_cost() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[1_000]));
        let mut cache = CacheStore::new(10_000);
        let mut ledger = CostLedger::default();
        let mut lm = LoadManager::with_policy_and_mode(
            GreedyDualSize::new(10_000),
            1,
            AdmissionMode::Counter,
        );
        let mut um = UpdateManager::new();
        // Nine queries of 100 bytes: counter reaches 900 < 1000 — no load.
        for seq in 0..9 {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            lm.consider(&q(seq, vec![0], 100), &mut ctx, &mut um);
        }
        assert!(!cache.contains(ObjectId(0)), "899 < 1000: not yet");
        assert_eq!(lm.stats().loads, 0);
        // The tenth pushes it to 1000: deterministic admission.
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 9);
        lm.consider(&q(9, vec![0], 100), &mut ctx, &mut um);
        assert!(cache.contains(ObjectId(0)));
        assert_eq!(lm.stats().loads, 1);
    }

    #[test]
    fn counter_and_randomized_agree_in_expectation() {
        // Drive both gates with the same stream of cheap queries against
        // one object over many seeds: the randomized rule's expected
        // number of queries before load must match the deterministic
        // counter's (which is exactly load_cost / query_cost = 20).
        let deterministic = {
            let mut repo = Repository::new(ObjectCatalog::from_sizes(&[2_000]));
            let mut cache = CacheStore::new(10_000);
            let mut ledger = CostLedger::default();
            let mut lm = LoadManager::with_policy_and_mode(
                GreedyDualSize::new(10_000),
                1,
                AdmissionMode::Counter,
            );
            let mut um = UpdateManager::new();
            let mut n = 0u64;
            for seq in 0..1_000 {
                let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
                lm.consider(&q(seq, vec![0], 100), &mut ctx, &mut um);
                n += 1;
                if cache.contains(ObjectId(0)) {
                    break;
                }
            }
            n
        };
        assert_eq!(deterministic, 20);
        let mut total = 0u64;
        let seeds = 200u64;
        for seed in 0..seeds {
            let mut repo = Repository::new(ObjectCatalog::from_sizes(&[2_000]));
            let mut cache = CacheStore::new(10_000);
            let mut ledger = CostLedger::default();
            let mut lm = LoadManager::with_policy_and_mode(
                GreedyDualSize::new(10_000),
                seed,
                AdmissionMode::Bypass,
            );
            let mut um = UpdateManager::new();
            for seq in 0..10_000 {
                let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
                lm.consider(&q(seq, vec![0], 100), &mut ctx, &mut um);
                if cache.contains(ObjectId(0)) {
                    total += seq + 1;
                    break;
                }
            }
        }
        let mean = total as f64 / seeds as f64;
        assert!(
            (mean - deterministic as f64).abs() < deterministic as f64 * 0.25,
            "randomized mean {mean} should approximate the deterministic {deterministic}"
        );
    }

    #[test]
    fn counter_state_is_per_object() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[500, 500]));
        let mut cache = CacheStore::new(10_000);
        let mut ledger = CostLedger::default();
        let mut lm = LoadManager::with_policy_and_mode(
            GreedyDualSize::new(10_000),
            1,
            AdmissionMode::Counter,
        );
        let mut um = UpdateManager::new();
        // Alternate cheap queries between the two objects; each needs its
        // own counter to fill before loading.
        for seq in 0..8 {
            let o = (seq % 2) as u32;
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            lm.consider(&q(seq, vec![o], 100), &mut ctx, &mut um);
        }
        assert!(!cache.contains(ObjectId(0)) && !cache.contains(ObjectId(1)));
        for seq in 8..12 {
            let o = (seq % 2) as u32;
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            lm.consider(&q(seq, vec![o], 100), &mut ctx, &mut um);
        }
        assert!(cache.contains(ObjectId(0)) && cache.contains(ObjectId(1)));
    }
}
