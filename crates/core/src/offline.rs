//! Offline hindsight analysis of the decoupling problem (Theorem 1).
//!
//! §3.1: "Let the entire incoming sequence of queries and updates in the
//! internal interaction graph G be known in advance. Let VC be the
//! minimum-weight vertex cover for G. The optimal choice is to ship the
//! queries and the updates whose corresponding nodes are in VC."
//!
//! [`hindsight_decoupling`] applies the theorem over a whole trace for a
//! *fixed static* cached set: queries touching uncached objects are
//! forced ships; queries fully inside the set and the updates they
//! interact with form the bipartite interaction graph, whose MWVC
//! (solved exactly via max-flow) gives the cheapest ship-query /
//! ship-update mix any algorithm could have achieved on that set. The
//! result is a sharper offline baseline than [`crate::yardstick::SOptimal`]
//! (which always ships every update for cached objects) and measures how
//! much of SOptimal's cost Theorem 1 could still shave.
//!
//! **Tolerance caveat.** Nodes for updates to the same object arriving
//! between the same pair of queries are merged (identical cover
//! neighbourhoods — a standard exact reduction). With *non-monotone*
//! staleness horizons (a later query with a large `t(q)` can excuse an
//! update an earlier query needed), a merged node may pick up an edge one
//! of its members did not strictly need; the computed cover is then a
//! (tight) upper bound on the true hindsight optimum. With uniform
//! tolerances — the common case — the reduction is exact.

use crate::cost::Cost;
use delta_flow::cover::{CoverGraph, QueryNode, UpdateNode};
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::{Event, Trace};
use std::collections::HashSet;

/// The hindsight cost breakdown for a static cached set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HindsightReport {
    /// Bytes to load the set at the start (base sizes).
    pub load: Cost,
    /// Forced query ships (queries touching uncached objects).
    pub forced_query: Cost,
    /// Query ships chosen by the minimum-weight vertex cover.
    pub cover_query: Cost,
    /// Update ships chosen by the cover.
    pub cover_update: Cost,
    /// Queries fully answerable at the cache.
    pub internal_queries: u64,
    /// Queries forced to ship.
    pub forced_queries: u64,
    /// Interaction-graph size actually solved: (update nodes, query
    /// nodes, edges) after the merge reduction.
    pub graph_size: (usize, usize, usize),
}

impl HindsightReport {
    /// Total hindsight network traffic.
    pub fn total(&self) -> Cost {
        self.load + self.forced_query + self.cover_query + self.cover_update
    }
}

/// Computes the Theorem-1 hindsight optimum for holding `cached`
/// statically over the whole `trace`.
pub fn hindsight_decoupling(
    catalog: &ObjectCatalog,
    trace: &Trace,
    cached: &HashSet<ObjectId>,
) -> HindsightReport {
    let n = catalog.len();
    let mut graph = CoverGraph::new();

    // Per cached object: updates not yet materialized as a cover node,
    // as (seq, bytes), plus the materialized nodes with their newest seq.
    let mut pending: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    let mut nodes: Vec<Vec<(u64, UpdateNode)>> = vec![Vec::new(); n];

    let mut load = Cost::ZERO;
    for &o in cached {
        load += Cost(catalog.size(o));
    }

    let mut forced_query = Cost::ZERO;
    let mut forced_queries = 0u64;
    let mut internal_queries = 0u64;
    let mut query_nodes: Vec<QueryNode> = Vec::new();
    let mut edges = 0usize;

    for event in trace.iter() {
        match event {
            Event::Update(u) => {
                if cached.contains(&u.object) {
                    pending[u.object.index()].push((u.seq, u.bytes));
                }
            }
            Event::Query(q) => {
                let internal = q.objects.iter().all(|o| cached.contains(o));
                if !internal {
                    forced_query += Cost(q.result_bytes);
                    forced_queries += 1;
                    continue;
                }
                internal_queries += 1;
                // "All updates received except those within the last t(q)
                // ticks": the horizon below which updates interact.
                let horizon = q.seq.saturating_sub(q.tolerance);
                let qn = graph.add_query(q.result_bytes);
                query_nodes.push(qn);
                for &o in &q.objects {
                    let i = o.index();
                    // Materialize the pending updates at or below the
                    // horizon as one merged node (identical
                    // neighbourhoods from here on).
                    let due: u64 = pending[i]
                        .iter()
                        .filter(|&&(seq, _)| seq <= horizon)
                        .map(|&(_, b)| b)
                        .sum();
                    if due > 0 {
                        let newest = pending[i]
                            .iter()
                            .filter(|&&(seq, _)| seq <= horizon)
                            .map(|&(seq, _)| seq)
                            .max()
                            .expect("due > 0 implies a member");
                        pending[i].retain(|&(seq, _)| seq > horizon);
                        let un = graph.add_update(due);
                        nodes[i].push((newest, un));
                    }
                    for &(newest, un) in &nodes[i] {
                        if newest <= horizon {
                            graph.add_interaction(un, qn);
                            edges += 1;
                        }
                    }
                }
            }
        }
    }

    let update_nodes: usize = nodes.iter().map(Vec::len).sum();
    let cover = graph.solve();
    let mut cover_query = Cost::ZERO;
    let mut cover_update = Cost::ZERO;
    for &qn in &cover.queries {
        cover_query += Cost(graph.query_weight(qn));
    }
    for &un in &cover.updates {
        cover_update += Cost(graph.update_weight(un));
    }

    HindsightReport {
        load,
        forced_query,
        cover_query,
        cover_update,
        internal_queries,
        forced_queries,
        graph_size: (update_nodes, query_nodes.len(), edges),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOptions};
    use crate::yardstick::SOptimal;
    use delta_workload::{QueryEvent, QueryKind, SyntheticSurvey, UpdateEvent, WorkloadConfig};

    fn q(seq: u64, objects: Vec<u32>, bytes: u64, tolerance: u64) -> Event {
        Event::Query(QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance,
            kind: QueryKind::Cone,
        })
    }

    fn u(seq: u64, object: u32, bytes: u64) -> Event {
        Event::Update(UpdateEvent {
            seq,
            object: ObjectId(object),
            bytes,
        })
    }

    fn trace_of(events: Vec<Event>) -> Trace {
        Trace { events }
    }

    #[test]
    fn paper_example_cached_subgraph() {
        // The internal subgraph of Fig. 2: u1 (1 GB) and u6 (2 GB)
        // interact with q7 (6 GB); covering the updates (3) beats
        // covering the query (6).
        let catalog = ObjectCatalog::from_sizes(&[10, 20]);
        let cached: HashSet<ObjectId> = [ObjectId(0), ObjectId(1)].into();
        let t = trace_of(vec![u(1, 1, 1), u(2, 1, 2), q(3, vec![1], 6, 0)]);
        let r = hindsight_decoupling(&catalog, &t, &cached);
        assert_eq!(r.cover_update, Cost(3));
        assert_eq!(r.cover_query, Cost::ZERO);
        assert_eq!(r.internal_queries, 1);
        assert_eq!(r.total(), Cost(30 + 3));
    }

    #[test]
    fn cheap_query_is_shipped_instead() {
        let catalog = ObjectCatalog::from_sizes(&[10]);
        let cached: HashSet<ObjectId> = [ObjectId(0)].into();
        let t = trace_of(vec![u(1, 0, 50), q(2, vec![0], 4, 0)]);
        let r = hindsight_decoupling(&catalog, &t, &cached);
        assert_eq!(
            r.cover_query,
            Cost(4),
            "shipping the 4-byte query beats 50 bytes of updates"
        );
        assert_eq!(r.cover_update, Cost::ZERO);
    }

    #[test]
    fn one_update_ship_serves_many_queries() {
        let catalog = ObjectCatalog::from_sizes(&[10]);
        let cached: HashSet<ObjectId> = [ObjectId(0)].into();
        let t = trace_of(vec![
            u(1, 0, 5),
            q(2, vec![0], 4, 0),
            q(3, vec![0], 4, 0),
            q(4, vec![0], 4, 0),
        ]);
        let r = hindsight_decoupling(&catalog, &t, &cached);
        // Cover picks the single 5-byte update over 12 bytes of queries.
        assert_eq!(r.cover_update, Cost(5));
        assert_eq!(r.cover_query, Cost::ZERO);
    }

    #[test]
    fn tolerance_excuses_recent_updates() {
        let catalog = ObjectCatalog::from_sizes(&[10]);
        let cached: HashSet<ObjectId> = [ObjectId(0)].into();
        // The update at seq 9 is within the query's tolerance of 5 at
        // seq 10 (horizon 5): no interaction at all.
        let t = trace_of(vec![u(9, 0, 50), q(10, vec![0], 4, 5)]);
        let r = hindsight_decoupling(&catalog, &t, &cached);
        assert_eq!(r.cover_query + r.cover_update, Cost::ZERO);
        assert_eq!(r.graph_size.2, 0, "no edges");
    }

    #[test]
    fn uncached_objects_force_query_shipping() {
        let catalog = ObjectCatalog::from_sizes(&[10, 20]);
        let cached: HashSet<ObjectId> = [ObjectId(0)].into();
        let t = trace_of(vec![q(1, vec![0, 1], 7, 0)]);
        let r = hindsight_decoupling(&catalog, &t, &cached);
        assert_eq!(r.forced_query, Cost(7));
        assert_eq!(r.forced_queries, 1);
        assert_eq!(r.internal_queries, 0);
    }

    #[test]
    fn empty_set_equals_nocache() {
        let catalog = ObjectCatalog::from_sizes(&[10, 20]);
        let cached = HashSet::new();
        let t = trace_of(vec![q(1, vec![0], 7, 0), u(2, 1, 3), q(3, vec![1], 9, 0)]);
        let r = hindsight_decoupling(&catalog, &t, &cached);
        assert_eq!(r.total(), Cost(16));
    }

    #[test]
    fn hindsight_never_exceeds_soptimal_on_its_own_set() {
        // SOptimal's policy (ship every update for cached objects) is one
        // feasible cover, so the hindsight optimum on the same static set
        // can only be cheaper or equal.
        let mut cfg = WorkloadConfig::small();
        cfg.n_queries = 1500;
        cfg.n_updates = 1500;
        let s = SyntheticSurvey::generate(&cfg);
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 500);
        let mut sopt = SOptimal::plan(&s.catalog, &s.trace, opts.cache_bytes);
        let chosen = sopt.chosen().clone();
        let sim = simulate(&mut sopt, &s.catalog, &s.trace, opts);
        let hind = hindsight_decoupling(&s.catalog, &s.trace, &chosen);
        assert!(
            hind.total().bytes() <= sim.total().bytes(),
            "hindsight {} must be <= SOptimal {}",
            hind.total(),
            sim.total()
        );
    }

    #[test]
    fn merged_nodes_match_brute_force_on_small_instances() {
        use delta_flow::cover::brute_force_cover_weight;
        // Construct the same interaction graph manually and compare the
        // solver's cover weight against exhaustive enumeration.
        let catalog = ObjectCatalog::from_sizes(&[10, 10]);
        let cached: HashSet<ObjectId> = [ObjectId(0), ObjectId(1)].into();
        let t = trace_of(vec![
            u(1, 0, 3),
            u(2, 1, 5),
            q(3, vec![0], 2, 0),
            q(4, vec![0, 1], 9, 0),
            u(5, 0, 1),
            q(6, vec![0, 1], 4, 0),
        ]);
        let r = hindsight_decoupling(&catalog, &t, &cached);

        // Brute force over the unmerged graph: updates u1(3), u2(5),
        // u5(1); queries q3(2), q4(9), q6(4); edges per interaction.
        let updates = vec![3u64, 5, 1];
        let queries = vec![2u64, 9, 4];
        let edges = vec![(0, 0), (0, 1), (1, 1), (0, 2), (1, 2), (2, 2)];
        let best = brute_force_cover_weight(&updates, &queries, &edges);
        assert_eq!(
            (r.cover_query + r.cover_update).bytes(),
            best,
            "solver+merge must equal exhaustive optimum"
        );
    }
}
