//! The `UpdateManager`: online min-weight vertex cover over the live
//! interaction graph (paper §4, Fig. 4 and Fig. 5).
//!
//! For a query whose objects are all cached, the manager
//!
//! 1. adds a query vertex weighted ν(q) and update vertices (weighted by
//!    their shipping cost) for every outstanding update the query's
//!    staleness tolerance requires, with the corresponding edges;
//! 2. re-solves the minimum-weight vertex cover *incrementally* (the flow
//!    from the previous solve is reused);
//! 3. if the query is in the cover, ships it; otherwise ships exactly the
//!    updates it interacts with and answers it at the cache.
//!
//! The *remainder subgraph* rule (§4) is applied after every decision:
//! shipped update nodes and locally-answered query nodes leave the graph,
//! shipped query nodes are retained (their weight keeps justifying future
//! update shipping), and isolated vertices are pruned. Object eviction
//! removes the object's update vertices wholesale.
//!
//! ## Segment vertices
//!
//! A rapidly-growing repository can accumulate thousands of outstanding
//! updates per object; materializing one vertex per update would make the
//! graph grow without bound. Two outstanding updates of the same object
//! are *indistinguishable* to the cover whenever every interacting query
//! needs either both or neither — true exactly within the runs delimited
//! by the distinct query horizons seen so far. The manager therefore
//! materializes one **segment vertex** per such run (weight = total bytes
//! of the run), splitting a segment only when a new query's staleness
//! horizon lands inside it. This is cost- and cover-equivalent to the
//! per-update graph (all-or-nothing shipping of identically-connected
//! vertices) while keeping the graph proportional to the number of
//! *distinct horizons*, not updates.

use crate::context::SimContext;
use delta_flow::{CoverGraph, QueryNode, UpdateNode};

/// Robustness cap (public so callers and docs can reference the bound):
/// live segment vertices per object. Continuous
/// staleness tolerances can mint a fresh horizon — and thus a segment
/// split — per query; on a coarse partition whose hot object is rarely
/// shipped this grows the working graph (and each incremental solve)
/// without bound. Beyond the cap, the *oldest* segments are coalesced
/// into one vertex: their union adjacency is conservative (a query may
/// become linked to updates slightly past its horizon, which can only
/// ship more than strictly needed — currency is never violated), and
/// future horizons re-split the merged run on demand.
pub const MAX_SEGMENTS_PER_OBJECT: usize = 128;

/// Robustness cap: retained (shipped) query vertices. The remainder rule
/// keeps them to justify future update shipping; the oldest carry the
/// least-relevant evidence and are dropped first (forgetting a shipped
/// query can only bias later covers toward shipping queries again —
/// never violates a currency contract).
pub const MAX_RETAINED_QUERIES: usize = 4096;
use crate::policy_trait::PolicyInstruments;
use delta_storage::ObjectId;
use delta_workload::QueryEvent;

/// Appends `(o, applied, required)` to `ranges` when the cached copy at
/// `applied` does not satisfy the query horizon — the same arithmetic as
/// `staleness::needed_updates`, minus the second cache probe (the caller
/// already holds the applied version).
#[inline]
fn push_needed_range(
    ranges: &mut Vec<(ObjectId, u64, u64)>,
    ctx: &SimContext<'_>,
    o: ObjectId,
    applied: u64,
    tolerance: u64,
) {
    let required = ctx.repo.version_at_horizon(o, ctx.now, tolerance);
    if applied < required {
        ranges.push((o, applied, required));
    }
}

/// Statistics the manager accumulates (reported in benchmarks).
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateManagerStats {
    /// Cover computations performed.
    pub solves: u64,
    /// Queries decided by shipping the query.
    pub queries_shipped: u64,
    /// Queries decided by shipping updates and answering locally.
    pub answered_locally: u64,
    /// Queries answered locally with no outstanding interacting updates.
    pub trivially_current: u64,
    /// Segment vertices shipped (and removed).
    pub update_nodes_shipped: u64,
    /// Segment splits caused by new staleness horizons.
    pub segment_splits: u64,
    /// Retained query vertices pruned after becoming isolated.
    pub queries_pruned: u64,
    /// Segment coalesces forced by [`MAX_SEGMENTS_PER_OBJECT`].
    pub segments_coalesced: u64,
    /// Retained queries dropped by [`MAX_RETAINED_QUERIES`].
    pub retained_dropped: u64,
}

/// One materialized run of outstanding updates `[start, end)` of an
/// object, represented by a single cover vertex.
#[derive(Clone, Debug)]
struct Segment {
    start: u64,
    end: u64,
    node: UpdateNode,
}

/// Online decision engine for queries hitting fully-resident object sets.
#[derive(Debug, Default)]
pub struct UpdateManager {
    graph: CoverGraph,
    /// Live segments per object, indexed by the dense object id (an
    /// empty Vec means no live segments): sorted, disjoint, contiguous
    /// from the cache's applied version. A slab, not a hash map — object
    /// ids are catalog indices.
    by_object: Vec<Vec<Segment>>,
    /// Live update-node count across all objects (kept so the hot path
    /// never has to sum the slab).
    live_nodes: usize,
    /// Live queries adjacent to each segment vertex (needed to re-wire on
    /// splits). A dense slab indexed by `UpdateNode.0` — node handles are
    /// monotonically assigned and never reused, so no hashing on the hot
    /// path; dead nodes leave an empty (recycled) slot behind.
    node_queries: Vec<Vec<QueryNode>>,
    /// Recycled adjacency Vecs from dead slab slots.
    adj_pool: Vec<Vec<QueryNode>>,
    /// Retained (shipped) query vertices.
    retained: Vec<QueryNode>,
    /// Reusable scratch for the per-query needed-update ranges — no
    /// per-event heap allocation on the hot path.
    ranges_scratch: Vec<(ObjectId, u64, u64)>,
    /// Observational telemetry handles (serving stack only; `None` in
    /// pure sim/bench runs — decisions are identical either way).
    instruments: Option<PolicyInstruments>,
    stats: UpdateManagerStats,
}

/// Recycled adjacency Vecs kept in the pool (beyond this, capacity is
/// returned to the allocator).
const MAX_POOLED_ADJ: usize = 256;

/// The slab slot for `node`, growing the slab on demand. Free-standing so
/// callers holding disjoint borrows of other `UpdateManager` fields can
/// still use it.
fn nq_slot(nq: &mut Vec<Vec<QueryNode>>, node: UpdateNode) -> &mut Vec<QueryNode> {
    if node.0 >= nq.len() {
        nq.resize_with(node.0 + 1, Vec::new);
    }
    &mut nq[node.0]
}

/// Empties `node`'s slab slot and returns its contents (an empty Vec if
/// the node never had adjacency recorded).
fn nq_take(nq: &mut [Vec<QueryNode>], node: UpdateNode) -> Vec<QueryNode> {
    match nq.get_mut(node.0) {
        Some(slot) => std::mem::take(slot),
        None => Vec::new(),
    }
}

/// Returns a drained adjacency Vec to the pool for reuse.
fn nq_recycle(pool: &mut Vec<Vec<QueryNode>>, mut v: Vec<QueryNode>) {
    if pool.len() < MAX_POOLED_ADJ {
        v.clear();
        pool.push(v);
    }
}

impl UpdateManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> UpdateManagerStats {
        self.stats
    }

    /// Attaches observational telemetry handles (`um.*` metrics). Timing
    /// only happens while attached; decisions never depend on it.
    pub fn attach_instruments(&mut self, instruments: PolicyInstruments) {
        self.instruments = Some(instruments);
    }

    /// Number of live segment vertices (for tests).
    pub fn live_update_nodes(&self) -> usize {
        self.live_nodes
    }

    /// Number of retained query vertices (for tests).
    pub fn retained_queries(&self) -> usize {
        self.retained.len()
    }

    /// The segment slot for `o`, growing the slab on demand.
    fn segs_mut(&mut self, o: ObjectId) -> &mut Vec<Segment> {
        let i = o.index();
        if i >= self.by_object.len() {
            self.by_object.resize_with(i + 1, Vec::new);
        }
        &mut self.by_object[i]
    }

    /// Decides and executes the ship-query vs ship-updates choice for a
    /// query whose objects are all resident (Fig. 4).
    ///
    /// # Panics
    /// Panics if some object in `B(q)` is not resident.
    pub fn handle_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) {
        // Collect the outstanding update ranges the query's tolerance
        // requires, per object, into the reusable scratch buffer.
        let mut ranges = std::mem::take(&mut self.ranges_scratch);
        ranges.clear();
        for &o in &q.objects {
            let applied = ctx
                .cache
                .applied_version(o)
                .expect("UpdateManager invoked with non-resident object");
            push_needed_range(&mut ranges, ctx, o, applied, q.tolerance);
        }
        self.decide(q, ranges, ctx);
    }

    /// [`UpdateManager::handle_query`] for callers that already probed
    /// residency: `applied` carries each object's applied version in
    /// `B(q)` order, so the cache is not consulted a second time.
    pub fn handle_query_resident(
        &mut self,
        q: &QueryEvent,
        applied: &[(ObjectId, u64)],
        ctx: &mut SimContext<'_>,
    ) {
        debug_assert_eq!(applied.len(), q.objects.len());
        let mut ranges = std::mem::take(&mut self.ranges_scratch);
        ranges.clear();
        for &(o, applied_version) in applied {
            push_needed_range(&mut ranges, ctx, o, applied_version, q.tolerance);
        }
        self.decide(q, ranges, ctx);
    }

    /// The decision core shared by the two entry points. Takes ownership
    /// of the scratch `ranges` buffer and returns it to `self` on every
    /// path.
    fn decide(
        &mut self,
        q: &QueryEvent,
        ranges: Vec<(ObjectId, u64, u64)>,
        ctx: &mut SimContext<'_>,
    ) {
        // Fig. 4 lines 12–13: nothing outstanding interacts with q.
        if ranges.is_empty() {
            self.ranges_scratch = ranges;
            self.stats.trivially_current += 1;
            ctx.answer_local(q);
            return;
        }

        // Materialize segment vertices for the needed ranges and wire up
        // the query vertex.
        let qn = self.graph.add_query(q.result_bytes);
        for &(o, from, to) in &ranges {
            self.materialize(o, from, to, ctx);
            let i = o.index();
            for s in 0..self.by_object[i].len() {
                let seg = &self.by_object[i][s];
                if seg.end <= to {
                    let node = seg.node;
                    self.graph.add_interaction(node, qn);
                    nq_slot(&mut self.node_queries, node).push(qn);
                }
            }
        }

        // Incremental cover solve (Fig. 5), asking only the one question
        // this decision needs: is qn in the cover? The ranges to ship on
        // a "no" are already in hand — no full cover materialization.
        let solve_start = self.instruments.as_ref().map(|_| std::time::Instant::now());
        let ship_query = self.graph.solve_query_membership(qn);
        self.stats.solves += 1;
        if let (Some(ins), Some(start)) = (self.instruments.as_ref(), solve_start) {
            ins.solve_ns.record(start.elapsed().as_nanos() as u64);
            ins.solves.inc();
            ins.graph_nodes
                .set((self.graph.live_updates() + self.graph.live_queries()) as u64);
            ins.graph_edges.set(self.graph.live_interactions() as u64);
        }

        if ship_query {
            // Ship the query; retain its vertex (remainder rule).
            ctx.ship_query(q);
            self.retained.push(qn);
            self.stats.queries_shipped += 1;
        } else {
            // Ship all updates interacting with q, per object, then answer
            // locally. Segments are all-or-nothing, and q's segments are
            // exactly the prefix up to its horizon.
            for &(o, _from, to) in &ranges {
                ctx.ship_updates_to(o, to);
                self.drop_prefix(o, to);
            }
            self.graph.remove_query(qn);
            ctx.answer_local(q);
            self.stats.answered_locally += 1;
            self.prune_isolated();
        }
        self.ranges_scratch = ranges;
        self.enforce_caps(q);
    }

    /// Applies the robustness caps (see the module constants): coalesces
    /// each object's oldest segments and drops the oldest retained query
    /// vertices once their counts exceed the bounds.
    fn enforce_caps(&mut self, q: &QueryEvent) {
        for &o in &q.objects {
            let Some(segs) = self.by_object.get_mut(o.index()) else {
                continue;
            };
            if segs.len() <= MAX_SEGMENTS_PER_OBJECT {
                continue;
            }
            // Coalesce the oldest half into one vertex.
            let k = segs.len() - MAX_SEGMENTS_PER_OBJECT / 2;
            let merged: Vec<Segment> = segs.drain(..k).collect();
            let start = merged.first().expect("k >= 1").start;
            let end = merged.last().expect("k >= 1").end;
            let mut weight = 0u64;
            let mut adjacency: Vec<QueryNode> = self.adj_pool.pop().unwrap_or_default();
            for seg in &merged {
                weight += self.graph.update_weight(seg.node);
                let adj = nq_take(&mut self.node_queries, seg.node);
                adjacency.extend_from_slice(&adj);
                nq_recycle(&mut self.adj_pool, adj);
                self.graph.remove_update(seg.node);
            }
            adjacency.sort_unstable_by_key(|qn| qn.0);
            adjacency.dedup();
            let node = self.graph.add_update(weight);
            for &adj_q in &adjacency {
                if self.graph.query_alive(adj_q) {
                    self.graph.add_interaction(node, adj_q);
                }
            }
            adjacency.retain(|&adj_q| self.graph.query_alive(adj_q));
            *nq_slot(&mut self.node_queries, node) = adjacency;
            segs.insert(0, Segment { start, end, node });
            self.live_nodes -= merged.len() - 1;
            self.stats.segments_coalesced += merged.len() as u64;
        }
        if self.retained.len() > MAX_RETAINED_QUERIES {
            let drop = self.retained.len() - MAX_RETAINED_QUERIES;
            for qn in self.retained.drain(..drop) {
                if self.graph.query_alive(qn) {
                    self.graph.remove_query(qn);
                }
                self.stats.retained_dropped += 1;
            }
            self.prune_isolated();
        }
    }

    /// Ensures segments exist covering `[from, to)` with a boundary at
    /// `to` (splitting if a segment straddles it).
    fn materialize(&mut self, o: ObjectId, from: u64, to: u64, ctx: &SimContext<'_>) {
        self.segs_mut(o); // grow the slab before taking field borrows
        let graph = &mut self.graph;
        let segs = &mut self.by_object[o.index()];
        debug_assert!(segs.first().map(|s| s.start).unwrap_or(from) == from || !segs.is_empty());
        // Extend coverage to `to` if needed.
        let covered_to = segs.last().map(|s| s.end).unwrap_or(from);
        if to > covered_to {
            let start = covered_to.max(from);
            let w = ctx.repo.update_bytes(o, start, to);
            let node = graph.add_update(w);
            segs.push(Segment {
                start,
                end: to,
                node,
            });
            self.live_nodes += 1;
        } else if let Some(idx) = segs.iter().position(|s| s.start < to && to < s.end) {
            // Split the straddling segment at `to`.
            self.stats.segment_splits += 1;
            let old = segs[idx].clone();
            let adjacency = nq_take(&mut self.node_queries, old.node);
            graph.remove_update(old.node);
            let w1 = ctx.repo.update_bytes(o, old.start, to);
            let w2 = ctx.repo.update_bytes(o, to, old.end);
            let n1 = graph.add_update(w1);
            let n2 = graph.add_update(w2);
            // Every query adjacent to the old segment needed all of it:
            // re-wire to both halves.
            for &adj_q in &adjacency {
                if graph.query_alive(adj_q) {
                    graph.add_interaction(n1, adj_q);
                    graph.add_interaction(n2, adj_q);
                    nq_slot(&mut self.node_queries, n1).push(adj_q);
                    nq_slot(&mut self.node_queries, n2).push(adj_q);
                }
            }
            nq_recycle(&mut self.adj_pool, adjacency);
            segs[idx] = Segment {
                start: old.start,
                end: to,
                node: n1,
            };
            segs.insert(
                idx + 1,
                Segment {
                    start: to,
                    end: old.end,
                    node: n2,
                },
            );
            self.live_nodes += 1;
        }
    }

    /// Removes all segments of `o` ending at or before `to` (they were
    /// shipped and applied). Segments are sorted and disjoint, so the
    /// shipped ones form a prefix — drained in place, no scratch Vec.
    fn drop_prefix(&mut self, o: ObjectId, to: u64) {
        if let Some(segs) = self.by_object.get_mut(o.index()) {
            let k = segs.iter().position(|s| s.end > to).unwrap_or(segs.len());
            for seg in segs.drain(..k) {
                self.graph.remove_update(seg.node);
                let adj = nq_take(&mut self.node_queries, seg.node);
                nq_recycle(&mut self.adj_pool, adj);
                self.live_nodes -= 1;
                self.stats.update_nodes_shipped += 1;
            }
        }
    }

    /// Removes every live segment of an evicted object: with the object
    /// gone, its updates no longer need shipping (queries on it will be
    /// shipped instead).
    pub fn on_evict(&mut self, o: ObjectId) {
        let Some(segs) = self.by_object.get_mut(o.index()) else {
            return;
        };
        if segs.is_empty() {
            return;
        }
        for seg in std::mem::take(segs) {
            self.graph.remove_update(seg.node);
            let adj = nq_take(&mut self.node_queries, seg.node);
            nq_recycle(&mut self.adj_pool, adj);
            self.live_nodes -= 1;
        }
        self.prune_isolated();
    }

    /// Drops retained query vertices that no longer have live edges — they
    /// can never influence a future cover.
    fn prune_isolated(&mut self) {
        let graph = &mut self.graph;
        let stats = &mut self.stats;
        self.retained.retain(|&qn| {
            if graph.query_alive(qn) && graph.query_degree(qn) == 0 {
                graph.remove_query(qn);
                stats.queries_pruned += 1;
                false
            } else {
                graph.query_alive(qn)
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostLedger;
    use delta_storage::{CacheStore, ObjectCatalog, Repository};
    use delta_workload::QueryKind;

    fn world(sizes: &[u64]) -> (Repository, CacheStore, CostLedger) {
        (
            Repository::new(ObjectCatalog::from_sizes(sizes)),
            CacheStore::new(10_000),
            CostLedger::default(),
        )
    }

    fn q(seq: u64, objects: Vec<u32>, bytes: u64, tol: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: objects.into_iter().map(ObjectId).collect(),
            result_bytes: bytes,
            tolerance: tol,
            kind: QueryKind::Cone,
        }
    }

    /// Loads object `o` at time 0 (uncharged, direct).
    fn preload(repo: &Repository, cache: &mut CacheStore, o: u32) {
        cache
            .load(
                ObjectId(o),
                repo.current_size(ObjectId(o)),
                repo.version(ObjectId(o)),
            )
            .unwrap();
    }

    #[test]
    fn current_query_answers_locally_free() {
        let (mut repo, mut cache, mut ledger) = world(&[100]);
        preload(&repo, &mut cache, 0);
        let mut um = UpdateManager::new();
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 5);
        um.handle_query(&q(5, vec![0], 50, 0), &mut ctx);
        assert_eq!(ledger.total().bytes(), 0);
        assert_eq!(ledger.local_answers, 1);
        assert_eq!(um.stats().trivially_current, 1);
        assert_eq!(um.live_update_nodes(), 0);
    }

    #[test]
    fn cheap_updates_shipped_instead_of_expensive_query() {
        let (mut repo, mut cache, mut ledger) = world(&[100]);
        preload(&repo, &mut cache, 0);
        repo.apply_update(ObjectId(0), 3, 1);
        repo.apply_update(ObjectId(0), 4, 2);
        cache.invalidate(ObjectId(0));
        let mut um = UpdateManager::new();
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 5);
        um.handle_query(&q(5, vec![0], 50, 0), &mut ctx);
        // Updates (7, one segment) beat the query (50).
        assert_eq!(ledger.breakdown.update_ship.bytes(), 7);
        assert_eq!(ledger.breakdown.query_ship.bytes(), 0);
        assert_eq!(ledger.local_answers, 1);
        assert_eq!(
            um.live_update_nodes(),
            0,
            "shipped segments leave the graph"
        );
        assert_eq!(um.retained_queries(), 0);
    }

    #[test]
    fn cheap_query_shipped_instead_of_huge_updates() {
        let (mut repo, mut cache, mut ledger) = world(&[100]);
        preload(&repo, &mut cache, 0);
        repo.apply_update(ObjectId(0), 500, 1);
        cache.invalidate(ObjectId(0));
        let mut um = UpdateManager::new();
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 5);
        um.handle_query(&q(5, vec![0], 20, 0), &mut ctx);
        assert_eq!(ledger.breakdown.query_ship.bytes(), 20);
        assert_eq!(ledger.breakdown.update_ship.bytes(), 0);
        assert_eq!(um.retained_queries(), 1, "shipped query is retained");
        assert_eq!(um.live_update_nodes(), 1, "unshipped segment stays");
    }

    #[test]
    fn repeated_queries_tip_the_cover_toward_updates() {
        // One 100-byte update; queries of 40 bytes each. First two ship
        // (cover picks the cheaper query side: 40 < 100, then the retained
        // 40 + new 40 = 80 < 100); the third tips it (120 > 100).
        let (mut repo, mut cache, mut ledger) = world(&[100]);
        preload(&repo, &mut cache, 0);
        repo.apply_update(ObjectId(0), 100, 1);
        cache.invalidate(ObjectId(0));
        let mut um = UpdateManager::new();
        for (i, seq) in [5u64, 6, 7].iter().enumerate() {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, *seq);
            um.handle_query(&q(*seq, vec![0], 40, 0), &mut ctx);
            match i {
                0 | 1 => assert_eq!(ledger.breakdown.update_ship.bytes(), 0),
                _ => {
                    assert_eq!(ledger.breakdown.update_ship.bytes(), 100);
                    assert_eq!(ledger.local_answers, 1);
                }
            }
        }
        // The paper's accounting: 40 + 40 (shipped) + 100 (update) = 180.
        assert_eq!(ledger.total().bytes(), 180);
        // After the update shipped, the two retained queries became
        // isolated and were pruned.
        assert_eq!(um.retained_queries(), 0);
        assert_eq!(um.stats().queries_pruned, 2);
    }

    #[test]
    fn tolerance_excludes_recent_updates_from_graph() {
        let (mut repo, mut cache, mut ledger) = world(&[100]);
        preload(&repo, &mut cache, 0);
        repo.apply_update(ObjectId(0), 30, 1);
        repo.apply_update(ObjectId(0), 30, 9); // recent
        cache.invalidate(ObjectId(0));
        let mut um = UpdateManager::new();
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 10);
        // tolerance 5: horizon 5, only the seq-1 update interacts.
        um.handle_query(&q(10, vec![0], 1000, 5), &mut ctx);
        assert_eq!(
            ledger.breakdown.update_ship.bytes(),
            30,
            "only the old update ships"
        );
        assert_eq!(ledger.local_answers, 1);
        // The recent update was never materialized.
        assert_eq!(um.live_update_nodes(), 0);
    }

    #[test]
    fn segment_splits_on_new_horizon() {
        // Two updates materialized as one segment by a wide-horizon query;
        // a later query with a horizon between them must split it.
        let (mut repo, mut cache, mut ledger) = world(&[100]);
        preload(&repo, &mut cache, 0);
        repo.apply_update(ObjectId(0), 40, 1);
        repo.apply_update(ObjectId(0), 40, 10);
        cache.invalidate(ObjectId(0));
        let mut um = UpdateManager::new();
        // Query 1 at seq 11, t=0: needs both updates; 80 > 20 → ship query,
        // one segment [0,2) retained.
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 11);
            um.handle_query(&q(11, vec![0], 20, 0), &mut ctx);
        }
        assert_eq!(um.live_update_nodes(), 1);
        // Query 2 at seq 12, tolerance 5 → horizon 7: needs only update 1.
        // The segment must split; cover: seg[0,1)=40 vs q=1000 +
        // retained... shipping [0,1) (40) is cheapest.
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 12);
            um.handle_query(&q(12, vec![0], 1000, 5), &mut ctx);
        }
        assert!(um.stats().segment_splits >= 1);
        assert_eq!(ledger.breakdown.update_ship.bytes(), 40);
        assert_eq!(ledger.local_answers, 1);
        // The second half [1,2) is still live (still interacting with q1).
        assert_eq!(um.live_update_nodes(), 1);
        assert_eq!(um.retained_queries(), 1);
    }

    #[test]
    fn multi_object_query_ships_all_needed_ranges() {
        let (mut repo, mut cache, mut ledger) = world(&[100, 100]);
        preload(&repo, &mut cache, 0);
        preload(&repo, &mut cache, 1);
        repo.apply_update(ObjectId(0), 5, 1);
        repo.apply_update(ObjectId(1), 6, 2);
        cache.invalidate(ObjectId(0));
        cache.invalidate(ObjectId(1));
        let mut um = UpdateManager::new();
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 5);
        um.handle_query(&q(5, vec![0, 1], 500, 0), &mut ctx);
        assert_eq!(ledger.breakdown.update_ship.bytes(), 11);
        assert_eq!(ledger.local_answers, 1);
    }

    #[test]
    fn eviction_drops_update_nodes() {
        let (mut repo, mut cache, mut ledger) = world(&[100]);
        preload(&repo, &mut cache, 0);
        repo.apply_update(ObjectId(0), 500, 1);
        cache.invalidate(ObjectId(0));
        let mut um = UpdateManager::new();
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 5);
            um.handle_query(&q(5, vec![0], 20, 0), &mut ctx);
        }
        assert_eq!(um.live_update_nodes(), 1);
        assert_eq!(um.retained_queries(), 1);
        um.on_evict(ObjectId(0));
        assert_eq!(um.live_update_nodes(), 0);
        assert_eq!(um.retained_queries(), 0, "isolated retained query pruned");
    }

    #[test]
    fn shared_update_across_queries_ships_once() {
        let (mut repo, mut cache, mut ledger) = world(&[100, 100]);
        preload(&repo, &mut cache, 0);
        preload(&repo, &mut cache, 1);
        repo.apply_update(ObjectId(0), 10, 1);
        cache.invalidate(ObjectId(0));
        let mut um = UpdateManager::new();
        // Query 1 forces the update to ship (expensive query).
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 5);
            um.handle_query(&q(5, vec![0], 1000, 0), &mut ctx);
        }
        assert_eq!(ledger.breakdown.update_ship.bytes(), 10);
        // Query 2 on the same object is now current: free.
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 6);
            um.handle_query(&q(6, vec![0], 1000, 0), &mut ctx);
        }
        assert_eq!(
            ledger.breakdown.update_ship.bytes(),
            10,
            "no double shipping"
        );
        assert_eq!(ledger.local_answers, 2);
    }

    #[test]
    fn graph_stays_small_under_update_floods() {
        // Thousands of updates on one object with repeated cheap queries:
        // the graph must stay proportional to distinct horizons, not
        // update count.
        let (mut repo, mut cache, mut ledger) = world(&[100]);
        preload(&repo, &mut cache, 0);
        let mut um = UpdateManager::new();
        let mut seq = 0u64;
        for round in 0..200 {
            for _ in 0..10 {
                repo.apply_update(ObjectId(0), 50, seq);
                seq += 1;
            }
            cache.invalidate(ObjectId(0));
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            // Cheap, zero-tolerance query: always shipped.
            um.handle_query(&q(seq, vec![0], 1, 0), &mut ctx);
            seq += 1;
            assert!(
                um.live_update_nodes() <= round + 2,
                "segment count {} grew past distinct-horizon bound at round {round}",
                um.live_update_nodes()
            );
        }
        // 2000 updates outstanding, but only ~200 segments.
        assert_eq!(repo.version(ObjectId(0)), 2000);
        assert!(um.live_update_nodes() <= 201);
        assert_eq!(ledger.breakdown.update_ship.bytes(), 0);
    }
}
#[cfg(test)]
mod cap_tests {
    use super::*;
    use crate::cost::CostLedger;
    use delta_storage::{CacheStore, ObjectCatalog, Repository};
    use delta_workload::QueryKind;

    /// A pathological stream: every query carries a distinct tolerance, so
    /// every one mints a fresh horizon and splits segments; the query is
    /// always cheaper than the outstanding updates, so updates are never
    /// shipped and segments never drain. Without the caps this grows the
    /// graph linearly in queries; with them it stays bounded.
    #[test]
    fn pathological_horizon_stream_stays_bounded() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[1_000]));
        let mut cache = CacheStore::new(100_000);
        cache.load(ObjectId(0), 1_000, 0).unwrap();
        let mut ledger = CostLedger::default();
        let mut um = UpdateManager::new();
        let mut seq = 1u64;
        for i in 0..600u64 {
            repo.apply_update(ObjectId(0), 10_000, seq);
            cache.invalidate(ObjectId(0));
            seq += 1;
            let q = QueryEvent {
                seq,
                objects: vec![ObjectId(0)],
                result_bytes: 1,   // always cheaper to ship the query
                tolerance: i % 97, // churning horizons
                kind: QueryKind::Cone,
            };
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            um.handle_query(&q, &mut ctx);
            seq += 1;
        }
        assert!(
            um.live_update_nodes() <= MAX_SEGMENTS_PER_OBJECT + 1,
            "segments unbounded: {}",
            um.live_update_nodes()
        );
        assert!(
            um.retained_queries() <= MAX_RETAINED_QUERIES,
            "retained queries unbounded: {}",
            um.retained_queries()
        );
        assert!(um.stats().segments_coalesced > 0, "cap must have triggered");
        // Currency contract intact throughout: every query was satisfied
        // (shipped — they were all cheap).
        assert_eq!(ledger.shipped_queries + ledger.local_answers, 600);
    }

    /// Coalesced segments still ship correctly once a query's cover
    /// decision demands updates.
    #[test]
    fn coalesced_segments_ship_and_drain() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[1_000]));
        let mut cache = CacheStore::new(100_000);
        cache.load(ObjectId(0), 1_000, 0).unwrap();
        let mut ledger = CostLedger::default();
        let mut um = UpdateManager::new();
        let mut seq = 1u64;
        // Build up far more than MAX_SEGMENTS_PER_OBJECT distinct horizons.
        for i in 0..(2 * MAX_SEGMENTS_PER_OBJECT as u64 + 10) {
            repo.apply_update(ObjectId(0), 5, seq);
            cache.invalidate(ObjectId(0));
            seq += 1;
            let q = QueryEvent {
                seq,
                objects: vec![ObjectId(0)],
                result_bytes: 1,
                tolerance: 1 + (i % 131),
                kind: QueryKind::Cone,
            };
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            um.handle_query(&q, &mut ctx);
            seq += 1;
        }
        // Now an expensive zero-tolerance query: the cover must ship all
        // outstanding updates (coalesced or not) and answer locally.
        let q = QueryEvent {
            seq,
            objects: vec![ObjectId(0)],
            result_bytes: 1_000_000_000,
            tolerance: 0,
            kind: QueryKind::Cone,
        };
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
        um.handle_query(&q, &mut ctx);
        assert_eq!(
            cache.applied_version(ObjectId(0)),
            Some(repo.version(ObjectId(0))),
            "object fully refreshed"
        );
        assert_eq!(um.live_update_nodes(), 0, "all segments drained");
    }
}
