//! Preshipping: proactive update propagation for hot cached objects.
//!
//! §4's discussion: decisions that minimize traffic can delay queries
//! that must wait for outstanding updates to ship; "to improve the
//! response time performance of delayed queries, some updates can be
//! preshipped, i.e., proactively sent by the server" (the full treatment
//! lives in the paper's technical report \[26\]).
//!
//! [`Preship`] wraps any [`CachingPolicy`] and adds exactly that: when an
//! update arrives for a *resident* object whose recent query heat exceeds
//! a threshold, the update is shipped immediately — at update-arrival
//! time, off every query's critical path — instead of waiting for the
//! next querying client to pull it. Traffic can only grow (some
//! preshipped updates would otherwise have been covered by shipping a
//! query); latency on hot objects shrinks. The heat tracker is an
//! exponentially-decayed access counter, so the set of preshipped objects
//! adapts with the workload's hotspot drift.

use crate::context::SimContext;
use crate::policy_trait::CachingPolicy;
use delta_storage::ObjectCatalog;
use delta_workload::{QueryEvent, UpdateEvent};

/// Configuration for [`Preship`].
#[derive(Clone, Copy, Debug)]
pub struct PreshipConfig {
    /// Half-life, in events, of the per-object access heat.
    pub half_life_events: f64,
    /// Heat at or above which a resident object's updates are preshipped.
    /// Heat increases by 1 per query access and decays with
    /// [`PreshipConfig::half_life_events`]; a threshold of `h` therefore
    /// means roughly "queried `h` times within the last half-life".
    pub hot_threshold: f64,
}

impl Default for PreshipConfig {
    fn default() -> Self {
        Self {
            half_life_events: 2000.0,
            hot_threshold: 3.0,
        }
    }
}

/// A policy wrapper that preships updates to hot resident objects.
#[derive(Debug)]
pub struct Preship<P> {
    inner: P,
    cfg: PreshipConfig,
    name: String,
    heat: Vec<f64>,
    heat_at: Vec<u64>,
    preshipped_ranges: u64,
    preshipped_bytes: u64,
}

impl<P: CachingPolicy> Preship<P> {
    /// Wraps `inner` with preshipping under `cfg`.
    pub fn new(inner: P, cfg: PreshipConfig) -> Self {
        assert!(cfg.half_life_events > 0.0, "half-life must be positive");
        assert!(cfg.hot_threshold >= 0.0, "threshold must be non-negative");
        let name = format!("Preship({})", inner.name());
        Self {
            inner,
            cfg,
            name,
            heat: Vec::new(),
            heat_at: Vec::new(),
            preshipped_ranges: 0,
            preshipped_bytes: 0,
        }
    }

    /// Wraps `inner` with the default configuration.
    pub fn with_defaults(inner: P) -> Self {
        Self::new(inner, PreshipConfig::default())
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Update ranges and bytes shipped proactively so far.
    pub fn preshipped(&self) -> (u64, u64) {
        (self.preshipped_ranges, self.preshipped_bytes)
    }

    fn ensure_len(&mut self, n: usize) {
        if self.heat.len() < n {
            self.heat.resize(n, 0.0);
            self.heat_at.resize(n, 0);
        }
    }

    /// Current decayed heat of object `i` at time `now`.
    fn heat_now(&self, i: usize, now: u64) -> f64 {
        let dt = now.saturating_sub(self.heat_at[i]) as f64;
        self.heat[i] * 0.5f64.powf(dt / self.cfg.half_life_events)
    }

    fn bump(&mut self, i: usize, now: u64) {
        self.heat[i] = self.heat_now(i, now) + 1.0;
        self.heat_at[i] = now;
    }
}

impl<P: CachingPolicy> CachingPolicy for Preship<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, ctx: &mut SimContext<'_>) {
        self.ensure_len(ctx.repo.catalog().len());
        self.inner.init(ctx);
    }

    fn on_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) {
        self.ensure_len(ctx.repo.catalog().len());
        for &o in &q.objects {
            self.bump(o.index(), ctx.now);
        }
        self.inner.on_query(q, ctx);
    }

    fn on_update(&mut self, u: &UpdateEvent, ctx: &mut SimContext<'_>) {
        self.ensure_len(ctx.repo.catalog().len());
        // Let the inner policy react first (Replica ships everything
        // anyway; VCover records the outstanding update).
        self.inner.on_update(u, ctx);
        let i = u.object.index();
        if ctx.cache.contains(u.object) && self.heat_now(i, ctx.now) >= self.cfg.hot_threshold {
            let target = ctx.repo.version(u.object);
            let already = ctx.cache.applied_version(u.object).unwrap_or(0);
            if target > already {
                let bytes = ctx.ship_updates_to(u.object, target);
                if bytes > 0 {
                    self.preshipped_ranges += 1;
                    self.preshipped_bytes += bytes;
                }
            }
        }
    }

    fn preferred_capacity(&self, catalog: &ObjectCatalog, configured: u64) -> u64 {
        self.inner.preferred_capacity(catalog, configured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostLedger;
    use crate::vcover::VCover;
    use crate::yardstick::NoCache;
    use delta_storage::{CacheStore, ObjectCatalog, ObjectId, Repository};
    use delta_workload::QueryKind;

    fn q(seq: u64, object: u32, bytes: u64) -> QueryEvent {
        QueryEvent {
            seq,
            objects: vec![ObjectId(object)],
            result_bytes: bytes,
            tolerance: 0,
            kind: QueryKind::Cone,
        }
    }

    #[test]
    fn hot_resident_object_gets_updates_preshipped() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100]));
        let mut cache = CacheStore::new(1000);
        let mut ledger = CostLedger::default();
        let mut p = Preship::new(
            NoCache,
            PreshipConfig {
                half_life_events: 100.0,
                hot_threshold: 2.0,
            },
        );
        // Make the object resident and hot.
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 0);
            ctx.load_object(ObjectId(0)).unwrap();
        }
        for seq in 1..=3 {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            p.on_query(&q(seq, 0, 10), &mut ctx);
        }
        // An update arrives: it should ship immediately.
        repo.apply_update(ObjectId(0), 7, 4);
        cache.invalidate(ObjectId(0));
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 4);
        p.on_update(
            &UpdateEvent {
                seq: 4,
                object: ObjectId(0),
                bytes: 7,
            },
            &mut ctx,
        );
        assert_eq!(p.preshipped(), (1, 7));
        assert!(!cache.get(ObjectId(0)).unwrap().stale);
    }

    #[test]
    fn cold_objects_are_not_preshipped() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100]));
        let mut cache = CacheStore::new(1000);
        let mut ledger = CostLedger::default();
        let mut p = Preship::new(
            NoCache,
            PreshipConfig {
                half_life_events: 100.0,
                hot_threshold: 2.0,
            },
        );
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 0);
            ctx.load_object(ObjectId(0)).unwrap();
        }
        repo.apply_update(ObjectId(0), 7, 1);
        cache.invalidate(ObjectId(0));
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 1);
        p.on_update(
            &UpdateEvent {
                seq: 1,
                object: ObjectId(0),
                bytes: 7,
            },
            &mut ctx,
        );
        assert_eq!(p.preshipped(), (0, 0), "no query heat, no preship");
        assert!(cache.get(ObjectId(0)).unwrap().stale);
    }

    #[test]
    fn heat_decays_over_time() {
        let mut repo = Repository::new(ObjectCatalog::from_sizes(&[100]));
        let mut cache = CacheStore::new(1000);
        let mut ledger = CostLedger::default();
        let mut p = Preship::new(
            NoCache,
            PreshipConfig {
                half_life_events: 10.0,
                hot_threshold: 2.0,
            },
        );
        {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 0);
            ctx.load_object(ObjectId(0)).unwrap();
        }
        for seq in 1..=3 {
            let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, seq);
            p.on_query(&q(seq, 0, 10), &mut ctx);
        }
        // 100 events later (10 half-lives), the heat is ~0.003.
        repo.apply_update(ObjectId(0), 7, 103);
        cache.invalidate(ObjectId(0));
        let mut ctx = SimContext::new(&mut repo, &mut cache, &mut ledger, 103);
        p.on_update(
            &UpdateEvent {
                seq: 103,
                object: ObjectId(0),
                bytes: 7,
            },
            &mut ctx,
        );
        assert_eq!(p.preshipped(), (0, 0), "heat decayed below threshold");
    }

    #[test]
    fn name_reflects_inner() {
        let p = Preship::with_defaults(VCover::new(1000, 1));
        assert_eq!(p.name(), "Preship(VCover)");
    }

    #[test]
    fn preship_respects_inner_capacity_preference() {
        let catalog = ObjectCatalog::from_sizes(&[100, 200]);
        let p = Preship::with_defaults(NoCache);
        assert_eq!(p.preferred_capacity(&catalog, 77), 77);
    }
}
