//! Response-time accounting on top of the traffic simulator.
//!
//! Delta's objective is network traffic; response time is the secondary
//! concern §4 discusses: decisions that reduce traffic "naturally
//! decrease response times of queries that access objects in cache. But
//! queries for which updates need to be applied may be delayed." This
//! module prices each query's *client-visible critical path* — the
//! synchronous exchanges performed while the query waits — against a
//! [`LinkModel`], so the preshipping extension ([`crate::preship`]) can
//! be evaluated quantitatively.

use delta_net::LinkModel;
use serde::{Deserialize, Serialize};

/// Fixed local processing time for a query answered at the cache,
/// in seconds. Kept small and constant: execution cost modeling is out
/// of scope; the interesting term is the wait for the wire.
pub const LOCAL_PROCESS_SECS: f64 = 0.002;

/// Streaming collector of per-query response times.
#[derive(Clone, Debug, Default)]
pub struct LatencyCollector {
    samples: Vec<f64>,
}

impl LatencyCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query's response time in seconds.
    pub fn record(&mut self, secs: f64) {
        debug_assert!(secs.is_finite() && secs >= 0.0);
        self.samples.push(secs);
    }

    /// Response time of a query whose critical path performed
    /// `messages` synchronous exchanges moving `bytes`, over `link`.
    pub fn record_exchanges(&mut self, link: &LinkModel, messages: u32, bytes: u64) {
        self.record(LOCAL_PROCESS_SECS + link.exchange_secs(messages, bytes));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summarizes the distribution (consumes nothing; sorts a copy).
    pub fn summarize(&self) -> LatencyStats {
        if self.samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let pct = |p: f64| sorted[((p * n as f64) as usize).min(n - 1)];
        LatencyStats {
            count: n as u64,
            mean_secs: sorted.iter().sum::<f64>() / n as f64,
            p50_secs: pct(0.50),
            p95_secs: pct(0.95),
            p99_secs: pct(0.99),
            max_secs: *sorted.last().expect("non-empty"),
        }
    }
}

/// Summary statistics of per-query response times.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of queries measured.
    pub count: u64,
    /// Mean response time, seconds.
    pub mean_secs: f64,
    /// Median response time, seconds.
    pub p50_secs: f64,
    /// 95th-percentile response time, seconds.
    pub p95_secs: f64,
    /// 99th-percentile response time, seconds.
    pub p99_secs: f64,
    /// Worst response time, seconds.
    pub max_secs: f64,
}

impl serde_json::ToJson for LatencyStats {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![
            ("count".into(), self.count.to_json()),
            ("mean_secs".into(), self.mean_secs.to_json()),
            ("p50_secs".into(), self.p50_secs.to_json()),
            ("p95_secs".into(), self.p95_secs.to_json()),
            ("p99_secs".into(), self.p99_secs.to_json()),
            ("max_secs".into(), self.max_secs.to_json()),
        ])
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.0} ms, p50 {:.0} ms, p95 {:.0} ms, p99 {:.0} ms, max {:.1} s",
            self.mean_secs * 1e3,
            self.p50_secs * 1e3,
            self.p95_secs * 1e3,
            self.p99_secs * 1e3,
            self.max_secs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_collector_summarizes_to_zeros() {
        let c = LatencyCollector::new();
        assert!(c.is_empty());
        assert_eq!(c.summarize(), LatencyStats::default());
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let mut c = LatencyCollector::new();
        for i in 1..=100 {
            c.record(i as f64);
        }
        let s = c.summarize();
        assert_eq!(s.count, 100);
        assert!((s.mean_secs - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_secs, 51.0);
        assert_eq!(s.p95_secs, 96.0);
        assert_eq!(s.p99_secs, 100.0);
        assert_eq!(s.max_secs, 100.0);
    }

    #[test]
    fn local_answers_cost_only_processing() {
        let mut c = LatencyCollector::new();
        c.record_exchanges(&LinkModel::wan(), 0, 0);
        let s = c.summarize();
        assert!((s.max_secs - LOCAL_PROCESS_SECS).abs() < 1e-12);
    }

    #[test]
    fn shipped_query_pays_rtt_and_bandwidth() {
        let link = LinkModel {
            bandwidth_bytes_per_sec: 1e6,
            rtt_secs: 0.05,
        };
        let mut c = LatencyCollector::new();
        c.record_exchanges(&link, 1, 1_000_000);
        let s = c.summarize();
        assert!((s.max_secs - (LOCAL_PROCESS_SECS + 0.05 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn display_is_readable() {
        let mut c = LatencyCollector::new();
        c.record(0.25);
        let text = c.summarize().to_string();
        assert!(text.contains("mean 250 ms"), "{text}");
    }
}
