//! Threaded client/cache/server deployment over metered links.
//!
//! The in-process simulator charges a ledger; this module runs the *same
//! policy code* as three real threads exchanging `delta-net` messages:
//!
//! ```text
//!   client ──(LAN, unmetered)──> cache ──(WAN, metered)──> server
//!   pipeline ─(server-local)────────────────────────────────┘
//! ```
//!
//! * The **server** owns the authoritative [`Repository`]. Updates reach
//!   it from the pipeline channel; it answers `UpdateFetch`/`LoadRequest`
//!   from its own state and pushes a metadata-only `Invalidation` to the
//!   cache for every update.
//! * The **cache** owns the policy, the [`CacheStore`] and a *metadata
//!   mirror* of the repository maintained purely from invalidation
//!   messages — it never peeks at server memory. Every data movement the
//!   policy makes goes over the WAN via the [`Transport`] hook.
//! * The **client** (the calling thread) replays the trace in lockstep.
//!
//! The run returns both the policy's ledger and the WAN meter snapshot;
//! [`run_deployed`]'s callers assert they reconcile byte-for-byte, and the
//! cache cross-checks every server reply against its mirror — a genuine
//! distributed-consistency check of the protocol.
//!
//! # Failure injection
//!
//! §7 of the paper defers "reliability, failure-recovery, and
//! communication protocols" to a real-world deployment;
//! [`run_deployed_faulty`] supplies them: the cache process can *crash*
//! at chosen points in the trace — losing its policy state and its
//! repository mirror, and (on a cold restart) its entire store — then
//! recover through a `SyncRequest`/`SyncReply` metadata resync before
//! service resumes. Every query is still answered within its staleness
//! contract; the observable cost of a crash is extra traffic (reloads,
//! re-shipped queries), which the returned report quantifies.

use crate::context::Transport;
use crate::engine::{BorrowedPolicy, Engine, EngineOutcome};
use crate::policy_trait::CachingPolicy;
use crate::sim::{SeriesPoint, SimOptions, SimReport};
use delta_net::{Endpoint, Link, NetMessage, ObjectLog, TrafficSnapshot};
use delta_storage::{ObjectCatalog, ObjectId, Repository};
use delta_workload::{Event, Trace, UpdateEvent};

/// Messages from the client/pipeline to the cache thread.
enum ClientMsg {
    Query(delta_workload::QueryEvent),
    /// An update was sent to the server; the cache must absorb the
    /// resulting invalidation before the client proceeds.
    AbsorbInvalidation,
    /// The cache process crashes and recovers in the given mode.
    Crash(RecoveryMode),
    Done,
}

/// What survives a cache crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMode {
    /// The store's disk survives: resident objects keep their bytes and
    /// applied versions; only volatile state (policy, mirror) is lost and
    /// must be resynced.
    Warm,
    /// Everything is lost; the cache restarts empty.
    Cold,
}

/// When and how the cache crashes during a faulty run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// `(event_index, mode)` pairs: the cache crashes immediately before
    /// the event at each (0-based) index. Must be sorted ascending.
    pub crashes: Vec<(u64, RecoveryMode)>,
}

impl FaultPlan {
    /// A plan with one crash before event `at`.
    pub fn crash_at(at: u64, mode: RecoveryMode) -> Self {
        Self {
            crashes: vec![(at, mode)],
        }
    }
}

/// What recovery cost, beyond the byte ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Crashes injected.
    pub crashes: u64,
    /// Objects dropped by cold restarts.
    pub objects_lost: u64,
    /// Resident objects kept through warm restarts.
    pub objects_kept: u64,
    /// Kept objects found stale during resync (must re-ship updates
    /// before serving zero-tolerance queries).
    pub objects_stale_on_recovery: u64,
    /// Update-log entries replayed to rebuild the mirror.
    pub log_entries_replayed: u64,
}

/// Spawns the server thread: authoritative repository, pipeline intake,
/// WAN request service (including recovery syncs).
fn spawn_server(
    catalog: ObjectCatalog,
    server_wan: Endpoint,
    pipeline_rx: crossbeam::channel::Receiver<UpdateEvent>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut repo = Repository::new(catalog);
        loop {
            crossbeam::channel::select! {
                recv(pipeline_rx) -> msg => {
                    let Ok(u) = msg else { return };
                    let version = repo.apply_update(u.object, u.bytes, u.seq);
                    server_wan
                        .send(NetMessage::Invalidation {
                            object: u.object.0,
                            version,
                            bytes: u.bytes,
                            seq: u.seq,
                        })
                        .expect("cache alive");
                }
                recv(server_wan.receiver()) -> msg => {
                    let Ok(msg) = msg else { return };
                    match msg {
                        NetMessage::QueryShip { .. } => {
                            // Result bytes were already metered on send;
                            // the result goes straight to the client (§3).
                        }
                        NetMessage::UpdateFetch { object, from_version, to_version } => {
                            let o = ObjectId(object);
                            let bytes = repo.update_bytes(o, from_version, to_version);
                            server_wan
                                .send(NetMessage::UpdateShip {
                                    object,
                                    from_version,
                                    to_version,
                                    bytes,
                                })
                                .expect("cache alive");
                        }
                        NetMessage::LoadRequest { object } => {
                            let o = ObjectId(object);
                            server_wan
                                .send(NetMessage::ObjectLoad {
                                    object,
                                    version: repo.version(o),
                                    bytes: repo.current_size(o),
                                })
                                .expect("cache alive");
                        }
                        NetMessage::SyncRequest => {
                            let logs: Vec<ObjectLog> = repo
                                .catalog()
                                .ids()
                                .filter_map(|o| {
                                    let updates: Vec<(u64, u64)> = repo
                                        .updates_since(o, 0)
                                        .iter()
                                        .map(|r| (r.bytes, r.seq))
                                        .collect();
                                    (!updates.is_empty())
                                        .then_some(ObjectLog { object: o.0, updates })
                                })
                                .collect();
                            server_wan.send(NetMessage::SyncReply { logs }).expect("cache alive");
                        }
                        NetMessage::EvictNotice { .. } => {}
                        NetMessage::Shutdown => return,
                        other => panic!("server got unexpected message {other:?}"),
                    }
                }
            }
        }
    })
}

/// The WAN side of the cache thread: turns context callbacks into
/// request/reply exchanges and validates replies against the mirror.
struct WanTransport {
    wan: Endpoint,
}

impl Transport for WanTransport {
    fn query_shipped(&mut self, q: &delta_workload::QueryEvent) {
        self.wan
            .send(NetMessage::QueryShip {
                query_seq: q.seq,
                result_bytes: q.result_bytes,
            })
            .expect("server alive");
    }

    fn updates_fetched(&mut self, o: ObjectId, from: u64, to: u64, bytes: u64) {
        self.wan
            .send(NetMessage::UpdateFetch {
                object: o.0,
                from_version: from,
                to_version: to,
            })
            .expect("server alive");
        match self.wan.recv().expect("server alive") {
            NetMessage::UpdateShip {
                object,
                from_version,
                to_version,
                bytes: got,
            } => {
                assert_eq!(object, o.0);
                assert_eq!((from_version, to_version), (from, to));
                assert_eq!(
                    got, bytes,
                    "server and cache disagree on update bytes for {o}: mirror out of sync"
                );
            }
            other => panic!("expected UpdateShip, got {other:?}"),
        }
    }

    fn object_loaded(&mut self, o: ObjectId, version: u64, bytes: u64) {
        self.wan
            .send(NetMessage::LoadRequest { object: o.0 })
            .expect("server alive");
        match self.wan.recv().expect("server alive") {
            NetMessage::ObjectLoad {
                object,
                version: v,
                bytes: got,
            } => {
                assert_eq!(object, o.0);
                assert_eq!(v, version, "server and cache disagree on {o}'s version");
                assert_eq!(got, bytes, "server and cache disagree on {o}'s size");
            }
            other => panic!("expected ObjectLoad, got {other:?}"),
        }
    }

    fn object_evicted(&mut self, o: ObjectId) {
        self.wan
            .send(NetMessage::EvictNotice { object: o.0 })
            .expect("server alive");
    }
}

/// Rebuilds a repository mirror from a recovery sync over the WAN.
/// Returns the number of log entries replayed.
fn resync_mirror(transport: &mut WanTransport, catalog: &ObjectCatalog) -> (Repository, u64) {
    transport
        .wan
        .send(NetMessage::SyncRequest)
        .expect("server alive");
    let mut mirror = Repository::new(catalog.clone());
    let mut replayed = 0u64;
    loop {
        match transport.wan.recv().expect("server alive") {
            NetMessage::SyncReply { logs } => {
                for log in logs {
                    for (bytes, seq) in log.updates {
                        mirror.apply_update(ObjectId(log.object), bytes, seq);
                        replayed += 1;
                    }
                }
                return (mirror, replayed);
            }
            // Invalidations already in flight when the crash happened are
            // folded into the mirror rebuild: the server's log is
            // authoritative and already contains them, so they are
            // dropped here (their content never shipped).
            NetMessage::Invalidation { .. } => continue,
            other => panic!("expected SyncReply, got {other:?}"),
        }
    }
}

/// Runs the policy in a threaded deployment and returns its report plus
/// the WAN traffic snapshot.
pub fn run_deployed(
    policy: &mut (dyn CachingPolicy + Send),
    catalog: &ObjectCatalog,
    trace: &Trace,
    opts: SimOptions,
) -> (SimReport, TrafficSnapshot) {
    // Fault-free runs build exactly one policy, so the borrow is handed
    // out once, wrapped to fit the box-producing factory interface.
    let mut slot = Some(policy);
    let (report, snapshot, recovery) = run_deployed_inner(
        &mut move || -> Box<dyn CachingPolicy + '_> {
            Box::new(BorrowedPolicy(
                slot.take().expect("fault-free runs build one policy"),
            ))
        },
        catalog,
        trace,
        opts,
        &FaultPlan::default(),
    );
    debug_assert_eq!(recovery.crashes, 0);
    (report, snapshot)
}

/// Runs a threaded deployment with cache crashes injected per `plan`.
///
/// `make_policy` is called once at startup and once after every crash
/// (the policy's in-memory decision state does not survive a crash; its
/// *correctness* never depended on it).
pub fn run_deployed_faulty(
    make_policy: &mut (dyn FnMut() -> Box<dyn CachingPolicy + Send> + Send),
    catalog: &ObjectCatalog,
    trace: &Trace,
    opts: SimOptions,
    plan: &FaultPlan,
) -> (SimReport, TrafficSnapshot, RecoveryReport) {
    run_deployed_inner(
        &mut || -> Box<dyn CachingPolicy> { make_policy() },
        catalog,
        trace,
        opts,
        plan,
    )
}

fn run_deployed_inner<'p, F>(
    next_policy: &mut F,
    catalog: &ObjectCatalog,
    trace: &Trace,
    opts: SimOptions,
    plan: &FaultPlan,
) -> (SimReport, TrafficSnapshot, RecoveryReport)
where
    F: FnMut() -> Box<dyn CachingPolicy + 'p> + Send,
{
    assert!(
        plan.crashes.windows(2).all(|w| w[0].0 < w[1].0),
        "fault plan must be sorted by event index"
    );
    let (cache_wan, server_wan, meter) = Link::pair();
    let (client_tx, client_rx) = crossbeam::channel::unbounded::<ClientMsg>();
    let (pipeline_tx, pipeline_rx) = crossbeam::channel::unbounded::<UpdateEvent>();
    let (ack_tx, ack_rx) = crossbeam::channel::unbounded::<()>();

    let server = spawn_server(catalog.clone(), server_wan, pipeline_rx);

    let mut report: Option<SimReport> = None;
    let mut recovery = RecoveryReport::default();
    std::thread::scope(|scope| {
        let cache_catalog = catalog.clone();
        let report_ref = &mut report;
        let recovery_ref = &mut recovery;
        scope.spawn(move || {
            // The engine owns the metadata mirror, the store and the
            // ledger. The ledger is the experiment's measurement
            // apparatus, not cache state: it survives crashes (the
            // engine keeps it through policy/repository swaps), like the
            // WAN meter does.
            let mut engine = Engine::new(next_policy(), &cache_catalog, opts.cache_bytes);
            let mut transport = WanTransport { wan: cache_wan };
            engine.init(Some(&mut transport));
            let mut series = Vec::new();
            let mut count = 0u64;
            loop {
                match client_rx.recv().expect("client alive") {
                    ClientMsg::Query(q) => {
                        let seq = q.seq;
                        engine
                            .apply_with(&Event::Query(q), Some(&mut transport))
                            .unwrap_or_else(|e| {
                                panic!("query {seq} unsatisfied in deployment: {e}")
                            });
                    }
                    ClientMsg::AbsorbInvalidation => {
                        // The matching invalidation is already in flight.
                        match transport.wan.recv().expect("server alive") {
                            NetMessage::Invalidation {
                                object,
                                version,
                                bytes,
                                seq,
                            } => {
                                let o = ObjectId(object);
                                let u = UpdateEvent {
                                    seq,
                                    object: o,
                                    bytes,
                                };
                                match engine
                                    .apply_with(&Event::Update(u), Some(&mut transport))
                                    .expect("updates cannot violate the contract")
                                {
                                    EngineOutcome::Update { version: v } => {
                                        assert_eq!(v, version, "mirror version drift on {o}");
                                    }
                                    other => panic!("update produced {other:?}"),
                                }
                            }
                            other => panic!("expected Invalidation, got {other:?}"),
                        }
                    }
                    ClientMsg::Crash(mode) => {
                        recovery_ref.crashes += 1;
                        // Volatile state dies with the process: the
                        // policy's decision state and the mirror go; the
                        // engine keeps the store and the ledger.
                        engine.replace_policy(next_policy());
                        let (m, replayed) = resync_mirror(&mut transport, &cache_catalog);
                        recovery_ref.log_entries_replayed += replayed;
                        engine.replace_repository(m);
                        match mode {
                            RecoveryMode::Cold => {
                                let residents: Vec<ObjectId> =
                                    engine.cache().iter().map(|(o, _)| o).collect();
                                recovery_ref.objects_lost += residents.len() as u64;
                                for o in residents {
                                    engine.cache_mut().evict(o).expect("resident");
                                    transport
                                        .wan
                                        .send(NetMessage::EvictNotice { object: o.0 })
                                        .expect("server alive");
                                }
                            }
                            RecoveryMode::Warm => {
                                // Disk survived; freshness metadata must be
                                // re-derived by comparing applied versions
                                // against the resynced mirror.
                                let residents: Vec<(ObjectId, u64)> = engine
                                    .cache()
                                    .iter()
                                    .map(|(o, r)| (o, r.applied_version))
                                    .collect();
                                recovery_ref.objects_kept += residents.len() as u64;
                                for (o, applied) in residents {
                                    if applied < engine.repo().version(o) {
                                        engine.cache_mut().invalidate(o);
                                        recovery_ref.objects_stale_on_recovery += 1;
                                    }
                                }
                            }
                        }
                        engine.init(Some(&mut transport));
                        ack_tx.send(()).expect("client alive");
                        continue;
                    }
                    ClientMsg::Done => {
                        transport
                            .wan
                            .send(NetMessage::Shutdown)
                            .expect("server alive");
                        break;
                    }
                }
                count += 1;
                if count.is_multiple_of(opts.sample_every) {
                    series.push(SeriesPoint {
                        seq: engine.clock(),
                        cumulative_bytes: engine.ledger().total().bytes(),
                    });
                }
                ack_tx.send(()).expect("client alive");
            }
            if series.last().map(|p| p.seq) != Some(engine.clock()) {
                series.push(SeriesPoint {
                    seq: engine.clock(),
                    cumulative_bytes: engine.ledger().total().bytes(),
                });
            }
            let metrics = engine.metrics();
            *report_ref = Some(SimReport {
                policy: engine.policy_name().to_string(),
                cache_bytes: engine.cache().capacity(),
                ledger: metrics.ledger.clone(),
                series,
                events: count,
                latency: None,
                metrics,
            });
        });

        // ---- client (this thread): replay the trace in lockstep ----
        let mut crash_iter = plan.crashes.iter().peekable();
        for (idx, event) in trace.iter().enumerate() {
            if let Some(&&(at, mode)) = crash_iter.peek() {
                if at == idx as u64 {
                    crash_iter.next();
                    client_tx.send(ClientMsg::Crash(mode)).expect("cache alive");
                    ack_rx.recv().expect("cache alive");
                }
            }
            match event {
                Event::Query(q) => {
                    client_tx
                        .send(ClientMsg::Query(q.clone()))
                        .expect("cache alive");
                }
                Event::Update(u) => {
                    pipeline_tx.send(*u).expect("server alive");
                    client_tx
                        .send(ClientMsg::AbsorbInvalidation)
                        .expect("cache alive");
                }
            }
            ack_rx.recv().expect("cache alive");
        }
        client_tx.send(ClientMsg::Done).expect("cache alive");
    });

    server.join().expect("server thread panicked");
    let snapshot = meter.snapshot();
    (
        report.expect("cache thread produced a report"),
        snapshot,
        recovery,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOptions};
    use crate::vcover::VCover;
    use crate::yardstick::NoCache;
    use delta_workload::{SyntheticSurvey, WorkloadConfig};

    fn survey(n: usize) -> SyntheticSurvey {
        let mut cfg = WorkloadConfig::small();
        cfg.n_queries = n;
        cfg.n_updates = n;
        SyntheticSurvey::generate(&cfg)
    }

    #[test]
    fn deployed_nocache_meter_matches_ledger() {
        let s = survey(300);
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let mut p = NoCache;
        let (report, wan) = run_deployed(&mut p, &s.catalog, &s.trace, opts);
        assert_eq!(report.total().bytes(), wan.charged_total());
        assert_eq!(report.total().bytes(), s.trace.total_query_bytes());
    }

    #[test]
    fn deployed_vcover_equals_in_process_simulation() {
        let s = survey(400);
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let mut p1 = VCover::new(opts.cache_bytes, 5);
        let in_process = simulate(&mut p1, &s.catalog, &s.trace, opts);
        let mut p2 = VCover::new(opts.cache_bytes, 5);
        let (deployed, wan) = run_deployed(&mut p2, &s.catalog, &s.trace, opts);
        // Byte-for-byte equality between simulation and deployment...
        assert_eq!(in_process.total().bytes(), deployed.total().bytes());
        assert_eq!(in_process.ledger.breakdown, deployed.ledger.breakdown);
        // ...and the WAN meter agrees with the ledger.
        assert_eq!(deployed.total().bytes(), wan.charged_total());
        assert_eq!(
            wan.bytes_for(delta_net::TrafficClass::QueryShip),
            deployed.ledger.breakdown.query_ship.bytes()
        );
        assert_eq!(
            wan.bytes_for(delta_net::TrafficClass::UpdateShip),
            deployed.ledger.breakdown.update_ship.bytes()
        );
        assert_eq!(
            wan.bytes_for(delta_net::TrafficClass::ObjectLoad),
            deployed.ledger.breakdown.load.bytes()
        );
    }

    #[test]
    fn cold_crash_recovers_and_still_satisfies_everything() {
        let s = survey(400);
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let mid = (s.trace.len() / 2) as u64;
        let plan = FaultPlan::crash_at(mid, RecoveryMode::Cold);
        let seed = 5;
        let mut factory = move || -> Box<dyn CachingPolicy + Send> {
            Box::new(VCover::new(opts.cache_bytes, seed))
        };
        let (report, wan, rec) =
            run_deployed_faulty(&mut factory, &s.catalog, &s.trace, opts, &plan);
        assert_eq!(rec.crashes, 1);
        assert_eq!(
            report.total().bytes(),
            wan.charged_total(),
            "ledger and meter reconcile"
        );
        assert_eq!(
            report.ledger.shipped_queries + report.ledger.local_answers,
            s.trace.n_queries() as u64,
            "every query satisfied despite the crash"
        );
        // The crashed run is a *different* (and usually costlier) run than
        // the clean one — but an online algorithm may dodge an expensive
        // load by accident, so no inequality holds in general. What must
        // hold: both runs are well-formed and account every byte.
        let mut p = VCover::new(opts.cache_bytes, seed);
        let clean = simulate(&mut p, &s.catalog, &s.trace, opts);
        assert!(report.total().bytes() > 0 && clean.total().bytes() > 0);
        assert_ne!(
            report.ledger.breakdown, clean.ledger.breakdown,
            "losing the whole cache mid-trace must change the cost profile"
        );
    }

    #[test]
    fn warm_crash_keeps_store_and_marks_stale() {
        let s = survey(400);
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let mid = (s.trace.len() * 3 / 4) as u64;
        let plan = FaultPlan::crash_at(mid, RecoveryMode::Warm);
        let mut factory =
            move || -> Box<dyn CachingPolicy + Send> { Box::new(VCover::new(opts.cache_bytes, 5)) };
        let (report, wan, rec) =
            run_deployed_faulty(&mut factory, &s.catalog, &s.trace, opts, &plan);
        assert_eq!(rec.crashes, 1);
        assert_eq!(rec.objects_lost, 0, "warm restart loses nothing");
        assert_eq!(report.total().bytes(), wan.charged_total());
        assert_eq!(
            report.ledger.shipped_queries + report.ledger.local_answers,
            s.trace.n_queries() as u64
        );
        assert!(
            rec.log_entries_replayed > 0,
            "mirror was rebuilt from the server log"
        );
    }

    #[test]
    fn repeated_cold_crashes_degrade_towards_nocache() {
        let s = survey(300);
        let opts = SimOptions::with_cache_fraction(&s.catalog, 0.3, 100);
        let n = s.trace.len() as u64;
        let plan = FaultPlan {
            crashes: (1..8).map(|i| (i * n / 8, RecoveryMode::Cold)).collect(),
        };
        let mut factory =
            move || -> Box<dyn CachingPolicy + Send> { Box::new(VCover::new(opts.cache_bytes, 5)) };
        let (report, _, rec) = run_deployed_faulty(&mut factory, &s.catalog, &s.trace, opts, &plan);
        assert_eq!(rec.crashes, 7);
        assert_eq!(
            report.ledger.shipped_queries + report.ledger.local_answers,
            s.trace.n_queries() as u64
        );
    }
}
