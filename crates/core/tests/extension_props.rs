//! Property tests for the extension modules: preshipping, the offline
//! hindsight solver, and latency accounting.

use delta_core::{hindsight_decoupling, simulate, Preship, PreshipConfig, SimOptions, VCover};
use delta_net::LinkModel;
use delta_storage::{ObjectCatalog, ObjectId};
use delta_workload::{Event, QueryEvent, QueryKind, Trace, UpdateEvent};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random but well-formed trace over `n_objects`, with uniform
/// per-query tolerance choices.
fn arb_trace(n_objects: usize, max_events: usize) -> impl Strategy<Value = (Vec<u64>, Trace)> {
    let sizes = proptest::collection::vec(50u64..5_000, n_objects);
    let events = proptest::collection::vec(
        prop_oneof![
            (
                proptest::collection::btree_set(0..n_objects as u32, 1..4),
                1u64..2_000,
                prop_oneof![Just(0u64), 1u64..40],
            )
                .prop_map(|(objs, bytes, tol)| (
                    true,
                    objs.into_iter().collect::<Vec<u32>>(),
                    bytes,
                    tol
                )),
            (0..n_objects as u32, 1u64..500).prop_map(|(o, bytes)| (false, vec![o], bytes, 0)),
        ],
        1..max_events,
    );
    (sizes, events).prop_map(|(sizes, evs)| {
        let events = evs
            .into_iter()
            .enumerate()
            .map(|(i, (is_q, objs, bytes, tol))| {
                if is_q {
                    Event::Query(QueryEvent {
                        seq: i as u64,
                        objects: objs.into_iter().map(ObjectId).collect(),
                        result_bytes: bytes,
                        tolerance: tol,
                        kind: QueryKind::Cone,
                    })
                } else {
                    Event::Update(UpdateEvent {
                        seq: i as u64,
                        object: ObjectId(objs[0]),
                        bytes,
                    })
                }
            })
            .collect();
        (sizes, Trace::new(events))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Preship(VCover) preserves every correctness property of VCover on
    /// arbitrary traces: all queries satisfied, query bytes bounded by
    /// NoCache's, and its proactive shipping is visible in the ledger.
    #[test]
    fn preship_preserves_correctness((sizes, trace) in arb_trace(6, 150)) {
        let catalog = ObjectCatalog::from_sizes(&sizes);
        let opts = SimOptions {
            cache_bytes: catalog.total_bytes() / 2,
            sample_every: 50,
            link: Some(LinkModel::wan()),
        };
        let mut p = Preship::new(
            VCover::new(opts.cache_bytes, 9),
            PreshipConfig { half_life_events: 20.0, hot_threshold: 1.0 },
        );
        let r = simulate(&mut p, &catalog, &trace, opts);
        prop_assert_eq!(
            r.ledger.shipped_queries + r.ledger.local_answers,
            trace.n_queries() as u64
        );
        prop_assert!(
            r.ledger.breakdown.query_ship.bytes() <= trace.total_query_bytes()
        );
        let (ranges, bytes) = p.preshipped();
        prop_assert!(bytes <= r.ledger.breakdown.update_ship.bytes(),
            "preshipped bytes are a subset of all update shipping");
        prop_assert!(ranges <= r.ledger.update_ships);
        // Latency stats exist and are internally ordered.
        let l = r.latency.expect("link configured");
        prop_assert_eq!(l.count, trace.n_queries() as u64);
        if l.count > 0 {
            prop_assert!(l.p50_secs <= l.p95_secs + 1e-12);
            prop_assert!(l.p95_secs <= l.p99_secs + 1e-12);
            prop_assert!(l.p99_secs <= l.max_secs + 1e-12);
            prop_assert!(l.mean_secs <= l.max_secs + 1e-12);
        }
    }

    /// The hindsight solver's total is sandwiched by its trivial bounds
    /// on any trace and any cached set: at least load + forced queries,
    /// at most load + forced + min(internal query bytes, cached-object
    /// update bytes) — either side of the bipartite graph is a feasible
    /// cover.
    #[test]
    fn hindsight_total_is_sandwiched(
        (sizes, trace) in arb_trace(6, 150),
        mask in 0u8..63,
    ) {
        let catalog = ObjectCatalog::from_sizes(&sizes);
        let cached: HashSet<ObjectId> = (0..6u32)
            .filter(|i| mask & (1 << i) != 0)
            .map(ObjectId)
            .filter(|o| o.index() < catalog.len())
            .collect();
        let r = hindsight_decoupling(&catalog, &trace, &cached);
        let floor = (r.load + r.forced_query).bytes();
        prop_assert!(r.total().bytes() >= floor);
        // Feasible cover A: ship every internal query.
        let internal_query_bytes: u64 = trace
            .iter()
            .filter_map(|e| match e {
                Event::Query(q) if q.objects.iter().all(|o| cached.contains(o)) => {
                    Some(q.result_bytes)
                }
                _ => None,
            })
            .sum();
        // Feasible cover B: ship every update on cached objects.
        let cached_update_bytes: u64 = trace
            .iter()
            .filter_map(|e| match e {
                Event::Update(u) if cached.contains(&u.object) => Some(u.bytes),
                _ => None,
            })
            .sum();
        let ceiling = floor + internal_query_bytes.min(cached_update_bytes);
        prop_assert!(
            r.total().bytes() <= ceiling,
            "cover weight {} exceeds the cheaper trivial cover {}",
            r.total().bytes() - floor,
            internal_query_bytes.min(cached_update_bytes)
        );
        // Structural sanity.
        prop_assert_eq!(
            r.internal_queries + r.forced_queries,
            trace.n_queries() as u64
        );
    }

    /// Caching *everything* makes hindsight's forced cost vanish and its
    /// cover cost at most the smaller side of the whole graph.
    #[test]
    fn hindsight_full_set_has_no_forced_queries((sizes, trace) in arb_trace(5, 100)) {
        let catalog = ObjectCatalog::from_sizes(&sizes);
        let cached: HashSet<ObjectId> = catalog.ids().collect();
        let r = hindsight_decoupling(&catalog, &trace, &cached);
        prop_assert_eq!(r.forced_queries, 0);
        prop_assert_eq!(r.forced_query.bytes(), 0);
        prop_assert!(
            (r.cover_query + r.cover_update).bytes()
                <= trace.total_query_bytes().min(trace.total_update_bytes())
        );
    }
}

/// Deterministic check: a crafted trace where preshipping strictly
/// reduces the number of query-blocking exchanges.
#[test]
fn preship_moves_update_shipping_off_the_query_path() {
    // One small object, hammered by queries, with updates interleaved.
    let catalog = ObjectCatalog::from_sizes(&[1_000]);
    let mut events = Vec::new();
    let mut seq = 0u64;
    for round in 0..50u64 {
        events.push(Event::Update(UpdateEvent {
            seq,
            object: ObjectId(0),
            bytes: 10,
        }));
        seq += 1;
        events.push(Event::Query(QueryEvent {
            seq,
            objects: vec![ObjectId(0)],
            result_bytes: 500,
            tolerance: 0,
            kind: QueryKind::Cone,
        }));
        seq += 1;
        let _ = round;
    }
    let trace = Trace::new(events);
    let opts = SimOptions {
        cache_bytes: 100_000,
        sample_every: 10,
        link: Some(LinkModel::wan()),
    };
    let mut plain = VCover::new(opts.cache_bytes, 1);
    let base = simulate(&mut plain, &catalog, &trace, opts);
    let mut pre = Preship::new(
        VCover::new(opts.cache_bytes, 1),
        PreshipConfig {
            half_life_events: 50.0,
            hot_threshold: 1.0,
        },
    );
    let with = simulate(&mut pre, &catalog, &trace, opts);
    let (b, p) = (base.latency.unwrap(), with.latency.unwrap());
    assert!(
        p.mean_secs < b.mean_secs,
        "preshipping must cut mean latency here: {} vs {}",
        p.mean_secs,
        b.mean_secs
    );
    assert_eq!(
        with.ledger.shipped_queries + with.ledger.local_answers,
        trace.n_queries() as u64
    );
}
