//! Equivalence of the segment-based `UpdateManager` with a naive
//! per-update-vertex reference implementation.
//!
//! The production manager aggregates runs of outstanding updates into
//! segment vertices (splitting at new staleness horizons). This test
//! drives it in lockstep against a reference that materializes one vertex
//! per update and re-solves the cover from scratch on every query, over
//! randomized event sequences.
//!
//! To make the comparison exact, every vertex weight is a distinct power
//! of two, so no two covers can ever tie and both implementations must
//! make *identical* ship-query / ship-updates decisions at every step.

use delta_core::{CostLedger, SimContext, UpdateManager};
use delta_flow::CoverGraph;
use delta_storage::{staleness, CacheStore, ObjectCatalog, ObjectId, Repository};
use delta_workload::{QueryEvent, QueryKind};
use proptest::prelude::*;
use std::collections::HashMap;

/// A reference (slow, obviously-correct) update manager: one vertex per
/// outstanding update, full graph rebuild and from-scratch solve per
/// query, the same remainder rule.
#[derive(Default)]
struct ReferenceManager {
    /// Retained shipped queries: (weight, interacting updates).
    retained: Vec<(u64, Vec<(ObjectId, u64)>)>,
}

impl ReferenceManager {
    /// Returns (shipped_query, update_bytes_shipped).
    fn handle_query(&mut self, q: &QueryEvent, ctx: &mut SimContext<'_>) -> (bool, u64) {
        // Needed update ranges.
        let mut needed: Vec<(ObjectId, u64, u64)> = Vec::new();
        for &o in &q.objects {
            let n = staleness::needed_updates(ctx.repo, ctx.cache, o, ctx.now, q.tolerance)
                .expect("resident");
            if !n.is_current() {
                needed.push((o, n.from_version, n.to_version));
            }
        }
        if needed.is_empty() {
            ctx.answer_local(q);
            return (false, 0);
        }
        // Build a fresh per-update graph: all outstanding updates that any
        // live query (retained or current) interacts with.
        let mut g = CoverGraph::new();
        let mut unodes: HashMap<(ObjectId, u64), delta_flow::UpdateNode> = HashMap::new();
        let node_of = |g: &mut CoverGraph,
                       unodes: &mut HashMap<(ObjectId, u64), delta_flow::UpdateNode>,
                       ctx: &SimContext<'_>,
                       o: ObjectId,
                       k: u64| {
            *unodes
                .entry((o, k))
                .or_insert_with(|| g.add_update(ctx.repo.update_bytes(o, k, k + 1)))
        };
        // Retained queries and their live edges (updates not yet applied).
        let mut retained_nodes = Vec::new();
        for (w, adj) in &self.retained {
            let applied: Vec<(ObjectId, u64)> = adj
                .iter()
                .copied()
                .filter(|&(o, k)| {
                    ctx.cache
                        .applied_version(o)
                        .map(|v| k >= v)
                        .unwrap_or(false)
                })
                .collect();
            if applied.is_empty() {
                retained_nodes.push(None);
                continue;
            }
            let qn = g.add_query(*w);
            for (o, k) in applied {
                let un = node_of(&mut g, &mut unodes, ctx, o, k);
                g.add_interaction(un, qn);
            }
            retained_nodes.push(Some(qn));
        }
        // The arriving query.
        let qn = g.add_query(q.result_bytes);
        let mut q_adj = Vec::new();
        for &(o, from, to) in &needed {
            for k in from..to {
                let un = node_of(&mut g, &mut unodes, ctx, o, k);
                g.add_interaction(un, qn);
                q_adj.push((o, k));
            }
        }
        let cover = g.solve();
        if cover.queries.contains(&qn) {
            ctx.ship_query(q);
            self.retained.push((q.result_bytes, q_adj));
            (true, 0)
        } else {
            let mut shipped = 0;
            for &(o, _f, to) in &needed {
                shipped += ctx.ship_updates_to(o, to);
            }
            ctx.answer_local(q);
            // Drop retained queries whose updates are now all applied
            // (isolation pruning).
            self.retained.retain(|(_, adj)| {
                adj.iter().any(|&(o, k)| {
                    ctx.cache
                        .applied_version(o)
                        .map(|v| k >= v)
                        .unwrap_or(false)
                })
            });
            (false, shipped)
        }
    }
}

/// One scripted event.
#[derive(Clone, Debug)]
enum Ev {
    Update { object: u8 },
    Query { objects: Vec<u8>, tolerance: u64 },
}

fn arb_events(n_objects: u8, len: usize) -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        prop_oneof![
            (0..n_objects).prop_map(|object| Ev::Update { object }),
            (
                proptest::collection::btree_set(0..n_objects, 1..3),
                prop_oneof![Just(0u64), 1u64..6],
            )
                .prop_map(|(objs, tolerance)| Ev::Query {
                    objects: objs.into_iter().collect(),
                    tolerance,
                }),
        ],
        1..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segment_manager_matches_per_update_reference(evs in arb_events(4, 40)) {
        let n_objects = 4usize;
        let sizes = vec![1_000u64; n_objects];
        let catalog = ObjectCatalog::from_sizes(&sizes);

        // Two identical worlds.
        let mut repo_a = Repository::new(catalog.clone());
        let mut repo_b = Repository::new(catalog.clone());
        let mut cache_a = CacheStore::new(u64::MAX / 2);
        let mut cache_b = CacheStore::new(u64::MAX / 2);
        for o in 0..n_objects {
            cache_a.load(ObjectId(o as u32), 1_000, 0).unwrap();
            cache_b.load(ObjectId(o as u32), 1_000, 0).unwrap();
        }
        let mut ledger_a = CostLedger::default();
        let mut ledger_b = CostLedger::default();
        let mut um = UpdateManager::new();
        let mut rf = ReferenceManager::default();

        // Distinct powers of two for every event weight: tie-free covers.
        for (i, ev) in evs.iter().enumerate() {
            let seq = i as u64;
            let w = 1u64 << (i % 50);
            match ev {
                Ev::Update { object } => {
                    let o = ObjectId(*object as u32);
                    repo_a.apply_update(o, w, seq);
                    repo_b.apply_update(o, w, seq);
                    cache_a.invalidate(o);
                    cache_b.invalidate(o);
                }
                Ev::Query { objects, tolerance } => {
                    let q = QueryEvent {
                        seq,
                        objects: objects.iter().map(|&o| ObjectId(o as u32)).collect(),
                        result_bytes: w,
                        tolerance: *tolerance,
                        kind: QueryKind::Cone,
                    };
                    {
                        let mut ctx =
                            SimContext::new(&mut repo_a, &mut cache_a, &mut ledger_a, seq);
                        um.handle_query(&q, &mut ctx);
                    }
                    {
                        let mut ctx =
                            SimContext::new(&mut repo_b, &mut cache_b, &mut ledger_b, seq);
                        rf.handle_query(&q, &mut ctx);
                    }
                    // Identical decisions => identical ledgers after every
                    // query.
                    prop_assert_eq!(
                        ledger_a.breakdown, ledger_b.breakdown,
                        "ledgers diverged at event {}", i
                    );
                    prop_assert_eq!(ledger_a.local_answers, ledger_b.local_answers);
                    // And identical cache versions.
                    for o in 0..n_objects {
                        prop_assert_eq!(
                            cache_a.applied_version(ObjectId(o as u32)),
                            cache_b.applied_version(ObjectId(o as u32))
                        );
                    }
                }
            }
        }
        // The segment manager's graph stays bounded by distinct horizons.
        prop_assert!(um.live_update_nodes() <= evs.len());
    }
}
